"""CirFix configuration (paper §4.2 experimental parameters).

The defaults mirror the paper: population 5000, 8 generations, repair
template threshold 0.2, mutation threshold 0.7, delete/insert/replace
thresholds 0.3/0.3/0.4, tournament size 5, elitism 5%, φ = 2, 12-hour
wall-clock bound.  Tests and benchmarks use scaled-down budgets via
:meth:`RepairConfig.scaled`.

Construction is canonicalised here: :meth:`RepairConfig.from_file`
(artifact-style ``repair.conf``), :meth:`RepairConfig.from_cli_args`
(argparse namespaces), and :meth:`RepairConfig.from_mapping` (any
string-keyed mapping) all funnel through one coercion + validation
path — unknown keys fail fast naming the offending key, and every
entry point reports range errors identically.
"""

from __future__ import annotations

import configparser
import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from ..lint.rules import DEFAULT_GATE_RULES, resolve_rules

#: Valid values of :attr:`RepairConfig.backend` (canonical home; also
#: re-exported by :mod:`repro.core.backend` for compatibility).
BACKEND_NAMES = ("auto", "serial", "process")

#: Valid values of :attr:`RepairConfig.sim_engine`.
SIM_ENGINE_NAMES = ("interp", "compiled")


class ConfigError(ValueError):
    """Raised for unknown keys, bad values, or out-of-range parameters."""


@dataclass(frozen=True)
class RepairConfig:
    """All knobs of the CirFix search (Algorithm 1 inputs)."""

    #: GP population size (paper: 5000).
    population_size: int = 5000
    #: Maximum generations of evolution (paper: 8).
    max_generations: int = 8
    #: Probability of applying a repair template instead of an operator.
    rt_threshold: float = 0.2
    #: Probability of mutation (vs crossover) among operator applications.
    mut_threshold: float = 0.7
    #: Mutation sub-operator thresholds (delete, insert; replace is the rest).
    delete_threshold: float = 0.3
    insert_threshold: float = 0.3
    #: Tournament size for parent selection (paper: t = 5).
    tournament_size: int = 5
    #: Fraction of top candidates propagated unchanged (paper: e = 5%).
    elitism_fraction: float = 0.05
    #: Penalty weight for x/z bit comparisons (paper: φ = 2).
    phi: float = 2.0
    #: Wall-clock bound in seconds (paper: 12 hours).
    max_wall_seconds: float = 12 * 3600.0
    #: Hard bound on fitness evaluations (simulations); None = unbounded.
    max_fitness_evals: int | None = None
    #: Simulation bounds passed to the simulator for each candidate.
    max_sim_time: int = 1_000_000
    max_sim_steps: int = 2_000_000
    #: Budget for the minimization step's plausibility checks.
    minimize_budget: int = 256
    #: Enable the extension template set (repro.core.templates_ext) —
    #: the paper's "adding more repair templates" future-work direction.
    #: Off by default so the reproduction matches the paper's template set.
    extended_templates: bool = False
    #: Worker processes for candidate evaluation (and, in ``repair()`` /
    #: the experiment drivers, for independent trials and scenario sweeps).
    #: 1 = fully serial, the paper's original behaviour.
    workers: int = 1
    #: Evaluation backend: "serial", "process", or "auto" (process pool
    #: when ``workers > 1``).  See :mod:`repro.core.backend`.
    backend: str = "auto"
    #: Candidates submitted to the backend per batch chunk.  The engine
    #: checks budgets and scans for a plausible winner between chunks, so
    #: this bounds how much work a found repair can strand; it is part of
    #: the deterministic schedule and must not depend on worker count.
    eval_chunk_size: int = 16
    #: Reject candidates whose lint profile adds violations over the
    #: buggy baseline *before* simulating them (see ``docs/lint.md``).
    #: Off by default: with the gate off, outcomes are bit-identical to
    #: the ungated engine.
    lint_gate: bool = False
    #: Comma-separated rule codes/slugs the gate compares (``"all"`` for
    #: the full catalog).  The default is the structurally-doomed trio —
    #: multi-driver, inferred-latch, comb-loop.
    lint_gate_rules: str = DEFAULT_GATE_RULES
    #: Per-candidate wall-clock deadline (seconds) enforced by the
    #: supervised process pool; 0 disables it.  The default is a generous
    #: multiple of any realistic simulation budget, so the deterministic
    #: ``max_sim_steps`` cutoff stays the canonical bound and the
    #: deadline only fires on candidates that are truly wedged (infinite
    #: loops outside the simulator's step accounting).
    eval_deadline_seconds: float = 600.0
    #: How many times a failed (timed-out / crashed / OOM'd) candidate is
    #: re-dispatched before the pool quarantines it as an
    #: :class:`~repro.core.backend.EvalFailure` result.
    eval_max_retries: int = 1
    #: Per-worker address-space *headroom* in MiB (``RLIMIT_AS``, set to
    #: the worker's inherited image plus this much); 0 = no cap.  A
    #: ballooning candidate then raises ``MemoryError`` inside its
    #: worker instead of invoking the host's OOM killer.
    worker_mem_mb: int = 0
    #: Simulation engine used for candidate evaluation: "interp" (the
    #: tree-walking interpreter, the original behaviour) or "compiled"
    #: (the ahead-of-time closure compiler in :mod:`repro.sim.compile`).
    #: Both produce bit-identical results; see ``docs/simulation.md``.
    sim_engine: str = "interp"
    #: Capacity of the backend-level content-addressed evaluation cache
    #: (results keyed by sha256 of the candidate source).  Identical
    #: candidates — re-submitted across trials sharing one backend — are
    #: never simulated twice; hits replay the recorded result verbatim so
    #: outcomes and telemetry stay bit-identical.  0 disables the cache.
    eval_cache_size: int = 256
    #: Root directory of the persistent evaluation-cache tier
    #: (:class:`repro.cache.PersistentEvalCache`).  Empty (the default)
    #: disables the disk tier; with it set, evaluation results are keyed
    #: by candidate hash *and* an outcome-relevant context digest and
    #: survive across processes and daemon restarts — see
    #: ``docs/service.md``.
    cache_dir: str = ""
    #: Byte budget of the persistent cache tier in MiB (LRU eviction);
    #: 0 = unbounded.  Ignored when ``cache_dir`` is unset.
    cache_max_mb: int = 512

    def scaled(self, **overrides: object) -> "RepairConfig":
        """A copy with some fields replaced (for laptop-scale runs)."""
        return dataclasses.replace(self, **overrides)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Canonical construction paths
    # ------------------------------------------------------------------

    def validate(self, source: str = "config") -> "RepairConfig":
        """Range-check every field; raises :class:`ConfigError`.

        Returns ``self`` so construction sites can chain it.  Plain
        dataclass construction stays unvalidated (tests deliberately
        build extreme configs); every ``from_*`` classmethod validates.
        """

        def fail(message: str) -> None:
            raise ConfigError(f"{source}: {message}")

        if self.population_size < 1:
            fail(f"population_size must be >= 1 (got {self.population_size})")
        if self.max_generations < 0:
            fail(f"max_generations must be >= 0 (got {self.max_generations})")
        for name in ("rt_threshold", "mut_threshold", "delete_threshold",
                     "insert_threshold", "elitism_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                fail(f"{name} must be within [0, 1] (got {value})")
        if self.tournament_size < 1:
            fail(f"tournament_size must be >= 1 (got {self.tournament_size})")
        if self.phi < 0:
            fail(f"phi must be >= 0 (got {self.phi})")
        if self.max_wall_seconds <= 0:
            fail(f"max_wall_seconds must be > 0 (got {self.max_wall_seconds})")
        if self.max_fitness_evals is not None and self.max_fitness_evals < 1:
            fail(f"max_fitness_evals must be >= 1 or unset (got {self.max_fitness_evals})")
        if self.max_sim_time < 1:
            fail(f"max_sim_time must be >= 1 (got {self.max_sim_time})")
        if self.max_sim_steps < 1:
            fail(f"max_sim_steps must be >= 1 (got {self.max_sim_steps})")
        if self.minimize_budget < 0:
            fail(f"minimize_budget must be >= 0 (got {self.minimize_budget})")
        if self.workers < 1:
            fail(f"workers must be >= 1 (got {self.workers})")
        if self.backend not in BACKEND_NAMES:
            fail(
                f"backend must be one of {', '.join(BACKEND_NAMES)} "
                f"(got {self.backend!r})"
            )
        if self.eval_chunk_size < 1:
            fail(f"eval_chunk_size must be >= 1 (got {self.eval_chunk_size})")
        try:
            resolve_rules(self.lint_gate_rules)
        except ValueError as exc:
            fail(f"bad lint_gate_rules: {exc}")
        if self.eval_deadline_seconds < 0:
            fail(
                "eval_deadline_seconds must be >= 0 "
                f"(got {self.eval_deadline_seconds})"
            )
        if self.eval_max_retries < 0:
            fail(f"eval_max_retries must be >= 0 (got {self.eval_max_retries})")
        if self.worker_mem_mb < 0:
            fail(f"worker_mem_mb must be >= 0 (got {self.worker_mem_mb})")
        if self.sim_engine not in SIM_ENGINE_NAMES:
            fail(
                f"sim_engine must be one of {', '.join(SIM_ENGINE_NAMES)} "
                f"(got {self.sim_engine!r})"
            )
        if self.eval_cache_size < 0:
            fail(f"eval_cache_size must be >= 0 (got {self.eval_cache_size})")
        if self.cache_max_mb < 0:
            fail(f"cache_max_mb must be >= 0 (got {self.cache_max_mb})")
        return self

    @classmethod
    def from_mapping(
        cls,
        mapping: Mapping[str, object],
        *,
        base: "RepairConfig | None" = None,
        source: str = "config",
    ) -> "RepairConfig":
        """Build a validated config from a string-keyed mapping.

        Values may be strings (INI/CLI style) or already-typed objects;
        they are coerced to the field's declared type.  Unknown keys fail
        fast with the offending key named, so a typo like
        ``poplation_size`` cannot silently run a 5000-candidate search.
        """
        base = base if base is not None else cls()
        overrides: dict[str, object] = {}
        for key, raw in mapping.items():
            kind = _FIELD_KINDS.get(key)
            if kind is None:
                raise ConfigError(
                    f"{source}: unknown config key {key!r} "
                    f"(valid keys: {', '.join(sorted(_FIELD_KINDS))})"
                )
            try:
                overrides[key] = _coerce(raw, kind)
            except (TypeError, ValueError) as exc:
                raise ConfigError(f"{source}: bad value for {key!r}: {exc}") from exc
        return base.scaled(**overrides).validate(source)

    @classmethod
    def from_file(
        cls,
        path: str | Path,
        *,
        base: "RepairConfig | None" = None,
        section: str = "gp",
    ) -> "tuple[RepairConfig, tuple[int, ...] | None]":
        """Load the ``[gp]`` section of an artifact-style ``repair.conf``.

        Returns ``(config, seeds)`` where ``seeds`` is the parsed
        ``seeds = 0,1,2`` entry, or ``None`` when the file does not set
        one (callers keep their own default).  A missing section yields
        the base config unchanged.  Raises :class:`ConfigError` for
        unknown keys or bad values.
        """
        path = Path(path)
        ini = configparser.ConfigParser(inline_comment_prefixes=(";", "#"))
        if not ini.read(path):
            raise ConfigError(f"cannot read config file {path}")
        base = base if base is not None else cls()
        if not ini.has_section(section):
            return base, None
        mapping = dict(ini[section])
        seeds: tuple[int, ...] | None = None
        raw_seeds = mapping.pop("seeds", None)
        if raw_seeds is not None:
            try:
                seeds = tuple(int(s) for s in str(raw_seeds).split(",") if s.strip())
            except ValueError as exc:
                raise ConfigError(f"{path} [{section}]: bad seeds list: {exc}") from exc
        config = cls.from_mapping(mapping, base=base, source=f"{path} [{section}]")
        return config, seeds

    @classmethod
    def from_cli_args(
        cls,
        args: object,
        *,
        base: "RepairConfig | None" = None,
        source: str = "command line",
    ) -> "RepairConfig":
        """Apply recognised CLI flags on top of ``base`` and validate.

        ``args`` is an ``argparse.Namespace`` (or any object/mapping with
        the attributes).  Recognised names are every config field plus
        the CLI spellings ``population`` (→ ``population_size``) and
        ``budget`` (→ ``max_wall_seconds``); ``None`` values — flags the
        user did not pass — are skipped, and ``workers`` is clamped to a
        minimum of 1 (matching the historical CLI behaviour).
        """
        base = base if base is not None else cls()
        values: Mapping[str, object]
        if isinstance(args, Mapping):
            values = args
        else:
            values = vars(args)
        overrides: dict[str, object] = {}
        for name, field_name in _CLI_ALIASES.items():
            if name in values and values[name] is not None:
                overrides[field_name] = values[name]
        if "workers" in overrides:
            overrides["workers"] = max(1, int(overrides["workers"]))  # type: ignore[arg-type]
        return cls.from_mapping(overrides, base=base, source=source)


#: Field name → coercion kind, derived from the dataclass declaration
#: (annotations are strings because of ``from __future__ import annotations``).
_FIELD_KINDS: dict[str, str] = {
    f.name: str(f.type) for f in dataclasses.fields(RepairConfig)
}

#: CLI flag name → config field (identity for real field names).
_CLI_ALIASES: dict[str, str] = {name: name for name in _FIELD_KINDS}
_CLI_ALIASES.update({"population": "population_size", "budget": "max_wall_seconds"})

_TRUE_WORDS = {"1", "true", "yes", "on"}
_FALSE_WORDS = {"0", "false", "no", "off"}


def _coerce(raw: object, kind: str) -> object:
    """Coerce one raw (possibly string) value to a field's declared type."""
    if kind == "int | None":
        if raw is None or (isinstance(raw, str) and raw.strip().lower() in ("", "none")):
            return None
        return int(str(raw)) if isinstance(raw, str) else int(raw)  # type: ignore[arg-type]
    if kind == "bool":
        if isinstance(raw, bool):
            return raw
        word = str(raw).strip().lower()
        if word in _TRUE_WORDS:
            return True
        if word in _FALSE_WORDS:
            return False
        raise ValueError(f"expected a boolean, got {raw!r}")
    if kind == "int":
        if isinstance(raw, bool):
            raise ValueError(f"expected an integer, got {raw!r}")
        return int(str(raw)) if isinstance(raw, str) else int(raw)  # type: ignore[arg-type]
    if kind == "float":
        return float(str(raw)) if isinstance(raw, str) else float(raw)  # type: ignore[arg-type]
    if kind == "str":
        return str(raw)
    raise ValueError(f"unsupported field type {kind!r}")  # pragma: no cover


#: A small configuration suitable for unit tests and CI: the GP dynamics
#: are identical, only budgets shrink.
TEST_CONFIG = RepairConfig(
    population_size=24,
    max_generations=6,
    max_wall_seconds=120.0,
    max_fitness_evals=600,
    max_sim_time=200_000,
    max_sim_steps=400_000,
    minimize_budget=64,
)
