"""Engine-neutral repair harness shared by every registered engine.

The GP engine (:mod:`repro.core.repair`) and the template-synthesis
engine (:mod:`repro.synth.engine`) differ only in how they *propose*
candidate patches.  Everything else — candidate evaluation with
memoisation, the lint gate, batched scoring through an
:class:`~repro.core.backend.EvaluationBackend`, fault localization with
trace refresh, delta-debugging minimization, phase accounting, and the
final :class:`RepairOutcome` assembly — lives here in
:class:`EngineHarness`, so caching, supervision, gating, and telemetry
apply to every engine unchanged.

Determinism contract (shared by all engines built on the harness): the
outcome for a given seed is bit-identical on every backend; the
``eval_sims`` budget counter excludes backend-dependent re-simulations;
observers only ever read already-computed values; cancellation is polled
at chunk boundaries.  See ``docs/repair_engine.md``.
"""

from __future__ import annotations

import hashlib
import logging
import time as time_mod
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..hdl import ast, generate, parse
from ..instrument.trace import SimulationTrace, output_mismatch
from ..lint.engine import lint_tree, new_violations
from ..lint.rules import resolve_rules
from ..obs.events import (
    BackendChunkCompleted,
    BackendChunkDispatched,
    CandidateEvaluated,
    CandidatePruned,
    CandidateTimedOut,
    CheckpointSaved,
    ChunkRetried,
    GenerationCompleted,
    PhaseCompleted,
    TrialCompleted,
    WorkerCrashed,
)
from ..obs.observer import ObserverSet, RepairObserver
from .backend import (
    CandidateResult,
    EvaluationBackend,
    evaluate_design_text,
    make_backend,
)
from .config import RepairConfig
from .faultloc import all_statement_ids, localize_faults
from .fitness import FitnessBreakdown
from .minimize import minimize_patch
from .patch import Patch

logger = logging.getLogger("repro.harness")


@dataclass
class Evaluation:
    """Result of evaluating one candidate design.

    The per-engine cache keeps fitness/compile status for every candidate
    but holds full traces only in a small LRU — traces of long-running
    benchmarks are large, and only tournament-selected parents need theirs
    again (for re-localization).
    """

    fitness: float
    breakdown: FitnessBreakdown | None
    trace: SimulationTrace | None
    compiled: bool
    source_text: str

    @property
    def is_plausible(self) -> bool:
        return self.fitness >= 1.0

    def light_copy(self) -> "Evaluation":
        """The cacheable version without the trace payload."""
        return Evaluation(self.fitness, self.breakdown, None, self.compiled, self.source_text)


@dataclass
class RepairOutcome:
    """Result of one repair trial (any engine)."""

    plausible: bool
    patch: Patch
    fitness: float
    repaired_source: str | None
    generations: int
    fitness_evals: int
    simulations: int
    elapsed_seconds: float
    best_fitness_history: list[float] = field(default_factory=list)
    seed: int = 0
    #: Unique candidate evaluations — the deterministic budget counter
    #: (identical across backends, unlike ``simulations``).
    eval_sims: int = 0
    #: Unique candidates the lint gate rejected before simulation
    #: (0 when ``config.lint_gate`` is off).
    pruned: int = 0
    #: Candidates the supervised pool quarantined after exhausting their
    #: retries (0 on healthy runs and on the serial backend).
    quarantined: int = 0

    def describe(self) -> str:
        """One-line summary for logs and CLI output."""
        status = "PLAUSIBLE" if self.plausible else "no repair"
        return (
            f"{status}: fitness={self.fitness:.3f} edits={len(self.patch)} "
            f"gens={self.generations} sims={self.simulations} "
            f"t={self.elapsed_seconds:.1f}s"
        )


class RepairProblem:
    """A defect scenario packaged for the engine.

    Attributes:
        design: Faulty design AST (the modules the engine may edit).
        testbench: Instrumented testbench AST (never edited).
        oracle: Expected-behaviour trace from the golden design.
    """

    def __init__(
        self,
        design: ast.Source,
        testbench: ast.Source,
        oracle: SimulationTrace,
        name: str = "scenario",
    ):
        self.design = design
        self.testbench = testbench
        self.oracle = oracle
        self.name = name
        self.testbench_text = generate(testbench)

    @staticmethod
    def from_text(
        faulty_design: str,
        testbench: str,
        oracle: SimulationTrace,
        name: str = "scenario",
    ) -> "RepairProblem":
        return RepairProblem(parse(faulty_design), parse(testbench), oracle, name)


def adaptive_chunk_size(batch: int, eval_chunk_size: int) -> int:
    """The chunk size to dispatch a ``batch`` of pending candidates with.

    ``eval_chunk_size`` is the *granularity floor*, not a fixed size: a
    batch that is not an exact multiple would otherwise end in a runt
    chunk (e.g. 25 pending at size 8 → 8+8+8+1), paying a full dispatch
    round-trip — and, on the pool backend, idling most workers — for a
    single candidate.  Instead the batch is split into
    ``batch // eval_chunk_size`` near-equal chunks (25 → 9+9+7).

    Deterministic in the batch size and configuration alone — NEVER the
    worker count or backend — so the chunk schedule (and with it the
    event sequence and early-stop points) stays bit-identical across
    backends, preserving the engine's determinism guarantee.
    """
    base = max(1, eval_chunk_size)
    if batch <= base:
        return base
    chunks = max(1, batch // base)
    return -(-batch // chunks)


class EngineHarness:
    """Shared pre-passes and accounting for one trial of any engine.

    Subclasses implement :meth:`_run` (the search loop) and own
    ``operator_stats`` (how candidates were proposed); everything a loop
    needs — memoised evaluation, batched backend scoring, localization,
    minimization, the outcome — is provided here.

    Candidate batches are scored through an
    :class:`~repro.core.backend.EvaluationBackend`; pass one to share a
    worker pool across trials, or leave it ``None`` to let the engine
    build (and own) the backend selected by ``config``.
    """

    #: Registry name stamped into checkpoint snapshots (subclasses set it).
    engine_name = "engine"

    def __init__(
        self,
        problem: RepairProblem,
        config: RepairConfig | None = None,
        seed: int = 0,
        backend: EvaluationBackend | None = None,
        observers: Sequence[RepairObserver] | None = None,
        cancel: Callable[[], bool] | None = None,
        checkpoint: "Callable[[dict[str, Any]], None] | None" = None,
    ):
        self.problem = problem
        self.config = config or RepairConfig()
        self.seed = seed
        #: Cooperative cancellation probe (repair-as-a-service): checked
        #: wherever the budget is, so a cancelled trial stops at the next
        #: chunk boundary and returns its best-so-far outcome.  None (the
        #: default) keeps every cancellation branch dead.
        self._cancel = cancel
        #: Crash-recovery hook (repair-as-a-service): called with a
        #: deterministic cursor snapshot at every search boundary (see
        #: :meth:`_save_checkpoint`).  None (the default) keeps every
        #: checkpoint branch dead — direct runs never emit checkpoint
        #: events, so golden traces are untouched.
        self._checkpoint = checkpoint
        #: Telemetry fan-out (repro.obs).  Falsy when no observers are
        #: attached, so every emit site costs one branch on unobserved
        #: runs; observers only ever read already-computed values, which
        #: is what keeps outcomes bit-identical with or without them.
        self.events = (
            observers
            if isinstance(observers, ObserverSet)
            else ObserverSet(observers)
        )
        self._backend = backend
        self._owns_backend = False
        self._cache: dict[str, Evaluation] = {}
        self._trace_cache: OrderedDict[str, SimulationTrace] = OrderedDict()
        self._trace_cache_limit = 48
        self.simulations = 0
        self.fitness_evals = 0
        #: Deterministic count of unique candidate evaluations.  Unlike
        #: ``simulations`` it excludes trace-refresh re-simulations (whose
        #: number depends on the backend's trace availability), so budget
        #: decisions keyed on it are identical under every backend.
        self.eval_sims = 0
        #: Compile statistics for the fix-localization ablation (§3.6).
        self.mutants_generated = 0
        self.mutants_compile_failed = 0
        #: How often each proposal path ran (diagnostics); subclasses
        #: replace this with their own operator vocabulary.
        self.operator_stats: dict[str, int] = {}
        #: Wall-clock seconds spent inside candidate evaluation (codegen +
        #: parse + simulate + fitness) — the paper reports >90% of repair
        #: time goes to fitness evaluations.
        self.evaluation_seconds = 0.0
        #: Per-phase wall-clock (repro.obs): ``parse`` is the frontend
        #: sub-span of ``evaluation``; ``localization`` and
        #: ``minimization`` exclude the evaluations they trigger, so the
        #: three top-level phases partition the trial's accounted time.
        self.phase_seconds: dict[str, float] = {
            "parse": 0.0,
            "localization": 0.0,
            "evaluation": 0.0,
            "minimization": 0.0,
        }
        #: Monotonic id for backend chunk events.
        self._chunk_counter = 0
        #: Lint gate (docs/lint.md): with ``config.lint_gate`` on, a
        #: candidate whose lint profile adds findings under these rules
        #: over the buggy baseline is rejected before simulation.  The
        #: empty tuple (gate off) keeps every gate branch dead, so
        #: outcomes are bit-identical to the ungated engine.
        self._gate_rules = (
            resolve_rules(self.config.lint_gate_rules)
            if self.config.lint_gate
            else ()
        )
        self._gate_rules_spec = ",".join(rule.code for rule in self._gate_rules)
        self._gate_baseline: dict[str, int] | None = None
        #: Unique candidates the gate rejected / per-rule breakdown.
        self.candidates_pruned = 0
        self.pruned_by_rule: dict[str, int] = {}
        #: Candidates the supervised pool quarantined / per-kind breakdown
        #: (see ``docs/repair_engine.md``, "Fault tolerance").
        self.candidates_quarantined = 0
        self.quarantined_by_kind: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Candidate evaluation
    # ------------------------------------------------------------------

    def variant_tree(self, patch: Patch) -> ast.Source:
        """The faulty design with ``patch`` applied (ids stable)."""
        return patch.apply(self.problem.design)

    def evaluate(self, patch: Patch) -> Evaluation:
        """Codegen → parse → simulate → fitness, with memoisation."""
        self.fitness_evals += 1
        try:
            tree = self.variant_tree(patch)
            design_text = generate(tree)
        except Exception:
            return Evaluation(0.0, None, None, False, "")
        cached = self._cache.get(design_text)
        if cached is not None:
            if cached.trace is None and design_text in self._trace_cache:
                self._trace_cache.move_to_end(design_text)
                return Evaluation(
                    cached.fitness,
                    cached.breakdown,
                    self._trace_cache[design_text],
                    cached.compiled,
                    cached.source_text,
                )
            return cached
        if self._gate_rules:
            added = self._gate_added(tree)
            if added:
                return self._prune(design_text, added)
        self.eval_sims += 1
        result = self._score_text(design_text)
        if self.events:
            self._emit_candidate(result)
        evaluation = Evaluation(
            result.fitness, result.breakdown, result.trace, result.compiled, design_text
        )
        self._admit(design_text, evaluation)
        return evaluation

    # ------------------------------------------------------------------
    # Lint gate (docs/lint.md)
    # ------------------------------------------------------------------

    def _gate_baseline_profile(self) -> dict[str, int]:
        """Gated-rule lint profile of the buggy design (computed once)."""
        if self._gate_baseline is None:
            self._gate_baseline = lint_tree(
                self.problem.design, self._gate_rules
            ).profile()
        return self._gate_baseline

    def _gate_added(self, tree: ast.Source) -> dict[str, int]:
        """Gated violations ``tree`` adds over the baseline (empty = pass).

        Lint failures never block evaluation: a candidate the analyser
        cannot process goes to the simulator like any other, so the gate
        can only ever skip work, not change which designs are reachable.
        """
        try:
            profile = lint_tree(tree, self._gate_rules).profile()
        except Exception:
            return {}
        return new_violations(profile, self._gate_baseline_profile())

    def _prune(self, design_text: str, added: dict[str, int]) -> Evaluation:
        """Reject one unique candidate before simulation.

        The pruned evaluation (fitness 0, no trace) is cached like any
        other, so duplicates of a pruned design are ordinary cache hits;
        ``eval_sims`` never ticks — pruning is free simulation budget.
        """
        self.candidates_pruned += 1
        for code in added:
            self.pruned_by_rule[code] = self.pruned_by_rule.get(code, 0) + 1
        if self.events:
            self.events.emit(
                CandidatePruned(
                    new_violations=dict(added), rules=self._gate_rules_spec
                )
            )
        evaluation = Evaluation(0.0, None, None, False, design_text)
        self._admit(design_text, evaluation)
        return evaluation

    def _admit(self, design_text: str, evaluation: Evaluation) -> None:
        """Record an evaluation in the fitness cache and the trace LRU."""
        self._cache[design_text] = evaluation.light_copy()
        if evaluation.trace is not None:
            self._trace_cache[design_text] = evaluation.trace
            while len(self._trace_cache) > self._trace_cache_limit:
                self._trace_cache.popitem(last=False)

    def _score_text(self, design_text: str) -> CandidateResult:
        """Run the evaluation pipeline in-process, updating counters."""
        started = time_mod.monotonic()
        self.simulations += 1
        self.mutants_generated += 1
        result = evaluate_design_text(
            design_text, self.problem.testbench, self.problem.oracle, self.config
        )
        if not result.compiled:
            self.mutants_compile_failed += 1
        elapsed = time_mod.monotonic() - started
        self.evaluation_seconds += elapsed
        self.phase_seconds["evaluation"] += elapsed
        self.phase_seconds["parse"] += result.parse_seconds
        return result

    def _evaluate_source(self, design_text: str) -> Evaluation:
        """In-process evaluation without telemetry emission.

        Used for backend-dependent re-simulations (trace refresh in
        :meth:`fault_localization`): those must stay invisible to
        observers so the event sequence is identical on every backend.
        """
        result = self._score_text(design_text)
        return Evaluation(
            result.fitness, result.breakdown, result.trace, result.compiled, design_text
        )

    def _emit_candidate(self, result: CandidateResult) -> None:
        """Emit the CandidateEvaluated event for one unique evaluation."""
        self.events.emit(
            CandidateEvaluated(
                fitness=result.fitness,
                compiled=result.compiled,
                wall_seconds=result.eval_seconds,
                sim_events=result.sim_events,
                sim_steps=result.sim_steps,
            )
        )

    # ------------------------------------------------------------------
    # Batched evaluation (generate-then-evaluate)
    # ------------------------------------------------------------------

    def _ensure_backend(self) -> EvaluationBackend:
        """The engine's backend, building (and owning) one on first use."""
        if self._backend is None:
            self._backend = make_backend(self.problem, self.config)
            self._owns_backend = True
        return self._backend

    def _release_backend(self) -> None:
        """Close the backend if this engine created it."""
        if self._owns_backend and self._backend is not None:
            self._backend.close()
            self._backend = None
            self._owns_backend = False

    def _evaluate_generation(self, patches, out_of_budget) -> list[Evaluation | None]:
        """Score a whole generation's patches through the backend.

        Returns evaluations aligned with ``patches``.  Unique uncached
        design texts are submitted in first-occurrence (child-index) order
        in near-equal chunks sized by :func:`adaptive_chunk_size` (with
        ``config.eval_chunk_size`` as the granularity floor); between chunks
        the engine checks the budget and whether a plausible candidate has
        already appeared, and stops early if so.  Entries that were never
        evaluated because of an early stop are ``None`` — callers only see
        them when the search is about to terminate anyway.  The chunk
        schedule is independent of the backend and worker count, which is
        what makes outcomes bit-identical across backends.
        """
        results: list[Evaluation | None] = [None] * len(patches)
        pending: list[str] = []
        indices_for_text: dict[str, list[int]] = {}
        for i, patch in enumerate(patches):
            self.fitness_evals += 1
            try:
                tree = self.variant_tree(patch)
                text = generate(tree)
            except Exception:
                results[i] = Evaluation(0.0, None, None, False, "")
                continue
            cached = self._cache.get(text)
            if cached is not None:
                results[i] = cached
                continue
            if self._gate_rules:
                added = self._gate_added(tree)
                if added:
                    # Pruned engine-side before chunking, so the prune
                    # schedule (and its events) is backend-independent.
                    results[i] = self._prune(text, added)
                    continue
            slots = indices_for_text.setdefault(text, [])
            if not slots:
                pending.append(text)
            slots.append(i)
        backend = self._ensure_backend()
        chunk_size = adaptive_chunk_size(len(pending), self.config.eval_chunk_size)
        found_winner = False
        for start in range(0, len(pending), chunk_size):
            if found_winner or out_of_budget():
                break
            chunk = pending[start : start + chunk_size]
            chunk_id = self._chunk_counter
            self._chunk_counter += 1
            if self.events:
                self.events.emit(
                    BackendChunkDispatched(
                        chunk=chunk_id, size=len(chunk), chunk_size=chunk_size
                    )
                )
            started = time_mod.monotonic()
            chunk_results = backend.evaluate_batch(chunk)
            chunk_seconds = time_mod.monotonic() - started
            self.evaluation_seconds += chunk_seconds
            self.phase_seconds["evaluation"] += chunk_seconds
            if self.events:
                self.events.emit(
                    BackendChunkCompleted(
                        chunk=chunk_id, size=len(chunk), wall_seconds=chunk_seconds
                    )
                )
            self._note_incidents(chunk_id, backend)
            for text, result in zip(chunk, chunk_results):
                self.simulations += 1
                self.eval_sims += 1
                self.mutants_generated += 1
                if result.failure is not None:
                    # Quarantined by the supervisor — not a compile
                    # verdict, so keep it out of the compile-failure
                    # ablation statistics.
                    self.candidates_quarantined += 1
                    self.quarantined_by_kind[result.failure.kind] = (
                        self.quarantined_by_kind.get(result.failure.kind, 0) + 1
                    )
                elif not result.compiled:
                    self.mutants_compile_failed += 1
                self.phase_seconds["parse"] += result.parse_seconds
                if self.events:
                    self._emit_candidate(result)
                evaluation = Evaluation(
                    result.fitness, result.breakdown, result.trace, result.compiled, text
                )
                self._admit(text, evaluation)
                for index in indices_for_text[text]:
                    results[index] = evaluation
                if evaluation.fitness >= 1.0:
                    found_winner = True
        return results

    def _note_incidents(self, chunk_id: int, backend: EvaluationBackend) -> None:
        """Drain supervision incidents for one chunk into events.

        Healthy runs never have incidents, so this is a no-op on the
        deterministic schedule — golden event sequences are untouched.
        Quarantine *counters* are tallied from the results themselves
        (which also covers externally-owned backends); this method only
        produces the per-incident telemetry.
        """
        take = getattr(backend, "take_incidents", None)
        if take is None:
            return
        incidents = take()
        if not incidents or not self.events:
            return
        requeued = 0
        for incident in incidents:
            if not incident.quarantined:
                requeued += 1
            if incident.kind == "timeout":
                self.events.emit(
                    CandidateTimedOut(
                        deadline_seconds=self.config.eval_deadline_seconds,
                        attempt=incident.attempt,
                        quarantined=incident.quarantined,
                    )
                )
            else:
                self.events.emit(
                    WorkerCrashed(
                        kind=incident.kind,
                        exitcode=incident.exitcode,
                        attempt=incident.attempt,
                        quarantined=incident.quarantined,
                    )
                )
        if requeued:
            self.events.emit(ChunkRetried(chunk=chunk_id, requeued=requeued))

    # ------------------------------------------------------------------
    # Fault localization (paper Algorithm 2)
    # ------------------------------------------------------------------

    def fault_localization(self, patch: Patch, variant: ast.Source) -> set[int]:
        """Algorithm 2 against this variant's own simulation trace.

        The ``localization`` phase timer excludes the candidate
        evaluations this triggers (those are ``evaluation`` time).
        """
        started = time_mod.monotonic()
        eval_before = self.evaluation_seconds
        try:
            return self._fault_localization(patch, variant)
        finally:
            self.phase_seconds["localization"] += (
                time_mod.monotonic() - started
            ) - (self.evaluation_seconds - eval_before)

    def _fault_localization(self, patch: Patch, variant: ast.Source) -> set[int]:
        evaluation = self.evaluate(patch)
        if evaluation.compiled and evaluation.trace is None:
            # Trace evicted from the LRU: re-simulate this parent once.
            evaluation = self._evaluate_source(evaluation.source_text)
            if evaluation.trace is not None:
                self._trace_cache[evaluation.source_text] = evaluation.trace
        if evaluation.trace is None or not evaluation.compiled:
            return all_statement_ids(variant)
        mismatch = output_mismatch(self.problem.oracle, evaluation.trace)
        if not mismatch:
            return all_statement_ids(variant)
        localized = localize_faults(variant, mismatch)
        if not localized.nodes:
            return all_statement_ids(variant)
        return localized.nodes

    # ------------------------------------------------------------------
    # Trial scaffolding shared by every engine
    # ------------------------------------------------------------------

    def run(self) -> RepairOutcome:
        """Run the engine's search loop to completion and return the outcome."""
        try:
            return self._run()
        finally:
            self._release_backend()

    def _run(self) -> RepairOutcome:  # pragma: no cover - interface
        raise NotImplementedError("engines built on EngineHarness implement _run")

    def _budget_probe(self, deadline: float) -> Callable[[], bool]:
        """The shared out-of-budget predicate for one trial.

        Polls cancellation, the wall-clock deadline, and the deterministic
        ``eval_sims`` budget — in that order, so a cancelled trial stops
        even when the budget still has headroom.
        """

        def out_of_budget() -> bool:
            if self._cancel is not None and self._cancel():
                return True
            if time_mod.monotonic() > deadline:
                return True
            if (
                self.config.max_fitness_evals is not None
                and self.eval_sims >= self.config.max_fitness_evals
            ):
                return True
            return False

        return out_of_budget

    def _rng_digest(self) -> str:
        """Digest of the engine's random stream position ("" when none).

        Engines with internal randomness override this; the digest goes
        into checkpoint snapshots so a resumed replay can prove it
        reproduced the exact pre-crash stream position.
        """
        return ""

    def _save_checkpoint(self, cursor: int, best_fitness: float,
                         label: str = "") -> None:
        """Snapshot the deterministic engine cursor at a search boundary.

        Called after each generation (GP) / template round (synth).  The
        snapshot is a *cursor*, not a population dump: resume replays the
        search from the start with the persistent eval cache warm, so
        every pre-crash evaluation is a disk hit and reaching this cursor
        again costs cache lookups, not simulations — recovery cost is
        bounded by the one interrupted generation's uncached work.  The
        stored counters (``eval_sims``, rng digest) let the sink verify
        the replay crossed this exact state.

        A failing sink never breaks the search (crash-safety machinery
        must not introduce crashes); the failure is logged and the run
        continues un-journaled.
        """
        if self._checkpoint is None:
            return
        state: dict[str, Any] = {
            "engine": self.engine_name,
            "seed": self.seed,
            "cursor": cursor,
            "label": label,
            "eval_sims": self.eval_sims,
            "fitness_evals": self.fitness_evals,
            "best_fitness": best_fitness,
            "rng": self._rng_digest(),
        }
        try:
            self._checkpoint(state)
        except Exception as exc:  # noqa: BLE001 - isolation boundary
            logger.warning(
                "checkpoint sink failed at %s cursor %d (%s); continuing",
                self.engine_name, cursor, exc,
            )
        if self.events:
            self.events.emit(
                CheckpointSaved(
                    engine=self.engine_name,
                    seed=self.seed,
                    cursor=cursor,
                    eval_sims=self.eval_sims,
                    best_fitness=best_fitness,
                )
            )

    def _generation_event(self, generation: int, population: list[Patch],
                          best_fitness: float) -> GenerationCompleted:
        """Build the GenerationCompleted event from known fitnesses."""
        fitnesses = [
            f for f in (getattr(p, "_fitness", None) for p in population)
            if f is not None
        ]
        return GenerationCompleted(
            generation=generation,
            population=len(population),
            best_fitness=best_fitness,
            fitness_min=min(fitnesses, default=0.0),
            fitness_mean=(sum(fitnesses) / len(fitnesses)) if fitnesses else 0.0,
            fitness_max=max(fitnesses, default=0.0),
            eval_sims=self.eval_sims,
            operator_stats=dict(self.operator_stats),
        )

    def _minimize(self, patch: Patch) -> Patch:
        def is_plausible(candidate: Patch) -> bool:
            return self.evaluate(candidate).is_plausible

        started = time_mod.monotonic()
        eval_before = self.evaluation_seconds
        try:
            return minimize_patch(patch, is_plausible, self.config.minimize_budget)
        finally:
            # Like localization, the phase excludes its own evaluations.
            self.phase_seconds["minimization"] += (
                time_mod.monotonic() - started
            ) - (self.evaluation_seconds - eval_before)

    def _finish(
        self,
        patch: Patch,
        evaluation: Evaluation,
        generations: int,
        start: float,
        history: list[float],
    ) -> RepairOutcome:
        outcome = RepairOutcome(
            plausible=evaluation.is_plausible,
            patch=patch,
            fitness=evaluation.fitness,
            repaired_source=evaluation.source_text if evaluation.is_plausible else None,
            generations=generations,
            fitness_evals=self.fitness_evals,
            simulations=self.simulations,
            elapsed_seconds=time_mod.monotonic() - start,
            best_fitness_history=history,
            seed=self.seed,
            eval_sims=self.eval_sims,
            pruned=self.candidates_pruned,
            quarantined=self.candidates_quarantined,
        )
        if self.events:
            # Fixed emission order (all four phases, then the trial
            # summary) keeps the event-type sequence deterministic.
            for phase in ("parse", "localization", "evaluation", "minimization"):
                self.events.emit(
                    PhaseCompleted(phase=phase, seconds=self.phase_seconds[phase])
                )
            self.events.emit(
                TrialCompleted(
                    plausible=outcome.plausible,
                    fitness=outcome.fitness,
                    generations=outcome.generations,
                    eval_sims=outcome.eval_sims,
                    fitness_evals=outcome.fitness_evals,
                    simulations=outcome.simulations,
                    edits=len(outcome.patch),
                    elapsed_seconds=outcome.elapsed_seconds,
                    pruned=outcome.pruned,
                    quarantined=outcome.quarantined,
                )
            )
        return outcome


__all__ = [
    "EngineHarness",
    "Evaluation",
    "RepairOutcome",
    "RepairProblem",
    "adaptive_chunk_size",
]
