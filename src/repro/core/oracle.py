"""Oracle generation: expected-behaviour traces (paper §4.1.2).

The paper obtains correct-behaviour information from "a previously
functioning version of the circuit design": the golden design is simulated
under the instrumented testbench and the recorded trace becomes the
expected output ``O``.  RQ4 degrades this oracle to 50% / 25% of its rows
via :meth:`SimulationTrace.subsample`.
"""

from __future__ import annotations

from ..hdl import ast, generate, parse
from ..instrument.instrumenter import instrument_testbench, is_instrumented
from ..instrument.trace import SimulationTrace
from ..sim.simulator import Simulator


class OracleError(Exception):
    """Raised when the golden design fails to simulate cleanly."""


def combine_sources(design: ast.Source, testbench: ast.Source) -> ast.Source:
    """Concatenate design and testbench modules into one source tree.

    The result is regenerated and reparsed so the simulation input is
    exactly what CirFix's codegen would emit (the paper's pipeline always
    goes AST → source → simulator).
    """
    text = generate(design) + "\n" + generate(testbench)
    return parse(text)


def ensure_instrumented(
    testbench: ast.Source,
    design: ast.Source,
    clock_override: str | None = None,
) -> ast.Source:
    """Instrument the testbench if it does not already record outputs."""
    design_modules = {m.name: m for m in design.modules}
    for module in testbench.modules:
        if is_instrumented(module):
            return testbench
    instrumented, _ = instrument_testbench(
        testbench, design_modules, clock_override=clock_override
    )
    return instrumented


def generate_oracle(
    golden_design: ast.Source,
    instrumented_testbench: ast.Source,
    max_sim_time: int = 1_000_000,
    max_sim_steps: int = 5_000_000,
    require_finish: bool = True,
) -> SimulationTrace:
    """Simulate the golden design and return the recorded expected trace."""
    combined = combine_sources(golden_design, instrumented_testbench)
    sim = Simulator(combined, max_steps=max_sim_steps)
    result = sim.run(max_sim_time)
    if result.errors:
        raise OracleError(f"golden design simulation reported errors: {result.errors[:3]}")
    if require_finish and not result.finished:
        raise OracleError("golden design simulation did not reach $finish")
    if not result.trace:
        raise OracleError("golden design produced an empty trace (not instrumented?)")
    return SimulationTrace.from_records(result.trace)


def degrade_oracle(oracle: SimulationTrace, fraction: float) -> SimulationTrace:
    """RQ4 helper: keep only ``fraction`` of the oracle's annotations."""
    return oracle.subsample(fraction)
