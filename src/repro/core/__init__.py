"""CirFix core: fault localization, fitness, templates, operators, engine.

The paper's primary contribution.  Public entry points:

- :class:`RepairProblem` — package a faulty design + instrumented testbench
  + oracle trace;
- :class:`CirFixEngine` / :func:`repair` — run Algorithm 1;
- :func:`localize_faults` — Algorithm 2;
- :func:`evaluate_fitness` — the §3.2 fitness function.
"""

from .backend import (
    CandidateResult,
    EvalFailure,
    EvaluationBackend,
    ProcessPoolBackend,
    SerialBackend,
    SupervisionIncident,
    TraceSummary,
    evaluate_design_text,
    make_backend,
    splice_testbench,
)
from .config import TEST_CONFIG, RepairConfig
from .faultloc import FaultLocalization, all_statement_ids, localize_faults
from .fitness import DEFAULT_PHI, FitnessBreakdown, evaluate_fitness, fitness_score
from .minimize import minimize_patch
from .operators import apply_fix_pattern, crossover, mutate
from .oracle import OracleError, combine_sources, degrade_oracle, ensure_instrumented, generate_oracle
from .patch import Edit, Patch
from .repair import CirFixEngine, Evaluation, RepairOutcome, RepairProblem, repair
from .selection import elite, tournament_select
from .serialize import outcome_to_json, patch_from_json, patch_to_json
from .templates_ext import EXTENDED_TEMPLATES, applicable_extended, apply_extended
from .templates import ALL_TEMPLATES, TEMPLATES_BY_CATEGORY, applicable_templates, apply_template

__all__ = [
    "RepairConfig",
    "TEST_CONFIG",
    "RepairProblem",
    "CirFixEngine",
    "RepairOutcome",
    "Evaluation",
    "repair",
    "EvaluationBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "CandidateResult",
    "EvalFailure",
    "SupervisionIncident",
    "TraceSummary",
    "make_backend",
    "evaluate_design_text",
    "splice_testbench",
    "Patch",
    "Edit",
    "localize_faults",
    "all_statement_ids",
    "FaultLocalization",
    "evaluate_fitness",
    "fitness_score",
    "FitnessBreakdown",
    "DEFAULT_PHI",
    "minimize_patch",
    "mutate",
    "crossover",
    "apply_fix_pattern",
    "tournament_select",
    "elite",
    "ALL_TEMPLATES",
    "EXTENDED_TEMPLATES",
    "applicable_extended",
    "apply_extended",
    "patch_to_json",
    "patch_from_json",
    "outcome_to_json",
    "TEMPLATES_BY_CATEGORY",
    "applicable_templates",
    "apply_template",
    "generate_oracle",
    "degrade_oracle",
    "combine_sources",
    "ensure_instrumented",
    "OracleError",
]
