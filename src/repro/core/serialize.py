"""Patch (de)serialization.

The original artifact's output is a *repair patchlist* — "a sequence of
edits to the source code" that can be saved, inspected, and re-applied to
the faulty design to produce the repaired Verilog.  This module provides
that artefact as JSON:

- :func:`patch_to_json` / :func:`patch_from_json` — lossless round-trip of
  a :class:`~repro.core.patch.Patch` (payload subtrees are stored as
  regenerated Verilog fragments and re-parsed on load);
- :func:`outcome_to_json` — a full repair report (patch + metadata) in the
  spirit of the artifact's ``experiments_results.xlsx`` rows.
"""

from __future__ import annotations

import json
from typing import Any

from ..hdl import ast, generate
from ..hdl.lexer import tokenize
from ..hdl.parser import Parser
from .patch import Edit, Patch
from .repair import RepairOutcome


class SerializeError(Exception):
    """Raised when a patch cannot be (de)serialized."""


def _payload_to_text(payload: ast.Node) -> dict[str, str]:
    """Encode a payload subtree as (kind, source fragment)."""
    if isinstance(payload, ast.Stmt):
        return {"kind": "stmt", "text": generate(payload).strip()}
    if isinstance(payload, ast.Expr):
        return {"kind": "expr", "text": generate(payload)}
    if isinstance(payload, ast.ModuleItem):
        return {"kind": "item", "text": generate(payload).strip()}
    raise SerializeError(f"cannot serialize payload {type(payload).__name__}")


def _payload_from_text(spec: dict[str, str]) -> ast.Node:
    parser = Parser(tokenize(spec["text"]))
    if spec["kind"] == "stmt":
        return parser.parse_stmt()
    if spec["kind"] == "expr":
        return parser.parse_expr()
    if spec["kind"] == "item":
        items = parser.parse_module_item()
        if len(items) != 1:
            raise SerializeError("item payload must be a single module item")
        return items[0]
    raise SerializeError(f"unknown payload kind {spec['kind']!r}")


def edit_to_dict(edit: Edit) -> dict[str, Any]:
    """Encode one edit as a JSON-ready dict."""
    data: dict[str, Any] = {"kind": edit.kind, "target_id": edit.target_id}
    if edit.template is not None:
        data["template"] = edit.template
    if edit.payload is not None:
        data["payload"] = _payload_to_text(edit.payload)
    return data


def edit_from_dict(data: dict[str, Any]) -> Edit:
    """Decode one edit from its dict form."""
    payload = _payload_from_text(data["payload"]) if "payload" in data else None
    return Edit(
        kind=data["kind"],
        target_id=data["target_id"],
        payload=payload,
        template=data.get("template"),
    )


def patch_to_json(patch: Patch, indent: int | None = 2) -> str:
    """Serialise a patch to a JSON repair patchlist."""
    return json.dumps(
        {"format": "cirfix-patchlist-v1", "edits": [edit_to_dict(e) for e in patch.edits]},
        indent=indent,
    )


def patch_from_json(text: str) -> Patch:
    """Load a patch from its JSON patchlist form."""
    data = json.loads(text)
    if data.get("format") != "cirfix-patchlist-v1":
        raise SerializeError(f"unknown patchlist format {data.get('format')!r}")
    return Patch([edit_from_dict(e) for e in data["edits"]])


def outcome_to_json(outcome: RepairOutcome, scenario_id: str = "") -> str:
    """A full repair report (one results-spreadsheet row + the patchlist)."""
    return json.dumps(
        {
            "scenario": scenario_id,
            "plausible": outcome.plausible,
            "fitness": outcome.fitness,
            "generations": outcome.generations,
            "fitness_evals": outcome.fitness_evals,
            "eval_sims": outcome.eval_sims,
            "pruned": outcome.pruned,
            "quarantined": outcome.quarantined,
            "simulations": outcome.simulations,
            "elapsed_seconds": round(outcome.elapsed_seconds, 3),
            "seed": outcome.seed,
            "best_fitness_history": [round(f, 6) for f in outcome.best_fitness_history],
            "patchlist": [edit_to_dict(e) for e in outcome.patch.edits],
            "repaired_source": outcome.repaired_source,
        },
        indent=2,
    )
