"""Testbench instrumentation and simulation traces.

Implements the paper's §3.2 insight: a standard hardware testbench can be
instrumented automatically to record output wire/register values at every
rising clock edge, yielding the ``Time -> Var -> {0,1,x,z}`` observable the
fitness function and fault localization consume.
"""

from .analyze import AnalysisError, DutInfo, analyze_dut, find_dut
from .diff import CellDiff, TraceDiff, diff_traces, render_diff
from .instrumenter import RECORD_TASK, build_record_block, instrument_testbench, is_instrumented
from .trace import SimulationTrace, output_mismatch

__all__ = [
    "SimulationTrace",
    "diff_traces",
    "render_diff",
    "TraceDiff",
    "CellDiff",
    "output_mismatch",
    "analyze_dut",
    "find_dut",
    "DutInfo",
    "AnalysisError",
    "instrument_testbench",
    "build_record_block",
    "is_instrumented",
    "RECORD_TASK",
]
