"""Testbench instrumentation.

Inserts the recording hook the CirFix fitness function needs: an extra
``always @(posedge clk) $cirfix_record(out1, out2, ...);`` block in the
testbench, sampling every DUT output at each rising clock edge (values are
captured in the postponed region, i.e. after the slot settles).

The paper reports each manual instrumentation took "under 10 lines of
Verilog"; ours is exactly one always block, generated automatically from
the static analysis in :mod:`repro.instrument.analyze`.
"""

from __future__ import annotations

from ..hdl import ast, number_nodes
from .analyze import AnalysisError, DutInfo, analyze_dut

RECORD_TASK = "$cirfix_record"


def build_record_block(clock: str, signals: list[str]) -> ast.Always:
    """Create ``always @(posedge clock) $cirfix_record(signals...);``."""
    senslist = ast.SensList([ast.SensItem("posedge", ast.Identifier(clock))])
    call = ast.SysTaskCall(RECORD_TASK, [ast.Identifier(name) for name in signals])
    return ast.Always(senslist, call)


def instrument_testbench(
    source: ast.Source,
    design_modules: dict[str, ast.ModuleDef],
    testbench_name: str | None = None,
    clock_override: str | None = None,
    extra_signals: list[str] | None = None,
) -> tuple[ast.Source, DutInfo]:
    """Return a copy of ``source`` with the recording block inserted.

    Args:
        source: Parsed source containing the testbench module (and possibly
            others).
        design_modules: Name → module map for the design under test.
        testbench_name: Module to instrument; default: the first module in
            ``source`` that instantiates a design module.
        clock_override: Explicit clock signal name.
        extra_signals: Additional testbench signals to record alongside the
            DUT outputs (e.g. internal probes).

    Returns:
        (instrumented source clone, DUT analysis info).

    Raises:
        AnalysisError: If no DUT instantiation or clock can be identified.
    """
    clone = source.clone()
    testbench = _pick_testbench(clone, design_modules, testbench_name)
    info = analyze_dut(testbench, design_modules, clock_override)
    if info.clock_signal is None:
        raise AnalysisError(
            f"could not identify a clock signal in {testbench.name!r}; "
            "pass clock_override"
        )
    signals = list(info.output_connections) + list(extra_signals or [])
    if not signals:
        raise AnalysisError(f"no recordable DUT outputs found in {testbench.name!r}")
    testbench.items.append(build_record_block(info.clock_signal, signals))
    number_nodes(clone)
    return clone, info


def is_instrumented(testbench: ast.ModuleDef) -> bool:
    """True when the testbench already contains a ``$cirfix_record`` call."""
    return any(
        isinstance(node, ast.SysTaskCall) and node.name == RECORD_TASK
        for node in testbench.walk()
    )


def _pick_testbench(
    source: ast.Source,
    design_modules: dict[str, ast.ModuleDef],
    testbench_name: str | None,
) -> ast.ModuleDef:
    if testbench_name is not None:
        module = source.module(testbench_name)
        if module is None:
            raise AnalysisError(f"module {testbench_name!r} not found")
        return module
    for module in source.modules:
        if module.name in design_modules:
            continue
        instantiates_design = any(
            isinstance(item, ast.Instance) and item.module_name in design_modules
            for item in module.items
        )
        if instantiates_design:
            return module
    raise AnalysisError("no testbench module found (none instantiates the design)")
