"""Trace diffing: structured comparison of a simulation against an oracle.

Beyond the boolean mismatch set used by fault localization, the repair
workflow benefits from *where* and *how* traces diverge — the paper's
Figure 2 is exactly such a report.  :func:`diff_traces` produces per-cell
differences; :func:`render_diff` renders the Figure-2 style table.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.logic import Value
from .trace import SimulationTrace


@dataclass(frozen=True)
class CellDiff:
    """One mismatching (time, var) observation."""

    time: int
    var: str
    expected: str
    actual: str

    @property
    def involves_xz(self) -> bool:
        return any(c in "xz" for c in self.expected + self.actual)


@dataclass
class TraceDiff:
    """Full comparison result."""

    diffs: list[CellDiff]
    compared_cells: int
    compared_bits: int

    @property
    def mismatched_vars(self) -> set[str]:
        return {d.var for d in self.diffs}

    @property
    def first_divergence(self) -> CellDiff | None:
        return self.diffs[0] if self.diffs else None

    @property
    def is_match(self) -> bool:
        return not self.diffs


def diff_traces(expected: SimulationTrace, actual: SimulationTrace) -> TraceDiff:
    """Compare ``actual`` against every (time, var) the oracle annotates."""
    actual_by_time: dict[int, dict[str, Value]] = {t: v for t, v in actual.rows}
    diffs: list[CellDiff] = []
    cells = bits = 0
    for time, expected_values in expected.rows:
        actual_values = actual_by_time.get(time, {})
        for var, exp in expected_values.items():
            cells += 1
            bits += exp.width
            act = actual_values.get(var)
            act_resized = act.resized(exp.width) if act is not None else None
            if (
                act_resized is None
                or act_resized.aval != exp.aval
                or act_resized.bval != exp.bval
            ):
                diffs.append(
                    CellDiff(
                        time,
                        var,
                        exp.to_bit_string(),
                        act_resized.to_bit_string() if act_resized is not None else "?",
                    )
                )
    return TraceDiff(diffs, cells, bits)


def render_diff(diff: TraceDiff, max_rows: int = 40) -> str:
    """A human-readable divergence report (Figure 2 flavour)."""
    if diff.is_match:
        return f"traces match ({diff.compared_cells} cells, {diff.compared_bits} bits)"
    lines = [
        f"{len(diff.diffs)} mismatching cells of {diff.compared_cells} "
        f"({sorted(diff.mismatched_vars)}):",
        f"{'time':>8s}  {'wire':<20s} {'expected':>12s} {'actual':>12s}",
    ]
    for cell in diff.diffs[:max_rows]:
        lines.append(
            f"{cell.time:>8d}  {cell.var:<20s} {cell.expected:>12s} {cell.actual:>12s}"
        )
    if len(diff.diffs) > max_rows:
        lines.append(f"... and {len(diff.diffs) - max_rows} more")
    return "\n".join(lines)
