"""Static analysis of testbenches: find the DUT and what to record.

The paper observes (§3.2) that "every hardware testbench must instantiate a
device-under-test (DUT) and connect wires to the module being instantiated
... a static analysis of the instantiation of the DUT can provide the
information needed to instrument a testbench automatically".  This module is
that analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hdl import ast


class AnalysisError(Exception):
    """Raised when the testbench cannot be analysed automatically."""


#: Common clock-port spellings, checked in order.
_CLOCK_NAMES = ("clk", "clock", "i_clk", "clk_i", "sysclk", "wb_clk_i", "mclk")


@dataclass
class DutInfo:
    """What the instrumenter needs to know about the DUT hookup.

    Attributes:
        instance_name: Name of the DUT instantiation in the testbench.
        module_name: Name of the instantiated design module.
        output_connections: Testbench-side expressions (as rendered names)
            connected to DUT output ports, in port order.
        clock_signal: Testbench-side clock signal name (None if no clock
            port could be identified).
    """

    instance_name: str
    module_name: str
    output_connections: list[str]
    clock_signal: str | None


def _find_pacing_clock(testbench: ast.ModuleDef) -> str | None:
    """Find a testbench oscillator of the form ``always #N sig = !sig;``."""
    for item in testbench.items:
        if not isinstance(item, ast.Always) or item.senslist is not None:
            continue
        body = item.body
        if isinstance(body, ast.DelayStmt):
            body = body.body
        if not isinstance(body, ast.BlockingAssign):
            continue
        lhs, rhs = body.lhs, body.rhs
        if not isinstance(lhs, ast.Identifier):
            continue
        if (
            isinstance(rhs, ast.UnaryOp)
            and rhs.op in ("!", "~")
            and isinstance(rhs.operand, ast.Identifier)
            and rhs.operand.name == lhs.name
        ):
            return lhs.name
    return None


def _port_direction_map(module: ast.ModuleDef) -> dict[str, str]:
    directions: dict[str, str] = {}
    for item in module.items:
        if isinstance(item, ast.Decl) and item.kind in ("input", "output", "inout"):
            directions[item.name] = item.kind
    return directions


def find_dut(
    testbench: ast.ModuleDef, design_modules: dict[str, ast.ModuleDef]
) -> ast.Instance:
    """Locate the DUT instantiation inside a testbench module.

    The DUT is the (unique) instantiation of a module defined in the design
    source.  With several candidates, the one with the most output ports is
    chosen (sub-component instantiations have fewer).
    """
    candidates = [
        item
        for item in testbench.items
        if isinstance(item, ast.Instance) and item.module_name in design_modules
    ]
    if not candidates:
        raise AnalysisError(
            f"testbench {testbench.name!r} instantiates no design module"
        )
    if len(candidates) == 1:
        return candidates[0]

    def output_count(instance: ast.Instance) -> int:
        module = design_modules[instance.module_name]
        return sum(1 for d in _port_direction_map(module).values() if d == "output")

    return max(candidates, key=output_count)


def analyze_dut(
    testbench: ast.ModuleDef,
    design_modules: dict[str, ast.ModuleDef],
    clock_override: str | None = None,
) -> DutInfo:
    """Analyse the DUT hookup of a testbench.

    Args:
        testbench: The testbench module AST.
        design_modules: Name → module map of the design under test.
        clock_override: Explicit testbench clock signal name (the paper's
            "information already available in the testbench").

    Returns:
        A :class:`DutInfo` describing what to record and when.
    """
    instance = find_dut(testbench, design_modules)
    module = design_modules[instance.module_name]
    directions = _port_direction_map(module)

    # Pair each connection with its port name.
    pairs: list[tuple[str, ast.Expr | None]] = []
    if any(arg.name is not None for arg in instance.ports):
        pairs = [(arg.name or "", arg.expr) for arg in instance.ports]
    else:
        pairs = list(zip(module.port_names, (arg.expr for arg in instance.ports)))

    outputs: list[str] = []
    clock: str | None = clock_override
    for port_name, expr in pairs:
        if expr is None:
            continue
        direction = directions.get(port_name)
        if direction == "output" and isinstance(expr, ast.Identifier):
            outputs.append(expr.name)
        if (
            clock is None
            and direction == "input"
            and port_name.lower() in _CLOCK_NAMES
            and isinstance(expr, ast.Identifier)
        ):
            clock = expr.name
    if clock is None:
        # Purely combinational DUTs (decoders, muxes) have no clock port;
        # the testbench still paces its stimuli with a free-running clock
        # (``always #N clk = !clk;``), which we detect and record against.
        clock = _find_pacing_clock(testbench)
    return DutInfo(
        instance_name=instance.name,
        module_name=instance.module_name,
        output_connections=outputs,
        clock_signal=clock,
    )
