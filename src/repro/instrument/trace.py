"""Simulation traces: the observable CirFix works with.

A :class:`SimulationTrace` is the paper's ``S : Time -> Var -> {0,1,x,z}``
(and ``O`` for expected output): for each recorded timestamp, the 4-state
value of every recorded output wire/register.  Traces serialise to the CSV
shape shown in the paper's Figure 2 (``time,var1,var2,...``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.logic import Value
from ..sim.simulator import TraceRecord


@dataclass
class SimulationTrace:
    """An ordered mapping Time → Var → Value."""

    #: Ordered list of (time, {var: value}).
    rows: list[tuple[int, dict[str, Value]]] = field(default_factory=list)

    @staticmethod
    def from_records(records: list[TraceRecord]) -> "SimulationTrace":
        return SimulationTrace([(r.time, dict(r.values)) for r in records])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def times(self) -> list[int]:
        """Recorded timestamps, in order."""
        return [t for t, _ in self.rows]

    def variables(self) -> list[str]:
        """Recorded variable names, in first-seen order."""
        seen: dict[str, None] = {}
        for _, values in self.rows:
            for name in values:
                seen.setdefault(name)
        return list(seen)

    def get(self, time: int, var: str) -> Value | None:
        """The value of ``var`` at ``time``, or None."""
        for t, values in self.rows:
            if t == time:
                return values.get(var)
        return None

    def __len__(self) -> int:
        return len(self.rows)

    def total_bits(self) -> int:
        """Total recorded bit positions (used for normalisation checks)."""
        return sum(v.width for _, values in self.rows for v in values.values())

    # ------------------------------------------------------------------
    # Oracle degradation (RQ4)
    # ------------------------------------------------------------------

    def subsample(self, fraction: float) -> "SimulationTrace":
        """Keep roughly ``fraction`` of rows, deterministically.

        Models the paper's RQ4 setting where only 50% / 25% of the expected
        behaviour annotations are available.  Rows are kept at an even
        stride so the remaining information still spans the simulation.
        """
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if fraction == 1 or len(self.rows) <= 1:
            return SimulationTrace(list(self.rows))
        keep = max(1, round(len(self.rows) * fraction))
        stride = len(self.rows) / keep
        indices = sorted({int(i * stride) for i in range(keep)})
        return SimulationTrace([self.rows[i] for i in indices])

    # ------------------------------------------------------------------
    # Serialisation (Figure 2 CSV shape)
    # ------------------------------------------------------------------

    def to_csv(self) -> str:
        """Serialise to the Figure 2 CSV shape."""
        variables = self.variables()
        lines = ["time," + ",".join(variables)]
        for time, values in self.rows:
            cells = [str(time)]
            for var in variables:
                value = values.get(var)
                cells.append(value.to_bit_string() if value is not None else "")
            lines.append(",".join(cells))
        return "\n".join(lines) + "\n"

    @staticmethod
    def from_csv(text: str) -> "SimulationTrace":
        lines = [line for line in text.strip().splitlines() if line.strip()]
        if not lines:
            return SimulationTrace()
        header = lines[0].split(",")
        if header[0] != "time":
            raise ValueError("trace CSV must start with a 'time' column")
        variables = header[1:]
        rows: list[tuple[int, dict[str, Value]]] = []
        for line in lines[1:]:
            cells = line.split(",")
            time = int(cells[0])
            values: dict[str, Value] = {}
            for var, cell in zip(variables, cells[1:]):
                if cell:
                    values[var] = Value.from_string(cell)
            rows.append((time, values))
        return SimulationTrace(rows)


def output_mismatch(expected: SimulationTrace, actual: SimulationTrace) -> set[str]:
    """Names of variables whose value ever differs from the oracle.

    This is Algorithm 2's ``get_output_mismatch``.  Comparison happens on
    timestamps present in the oracle; a timestamp missing from the actual
    trace counts as a mismatch for every oracle variable at that time
    (the candidate stopped producing output).
    """
    actual_by_time = {t: values for t, values in actual.rows}
    mismatched: set[str] = set()
    for time, expected_values in expected.rows:
        actual_values = actual_by_time.get(time)
        for var, exp in expected_values.items():
            if actual_values is None or var not in actual_values:
                mismatched.add(var)
                continue
            act = actual_values[var].resized(exp.width)
            if act.aval != exp.aval or act.bval != exp.bval:
                mismatched.add(var)
    return mismatched
