"""Unit tests for each lint rule (L001–L008) on small designs."""

import pytest

from repro.lint import lint_text


def codes(text):
    return [d.code for d in lint_text(text).diagnostics]


def diags_for(text, code):
    return [d for d in lint_text(text).diagnostics if d.code == code]


# ----------------------------------------------------------------------
# L001 multi-driver
# ----------------------------------------------------------------------


def test_multi_driver_two_continuous():
    text = """
    module m(input a, input b, output w);
      assign w = a;
      assign w = b;
    endmodule
    """
    found = diags_for(text, "L001")
    assert len(found) == 1
    assert "'w'" in found[0].message
    assert found[0].severity == "error"


def test_multi_driver_assign_vs_always():
    text = """
    module m(input clk, input a, output reg q);
      assign q = a;
      always @(posedge clk) q <= a;
    endmodule
    """
    assert [d.code for d in diags_for(text, "L001")] == ["L001"]


def test_multi_driver_cross_always():
    text = """
    module m(input clk, input rst, output reg q);
      always @(posedge clk) q <= 1'b1;
      always @(posedge rst) q <= 1'b0;
    endmodule
    """
    assert len(diags_for(text, "L001")) == 1


def test_multi_driver_ignores_initial_and_single_block():
    text = """
    module m(input clk, input a, output reg q);
      initial q = 0;
      always @(posedge clk) begin
        q <= a;
        if (a) q <= ~a;
      end
    endmodule
    """
    assert diags_for(text, "L001") == []


def test_multi_driver_loopvar_exempt():
    text = """
    module m(input clk, output reg [3:0] q);
      integer i;
      always @(posedge clk) for (i = 0; i < 4; i = i + 1) q[i] <= 1'b0;
      always @(negedge clk) for (i = 0; i < 4; i = i + 1) q[i] <= 1'b1;
    endmodule
    """
    found = diags_for(text, "L001")
    assert [d.message.split("'")[1] for d in found] == ["q"]


def test_multi_driver_line_anchor_points_at_second_driver():
    text = (
        "module m(input a, input b, output w);\n"
        "  assign w = a;\n"
        "  assign w = b;\n"
        "endmodule\n"
    )
    found = diags_for(text, "L001")
    assert found[0].line == 3
    assert found[0].node_id is not None


# ----------------------------------------------------------------------
# L002 blocking/non-blocking mix
# ----------------------------------------------------------------------


def test_blocking_mix_flagged():
    text = """
    module m(input clk, input a, output reg q);
      reg tmp;
      always @(posedge clk) begin
        tmp = a;
        q <= tmp;
      end
    endmodule
    """
    found = diags_for(text, "L002")
    assert len(found) == 1
    assert "1 blocking and 1 non-blocking" in found[0].message


def test_blocking_mix_loopvar_assigns_exempt():
    text = """
    module m(input clk, output reg [3:0] q);
      integer i;
      always @(posedge clk) begin
        for (i = 0; i < 4; i = i + 1) q[i] <= 1'b0;
      end
    endmodule
    """
    assert diags_for(text, "L002") == []


def test_pure_styles_not_flagged():
    text = """
    module m(input clk, input a, output reg q, output w);
      reg t;
      assign w = a;
      always @(posedge clk) begin q <= a; t <= ~a; end
      always @(*) ;
    endmodule
    """
    assert diags_for(text, "L002") == []


# ----------------------------------------------------------------------
# L003 incomplete sensitivity
# ----------------------------------------------------------------------


def test_incomplete_sensitivity_missing_signal():
    text = """
    module m(input a, input b, output reg q);
      always @(a) q = a & b;
    endmodule
    """
    found = diags_for(text, "L003")
    assert len(found) == 1
    assert "b" in found[0].message


def test_star_sensitivity_is_complete():
    text = """
    module m(input a, input b, output reg q);
      always @(*) q = a & b;
    endmodule
    """
    assert diags_for(text, "L003") == []


def test_edge_triggered_exempt():
    text = """
    module m(input clk, input a, input b, output reg q);
      always @(posedge clk) q <= a & b;
    endmodule
    """
    assert diags_for(text, "L003") == []


def test_internal_temporary_not_required_in_senslist():
    # t is written before it is read: not an external input of the block.
    text = """
    module m(input a, input b, output reg q);
      reg t;
      always @(a or b) begin
        t = a & b;
        q = t;
      end
    endmodule
    """
    assert diags_for(text, "L003") == []


# ----------------------------------------------------------------------
# L004 inferred latch
# ----------------------------------------------------------------------


def test_latch_from_if_without_else():
    text = """
    module m(input en, input d, output reg q);
      always @(*) if (en) q = d;
    endmodule
    """
    found = diags_for(text, "L004")
    assert len(found) == 1
    assert "'q'" in found[0].message


def test_no_latch_with_else():
    text = """
    module m(input en, input d, output reg q);
      always @(*) if (en) q = d; else q = 1'b0;
    endmodule
    """
    assert diags_for(text, "L004") == []


def test_latch_from_case_without_default():
    text = """
    module m(input [1:0] s, output reg q);
      always @(*) case (s)
        2'b00: q = 1'b0;
        2'b01: q = 1'b1;
      endcase
    endmodule
    """
    assert len(diags_for(text, "L004")) == 1


def test_no_latch_with_default_arm():
    text = """
    module m(input [1:0] s, output reg q);
      always @(*) case (s)
        2'b00: q = 1'b0;
        default: q = 1'b1;
      endcase
    endmodule
    """
    assert diags_for(text, "L004") == []


def test_no_latch_with_preassignment():
    text = """
    module m(input en, input d, output reg q);
      always @(*) begin
        q = 1'b0;
        if (en) q = d;
      end
    endmodule
    """
    assert diags_for(text, "L004") == []


def test_sequential_incomplete_if_is_not_a_latch():
    text = """
    module m(input clk, input en, input d, output reg q);
      always @(posedge clk) if (en) q <= d;
    endmodule
    """
    assert diags_for(text, "L004") == []


# ----------------------------------------------------------------------
# L005 combinational loop
# ----------------------------------------------------------------------


def test_comb_loop_continuous_pair():
    text = """
    module m(input a, output x);
      wire y;
      assign x = y | a;
      assign y = x & a;
    endmodule
    """
    found = diags_for(text, "L005")
    assert len(found) == 1
    assert "x" in found[0].message and "y" in found[0].message


def test_comb_loop_self_edge():
    text = """
    module m(input a, output x);
      assign x = x ^ a;
    endmodule
    """
    assert len(diags_for(text, "L005")) == 1


def test_comb_loop_through_always_star():
    text = """
    module m(input a, output reg x);
      wire y;
      assign y = x;
      always @(*) x = y & a;
    endmodule
    """
    assert len(diags_for(text, "L005")) == 1


def test_register_breaks_the_loop():
    text = """
    module m(input clk, input a, output reg x);
      wire y;
      assign y = x;
      always @(posedge clk) x <= y & a;
    endmodule
    """
    assert diags_for(text, "L005") == []


def test_accumulator_idiom_is_not_a_loop():
    # p and aa are overwritten before any read in the same activation —
    # the gf8_mul pattern from the tate_pairing benchmark.
    text = """
    module m(input [7:0] a, input [7:0] b, output reg [7:0] p);
      reg [7:0] aa;
      integer i;
      always @(*) begin
        p = 8'h00;
        aa = a;
        for (i = 0; i < 8; i = i + 1) begin
          if (b[i]) p = p ^ aa;
          aa = aa << 1;
        end
      end
    endmodule
    """
    assert diags_for(text, "L005") == []


def test_read_before_overwrite_is_still_a_loop():
    text = """
    module m(input a, output reg x);
      always @(*) begin
        x = x ^ a;
        x = x & a;
      end
    endmodule
    """
    assert len(diags_for(text, "L005")) == 1


# ----------------------------------------------------------------------
# L006 undeclared identifier
# ----------------------------------------------------------------------


def test_undeclared_identifier():
    text = """
    module m(input a, output w);
      assign w = a & ghost;
    endmodule
    """
    found = diags_for(text, "L006")
    assert [d.message.split("'")[1] for d in found] == ["ghost"]


def test_declared_names_not_flagged():
    text = """
    module m(input a, output w);
      wire t;
      assign t = a;
      assign w = t;
    endmodule
    """
    assert diags_for(text, "L006") == []


def test_function_locals_known():
    text = """
    module m(input [3:0] a, output [3:0] w);
      function [3:0] inc;
        input [3:0] v;
        begin
          inc = v + 1;
        end
      endfunction
      assign w = inc(a);
    endmodule
    """
    assert diags_for(text, "L006") == []


# ----------------------------------------------------------------------
# L007 unused declaration
# ----------------------------------------------------------------------


def test_unused_reg_flagged_as_info():
    text = """
    module m(input a, output w);
      reg dead;
      assign w = a;
    endmodule
    """
    found = diags_for(text, "L007")
    assert [d.message.split("'")[1] for d in found] == ["dead"]
    assert found[0].severity == "info"


def test_ports_and_params_never_unused():
    text = """
    module m(input a, input unused_port, output w);
      parameter P = 4;
      assign w = a;
    endmodule
    """
    assert diags_for(text, "L007") == []


# ----------------------------------------------------------------------
# L008 width mismatch
# ----------------------------------------------------------------------


def test_truncating_assign_flagged():
    text = """
    module m(input [7:0] a, output [3:0] w);
      assign w = a;
    endmodule
    """
    found = diags_for(text, "L008")
    assert len(found) == 1
    assert "8-bit" in found[0].message and "4-bit" in found[0].message


def test_widening_assign_not_flagged():
    text = """
    module m(input [3:0] a, output [7:0] w);
      assign w = a;
    endmodule
    """
    assert diags_for(text, "L008") == []


def test_unsized_literal_is_conservative():
    text = """
    module m(input [3:0] a, output [3:0] w);
      assign w = a + 1;
    endmodule
    """
    assert diags_for(text, "L008") == []


def test_parameterised_widths_resolve():
    text = """
    module m(input [7:0] a, output [3:0] w);
      parameter W = 4;
      reg [W-1:0] t;
      always @(*) t = a;
      assign w = t;
    endmodule
    """
    found = diags_for(text, "L008")
    assert len(found) == 1
    assert "'t'" in found[0].message


def test_comparison_is_one_bit():
    text = """
    module m(input [7:0] a, input [7:0] b, output w);
      assign w = a == b;
    endmodule
    """
    assert diags_for(text, "L008") == []
