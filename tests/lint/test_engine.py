"""Lint driver tests: reports, profiles, rule resolution, determinism."""

import json

import pytest

from repro.hdl import ParseError, parse
from repro.lint import (
    DEFAULT_GATE_RULES,
    RULES,
    RULES_BY_KEY,
    Diagnostic,
    LintRule,
    lint_text,
    lint_tree,
    new_violations,
    resolve_rules,
)

CLEAN = """
module m(input a, output w);
  assign w = a;
endmodule
"""

DIRTY = """
module m(input a, input b, output w, output reg q);
  assign w = a;
  assign w = b;
  always @(*) if (a) q = b;
endmodule
"""


def test_clean_report():
    report = lint_text(CLEAN)
    assert report.ok
    assert report.modules == 1
    assert report.errors == 0 and report.warnings == 0
    assert report.profile() == {}


def test_dirty_report_profile_and_counts():
    report = lint_text(DIRTY)
    assert not report.ok
    assert report.profile() == {"L001": 1, "L004": 1}
    assert report.errors == 1  # multi-driver
    assert report.warnings == 1  # latch


def test_diagnostics_sorted_and_frozen():
    report = lint_text(DIRTY)
    assert list(report.diagnostics) == sorted(report.diagnostics)
    with pytest.raises(Exception):
        report.diagnostics[0].code = "L999"


def test_to_text_summary_line():
    text = lint_text(DIRTY).to_text()
    assert text.endswith("2 findings (1 error, 1 warning) in 1 module\n")
    assert "[L001/multi-driver]" in text


def test_to_json_schema():
    data = json.loads(lint_text(DIRTY).to_json())
    assert data["modules"] == 1
    assert data["findings"] == 2
    assert data["profile"] == {"L001": 1, "L004": 1}
    assert {d["code"] for d in data["diagnostics"]} == {"L001", "L004"}
    for diag in data["diagnostics"]:
        assert diag["line"] is not None
        assert diag["module"] == "m"


def test_reports_are_byte_stable():
    a, b = lint_text(DIRTY), lint_text(DIRTY)
    assert a.to_text() == b.to_text()
    assert a.to_json() == b.to_json()


def test_lint_tree_accepts_module_and_source():
    tree = parse(DIRTY)
    assert lint_tree(tree).profile() == lint_tree(tree.modules[0]).profile()


def test_parse_error_propagates():
    with pytest.raises(ParseError):
        lint_text("module broken(")


def test_every_rule_satisfies_protocol():
    for rule in RULES:
        assert isinstance(rule, LintRule)
        assert rule.code in RULES_BY_KEY and rule.name in RULES_BY_KEY


def test_resolve_rules_specs():
    assert resolve_rules(None) == RULES
    assert resolve_rules("all") == RULES
    assert [r.code for r in resolve_rules("L001,comb-loop")] == ["L001", "L005"]
    # Dedup + canonical order regardless of spec order.
    assert [r.code for r in resolve_rules("comb-loop,L001,L005")] == ["L001", "L005"]
    with pytest.raises(ValueError, match="unknown lint rule 'L999'"):
        resolve_rules("L999")


def test_default_gate_rules_are_structural():
    codes = sorted(r.code for r in resolve_rules(DEFAULT_GATE_RULES))
    assert codes == ["L001", "L004", "L005"]


def test_new_violations_only_counts_increases():
    baseline = {"L001": 1, "L004": 2}
    assert new_violations({"L001": 1, "L004": 2}, baseline) == {}
    assert new_violations({"L001": 2, "L004": 1}, baseline) == {"L001": 1}
    assert new_violations({"L005": 3}, baseline) == {"L005": 3}
    # Fixing violations never penalises.
    assert new_violations({}, baseline) == {}


def test_rule_selection_restricts_findings():
    report = lint_text(DIRTY, resolve_rules("multi-driver"))
    assert report.profile() == {"L001": 1}


def test_diagnostic_render_and_location():
    diag = Diagnostic(
        module="m", line=4, code="L001", rule="multi-driver",
        severity="error", message="boom",
    )
    assert diag.location() == "m:4"
    assert diag.render() == "m:4: error [L001/multi-driver] boom"
    unknown = Diagnostic(
        module="m", line=0, code="L001", rule="multi-driver",
        severity="error", message="boom",
    )
    assert unknown.location() == "m"
