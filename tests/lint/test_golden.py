"""Golden lint snapshots for every benchsuite project and scenario.

Pins the full diagnostic output (not just the profile) so any rule
change that shifts findings on the real benchmark designs shows up as a
reviewable diff of ``tests/lint/golden/benchsuite_profiles.json``.
Regenerate with::

    PYTHONPATH=src python tests/lint/test_golden.py --regen
"""

import json
import sys
from pathlib import Path

from repro.benchsuite import PROJECT_NAMES, all_scenarios, load_project
from repro.lint import lint_text

GOLDEN_PATH = Path(__file__).parent / "golden" / "benchsuite_profiles.json"

#: Designs expected to lint clean under the default gate rules — the
#: engine's "don't prune the baseline" precondition for gated repair.
CLEAN_PROJECTS = sorted(set(PROJECT_NAMES) - {"sha3"})


def _snapshot():
    golden = {"projects": {}, "scenarios": {}}
    for name in PROJECT_NAMES:
        report = lint_text(load_project(name).design_text)
        golden["projects"][name] = {
            "profile": report.profile(),
            "diagnostics": [d.to_dict() for d in report.diagnostics],
        }
    for sc in all_scenarios():
        report = lint_text(sc.faulty_design_text)
        golden["scenarios"][sc.scenario_id] = {
            "profile": report.profile(),
            "diagnostics": [d.to_dict() for d in report.diagnostics],
        }
    return golden


def test_benchsuite_lint_matches_golden():
    expected = json.loads(GOLDEN_PATH.read_text())
    actual = _snapshot()
    assert actual["projects"].keys() == expected["projects"].keys()
    assert actual["scenarios"].keys() == expected["scenarios"].keys()
    for kind in ("projects", "scenarios"):
        for name, entry in expected[kind].items():
            assert actual[kind][name] == entry, f"{kind[:-1]} {name} diverged"


def test_golden_projects_mostly_clean():
    expected = json.loads(GOLDEN_PATH.read_text())
    for name in CLEAN_PROJECTS:
        assert expected["projects"][name]["profile"] == {}, name
    # sha3's keccak round uses an intra-cycle blocking temporary inside a
    # clocked block — a recorded (accepted) style warning, not an error.
    assert expected["projects"]["sha3"]["profile"] == {"L002": 1}


def test_every_scenario_parses_and_lints():
    for sc in all_scenarios():
        lint_text(sc.faulty_design_text)  # must not raise


if __name__ == "__main__":
    if "--regen" in sys.argv:
        GOLDEN_PATH.write_text(
            json.dumps(_snapshot(), indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {GOLDEN_PATH}")
    else:
        print(__doc__)
