"""Candidate lint gate tests (``RepairConfig.lint_gate``).

Pinned properties, matching the gate contract in ``docs/lint.md``:

1. gate off (the default) is bit-identical to the pre-gate engine —
   zero pruning, no ``candidate_pruned`` events, and the committed
   telemetry golden (``tests/obs/golden``) still matches;
2. gate on is deterministic and backend-independent: serial and
   process-pool runs produce identical outcomes and identical event
   sequences, because pruning happens engine-side before chunking;
3. pruned candidates are charged zero ``eval_sims`` and cache as
   ordinary evaluations (re-submitting one is a cache hit);
4. telemetry agrees with the engine: ``MetricsObserver.candidates_pruned``
   == ``RepairOutcome.pruned`` == the ``TrialCompleted`` field.
"""

import json

import pytest

from repro.benchsuite import load_scenario
from repro.core import TEST_CONFIG, CirFixEngine, RepairProblem
from repro.core.backend import make_backend
from repro.core.config import ConfigError, RepairConfig
from repro.core.oracle import ensure_instrumented, generate_oracle
from repro.core.patch import Edit, Patch
from repro.core.serialize import outcome_to_json
from repro.hdl import ast, parse
from repro.obs.metrics import MetricsObserver
from repro.obs.observer import RecordingObserver

# ----------------------------------------------------------------------
# Unit level: a clean comb mux whose else-branch can be deleted to
# manufacture a latch (L004) on demand.
# ----------------------------------------------------------------------

GOLDEN_MUX = """
module mux(a, b, s, y);
  input a, b, s;
  output y;
  reg y;
  always @(*) begin
    if (s) y = a;
    else y = b;
  end
endmodule
"""

FAULTY_MUX = GOLDEN_MUX.replace("if (s) y = a;", "if (s) y = b;")

MUX_TB = """
module tb;
  reg clk, a, b, s;
  wire y;
  mux dut(.a(a), .b(b), .s(s), .y(y));
  always #5 clk = !clk;
  initial begin
    clk = 0; a = 0; b = 1; s = 0;
    @(negedge clk) s = 1;
    @(negedge clk) begin a = 1; b = 0; end
    @(negedge clk) s = 0;
    #5 $finish;
  end
endmodule
"""


@pytest.fixture(scope="module")
def mux_problem():
    golden = parse(GOLDEN_MUX)
    bench = ensure_instrumented(parse(MUX_TB), golden)
    oracle = generate_oracle(golden, bench)
    return RepairProblem(parse(FAULTY_MUX), bench, oracle, "mux_latch")


def _latch_patch(problem):
    """Delete the else-branch assignment: infers a latch on ``y``."""
    else_assign = [
        n for n in problem.design.walk() if isinstance(n, ast.BlockingAssign)
    ][-1]
    return Patch([Edit("delete", else_assign.node_id)])


def _gated(problem, **overrides):
    return CirFixEngine(problem, TEST_CONFIG.scaled(lint_gate=True, **overrides))


class TestGateUnit:
    def test_violating_candidate_pruned_without_simulation(self, mux_problem):
        engine = _gated(mux_problem)
        evaluation = engine.evaluate(_latch_patch(mux_problem))
        assert not evaluation.compiled
        assert evaluation.fitness == 0.0
        assert engine.eval_sims == 0
        assert engine.simulations == 0
        assert engine.candidates_pruned == 1
        assert engine.pruned_by_rule == {"L004": 1}

    def test_pruned_candidate_is_cached(self, mux_problem):
        engine = _gated(mux_problem)
        patch = _latch_patch(mux_problem)
        engine.evaluate(patch)
        engine.evaluate(patch)
        assert engine.candidates_pruned == 1
        assert engine.fitness_evals == 2  # both calls count as evals

    def test_clean_candidate_passes_the_gate(self, mux_problem):
        engine = _gated(mux_problem)
        evaluation = engine.evaluate(Patch.empty())
        assert evaluation.compiled
        assert engine.candidates_pruned == 0
        assert engine.eval_sims == 1

    def test_gate_respects_rule_selection(self, mux_problem):
        # With only multi-driver gated, the latch candidate simulates.
        engine = _gated(mux_problem, lint_gate_rules="multi-driver")
        evaluation = engine.evaluate(_latch_patch(mux_problem))
        assert evaluation.compiled
        assert engine.candidates_pruned == 0

    def test_gate_off_simulates_the_same_candidate(self, mux_problem):
        engine = CirFixEngine(mux_problem, TEST_CONFIG)
        evaluation = engine.evaluate(_latch_patch(mux_problem))
        assert evaluation.compiled
        assert engine.candidates_pruned == 0
        assert engine.eval_sims == 1

    def test_bad_gate_rules_rejected_at_validation(self):
        with pytest.raises(ConfigError, match="bad lint_gate_rules"):
            RepairConfig(lint_gate_rules="L999").validate()


# ----------------------------------------------------------------------
# End to end on a real scenario, both backends.
# ----------------------------------------------------------------------

SCENARIO_ID = "dec_numeric"
SEED = 0


def _run(gate, workers=1, backend="serial", observers=None):
    scenario = load_scenario(SCENARIO_ID)
    config = scenario.suggested_config(
        RepairConfig(
            population_size=16,
            max_generations=2,
            max_wall_seconds=120.0,
            max_fitness_evals=150,
            minimize_budget=32,
            eval_chunk_size=8,
            workers=workers,
            backend=backend,
            lint_gate=gate,
        )
    )
    problem = scenario.problem()
    eval_backend = make_backend(problem, config)
    try:
        return CirFixEngine(
            problem, config, SEED, backend=eval_backend, observers=observers
        ).run()
    finally:
        eval_backend.close()


def _outcome_key(outcome):
    """Every outcome field except wall-clock and the raw simulation
    count, via the JSON projection.  (``simulations`` includes per-worker
    parent re-simulations, which legitimately differ across backends;
    ``eval_sims`` — the deduplicated candidate count the gate discounts —
    must not.)"""
    data = json.loads(outcome_to_json(outcome))
    data.pop("elapsed_seconds", None)
    data.pop("simulations", None)
    return data


class TestGateOffIsBitIdentical:
    def test_no_pruning_and_no_prune_events(self):
        recording = RecordingObserver()
        outcome = _run(gate=False, observers=[recording])
        assert outcome.pruned == 0
        assert "candidate_pruned" not in recording.types()

    def test_serial_and_process_agree(self):
        serial = _run(gate=False)
        pool = _run(gate=False, workers=2, backend="process")
        assert _outcome_key(serial) == _outcome_key(pool)


class TestGateOnDeterminism:
    def test_backend_independent_outcome_and_events(self):
        serial_rec, pool_rec = RecordingObserver(), RecordingObserver()
        serial = _run(gate=True, observers=[serial_rec])
        pool = _run(gate=True, workers=2, backend="process", observers=[pool_rec])
        assert serial.pruned > 0, "scenario stopped exercising the gate"
        assert _outcome_key(serial) == _outcome_key(pool)
        assert serial_rec.types() == pool_rec.types()
        # Prune events and their payloads line up exactly across backends.
        serial_prunes = [
            (e.new_violations, e.rules)
            for e in serial_rec.events
            if e.type == "candidate_pruned"
        ]
        pool_prunes = [
            (e.new_violations, e.rules)
            for e in pool_rec.events
            if e.type == "candidate_pruned"
        ]
        assert serial_prunes == pool_prunes
        assert len(serial_prunes) == serial.pruned

    def test_run_to_run_stable(self):
        assert _outcome_key(_run(gate=True)) == _outcome_key(_run(gate=True))

    def test_pruning_reduces_eval_sims(self):
        off = _run(gate=False)
        on = _run(gate=True)
        assert on.pruned > 0
        assert on.eval_sims < off.eval_sims


class TestGateTelemetryMatchesEngine:
    @pytest.mark.parametrize(
        "workers,backend", [(1, "serial"), (2, "process")],
        ids=["serial", "process"],
    )
    def test_pruned_counters_agree(self, workers, backend):
        metrics, recording = MetricsObserver(), RecordingObserver()
        outcome = _run(
            gate=True, workers=workers, backend=backend,
            observers=[metrics, recording],
        )
        assert metrics.candidates_pruned == outcome.pruned > 0
        trial = [e for e in recording.events if e.type == "trial_completed"]
        assert len(trial) == 1 and trial[0].pruned == outcome.pruned
        assert sum(metrics.pruned_by_rule.values()) >= metrics.candidates_pruned
        assert set(metrics.pruned_by_rule) <= {"L001", "L004", "L005"}
        # Unique simulated evaluations exclude pruned candidates.
        assert metrics.candidates == outcome.eval_sims
        summary = metrics.summary()["candidates"]
        assert summary["pruned"] == outcome.pruned
        assert summary["pruned_by_rule"] == dict(sorted(metrics.pruned_by_rule.items()))
