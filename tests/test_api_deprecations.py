"""Deprecated positional-argument shims on the repro.api wrappers.

The facade's ``repair_scenario`` / ``repair_verilog`` historically took
``config, seeds, observers`` positionally; they are keyword-only now,
with a shim that overlays positional extras in the old order.  The shim
contract under test:

- a positional call emits **exactly one** DeprecationWarning (naming the
  function), and the values still take effect;
- the keyword path is silent — no warning, ever;
- more than three positional extras is a TypeError, not a silent drop.
"""

import warnings

import pytest

from repro.api import repair_scenario, repair_verilog
from repro.core import TEST_CONFIG
from repro.core.oracle import ensure_instrumented, generate_oracle
from repro.core.repair import RepairProblem
from repro.hdl import parse

DESIGN = """
module counter(clk, rst, out);
  input clk, rst;
  output [1:0] out;
  reg [1:0] out;
  always @(posedge clk) begin
    if (rst) out <= 0;
    else out <= out + 1;
  end
endmodule
"""

TESTBENCH = """
module tb;
  reg clk, rst;
  wire [1:0] out;
  counter dut(.clk(clk), .rst(rst), .out(out));
  always #5 clk = !clk;
  initial begin
    clk = 0; rst = 1;
    @(negedge clk);
    rst = 0;
    repeat (6) begin @(negedge clk); end
    $finish;
  end
endmodule
"""

#: Terminates at generation 0: the "faulty" design below is the golden
#: design, so the seed candidate already scores fitness 1.0.
FAST = TEST_CONFIG.scaled(population_size=2, max_generations=1)


def _problem() -> RepairProblem:
    golden = parse(DESIGN)
    bench = ensure_instrumented(parse(TESTBENCH), golden)
    oracle = generate_oracle(golden, bench)
    return RepairProblem(golden, bench, oracle)


def _deprecations(caught) -> list[warnings.WarningMessage]:
    return [w for w in caught if issubclass(w.category, DeprecationWarning)]


class TestRepairVerilogShim:
    def test_positional_config_warns_exactly_once(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            outcome = repair_verilog(DESIGN, TESTBENCH, DESIGN, FAST, (0,))
        deprecations = _deprecations(caught)
        assert len(deprecations) == 1
        assert "repair_verilog" in str(deprecations[0].message)
        assert "keyword" in str(deprecations[0].message)
        assert outcome.plausible  # positional config/seeds took effect

    def test_keyword_path_is_silent(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            outcome = repair_verilog(
                DESIGN, TESTBENCH, DESIGN, config=FAST, seeds=(0,)
            )
        assert _deprecations(caught) == []
        assert outcome.plausible

    def test_positional_and_keyword_calls_agree(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            positional = repair_verilog(DESIGN, TESTBENCH, DESIGN, FAST, (0,))
        keyword = repair_verilog(DESIGN, TESTBENCH, DESIGN, config=FAST, seeds=(0,))
        assert positional.fitness == keyword.fitness
        assert positional.seed == keyword.seed
        assert positional.eval_sims == keyword.eval_sims

    def test_positional_seeds_take_effect(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            outcome = repair_verilog(DESIGN, TESTBENCH, DESIGN, FAST, (7,))
        assert outcome.seed == 7

    def test_too_many_positional_extras_is_typeerror(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(TypeError, match="at most 3 positional"):
                repair_verilog(DESIGN, TESTBENCH, DESIGN, FAST, (0,), None, "extra")


class TestRepairScenarioShim:
    def test_positional_config_warns_exactly_once(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            outcome = repair_scenario(_problem(), FAST, (0,))
        deprecations = _deprecations(caught)
        assert len(deprecations) == 1
        assert "repair_scenario" in str(deprecations[0].message)
        assert outcome.plausible

    def test_keyword_path_is_silent(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            outcome = repair_scenario(_problem(), config=FAST, seeds=(0,))
        assert _deprecations(caught) == []
        assert outcome.plausible

    def test_warning_points_at_the_caller(self):
        # stacklevel must attribute the warning to this file, not api.py.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            repair_scenario(_problem(), FAST, (0,))
        deprecations = _deprecations(caught)
        assert len(deprecations) == 1
        assert deprecations[0].filename == __file__
