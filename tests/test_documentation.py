"""Documentation hygiene: every public module, class, and function in the
library carries a docstring (deliverable (e): doc comments on every public
item)."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.startswith("repro.benchsuite.projects")
    and name != "repro.__main__"  # importing it runs the CLI
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} has no module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-exported from elsewhere
        if not inspect.getdoc(obj):
            undocumented.append(name)
        elif inspect.isclass(obj):
            for method_name, method in vars(obj).items():
                if method_name.startswith("_") or not inspect.isfunction(method):
                    continue
                if not inspect.getdoc(method):
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, f"{module_name}: missing docstrings on {undocumented}"
