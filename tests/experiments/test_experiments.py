"""Experiment-harness tests (the cheap, deterministic parts)."""

import pytest

from repro.experiments.common import PRESETS, format_table
from repro.experiments.figure2 import compute_figure2, render_figure2
from repro.experiments.figure3 import compute_figure3
from repro.experiments.phi_ablation import run_phi_ablation
from repro.experiments.rq2 import analyze_rq2, render_rq2
from repro.experiments.rq3 import compute_rq3
from repro.experiments.table2 import PAPER_LOC, compute_table2


class TestTable2:
    def test_eleven_rows(self):
        rows = compute_table2()
        assert len(rows) == 11

    def test_paper_loc_reference_complete(self):
        assert sum(v[0] for v in PAPER_LOC.values()) == 9770
        assert sum(v[1] for v in PAPER_LOC.values()) == 2923

    def test_loc_positive(self):
        for row in compute_table2():
            assert row.design_loc > 0
            assert row.testbench_loc > 0


class TestFigure2:
    def test_signature_matches_paper(self):
        data = compute_figure2()
        assert data.mismatched_vars == {"overflow_out"}
        assert abs(data.faulty_fitness - 0.58) < 0.05

    def test_render_marks_mismatches(self):
        data = compute_figure2()
        text = render_figure2(data)
        assert "<-- mismatch" in text
        assert "0.58" in text


class TestFigure3:
    def test_insert_plus_replace_reaches_one(self):
        data = compute_figure3()
        assert data.edit_kinds == ["insert_after", "replace"]
        assert data.patched_fitness == 1.0


class TestRq2Analysis:
    def _result(self, scenario_id, category, plausible, seconds):
        from repro.experiments.common import ScenarioResult

        return ScenarioResult(
            scenario_id=scenario_id,
            project="p",
            description="d",
            category=category,
            plausible=plausible,
            correct=plausible,
            repair_seconds=seconds,
            fitness=1.0 if plausible else 0.5,
            simulations=10,
            generations=1,
            edits=1,
            paper_outcome="correct",
            seed=0,
        )

    def test_category_summaries(self):
        results = [
            self._result("a", 1, True, 1.0),
            self._result("b", 1, False, None),
            self._result("c", 2, True, 2.0),
        ]
        analysis = analyze_rq2(results)
        assert analysis.cat1.total == 2
        assert analysis.cat1.plausible == 1
        assert analysis.cat2.plausible_rate == 1.0

    def test_mannwhitney_computed_when_both_have_times(self):
        results = [
            self._result("a", 1, True, 1.0),
            self._result("b", 1, True, 3.0),
            self._result("c", 2, True, 2.0),
            self._result("d", 2, True, 4.0),
        ]
        analysis = analyze_rq2(results)
        assert analysis.p_value is not None
        assert 0.0 <= analysis.p_value <= 1.0
        assert "Mann-Whitney" in render_rq2(analysis)

    def test_no_times_no_test(self):
        results = [self._result("a", 1, False, None), self._result("b", 2, False, None)]
        analysis = analyze_rq2(results)
        assert analysis.p_value is None


class TestRq3:
    def test_trajectory_matches_paper_shape(self):
        result = compute_rq3()
        assert result.is_monotone
        assert result.fitness_trajectory[-1] == 1.0
        assert 0.9 < result.rs_sens_fitness < 1.0


class TestPhiAblation:
    def test_phi_one_flat_gradient(self):
        result = run_phi_ablation()
        cells = {c.phi: c for c in result.cells}
        assert cells[1.0].gradient == pytest.approx(0.0, abs=1e-9)
        assert cells[2.0].gradient > 0


class TestInfra:
    def test_presets_exist(self):
        assert set(PRESETS) == {"smoke", "quick", "full"}
        assert PRESETS["full"].population_size > PRESETS["smoke"].population_size

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l.rstrip()) for l in lines[:1])) == 1
