"""Tests for the implemented future-work experiments (structure-level; the
full searches run in benchmarks/)."""

from repro.core.config import RepairConfig
from repro.experiments.ext_templates import ExtAblationRow, render_ext_ablation
from repro.experiments.param_sensitivity import (
    SWEEPS,
    SweepCell,
    render_param_sensitivity,
    run_param_sensitivity,
)


class TestExtAblationRendering:
    def test_render_includes_verdicts(self):
        rows = [
            ExtAblationRow("rs_regsize", False, 0.986, True, 1.0, "template[widen_register]@42"),
        ]
        text = render_ext_ablation(rows)
        assert "rs_regsize" in text
        assert "widen_register" in text
        assert "yes" in text and "no" in text


class TestParamSensitivity:
    def test_sweeps_cover_three_knobs(self):
        assert set(SWEEPS) == {"population_size", "rt_threshold", "mut_threshold"}

    def test_small_sweep_runs(self):
        base = RepairConfig(
            population_size=40,
            max_generations=2,
            max_wall_seconds=30.0,
            max_fitness_evals=150,
        )
        cells = run_param_sensitivity(
            base,
            scenario_ids=("ff_cond",),
            seeds=(0,),
            sweeps={"rt_threshold": (0.2,)},
        )
        assert len(cells) == 1
        cell = cells[0]
        assert cell.total == 1
        assert 0 <= cell.repaired <= 1
        assert cell.mean_simulations > 0

    def test_render(self):
        cells = [SweepCell("rt_threshold", 0.2, 2, 3, 140.0)]
        text = render_param_sensitivity(cells)
        assert "rt_threshold" in text
        assert "67%" in text
