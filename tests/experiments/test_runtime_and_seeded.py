"""Structure tests for the runtime-analysis and seeded-defect experiments."""

from repro.core.config import RepairConfig
from repro.experiments.runtime_analysis import (
    RuntimeRow,
    render_runtime_analysis,
    run_runtime_analysis,
)
from repro.experiments.seeded_defects import SeededRepairRow, render_seeded_defects


class TestRuntimeAnalysis:
    def test_single_trial_breakdown(self):
        config = RepairConfig(
            population_size=30,
            max_generations=2,
            max_wall_seconds=30.0,
            max_fitness_evals=120,
        )
        rows = run_runtime_analysis(config, scenario_ids=("ff_cond",), seed=0)
        row = rows[0]
        assert row.total_seconds > 0
        assert 0 < row.evaluation_seconds <= row.total_seconds
        # The paper's claim: simulation dominates trial time.
        assert row.evaluation_share > 0.5
        assert row.simulations > 0

    def test_render(self):
        rows = [RuntimeRow("x", 10.0, 9.5, 500, True)]
        text = render_runtime_analysis(rows)
        assert "95.0%" in text
        assert "paper: >90%" in text


class TestSeededRendering:
    def test_render_totals(self):
        rows = [
            SeededRepairRow("flip_flop", 3, 3, 0.4),
            SeededRepairRow("counter", 3, 2, 0.5),
        ]
        text = render_seeded_defects(rows)
        assert "5/6" in text
        assert "flip_flop" in text
