"""Renderer tests for the experiment harness outputs."""

from repro.experiments.common import ScenarioResult
from repro.experiments.rq1 import HeadToHeadRow, Rq1Result, render_rq1
from repro.experiments.rq4 import Rq4Cell, Rq4Result, render_rq4
from repro.experiments.table3 import render_table3


def result(sid, cat, outcome, seconds=None):
    return ScenarioResult(
        scenario_id=sid,
        project="proj",
        description="a defect",
        category=cat,
        plausible=outcome != "none",
        correct=outcome == "correct",
        repair_seconds=seconds,
        fitness=1.0 if outcome != "none" else 0.4,
        simulations=100,
        generations=2,
        edits=1,
        paper_outcome="correct",
        seed=0,
    )


class TestTable3Renderer:
    def test_summary_counts(self):
        rows = [
            result("a", 1, "correct", 1.0),
            result("b", 1, "plausible", 2.0),
            result("c", 2, "none"),
        ]
        text = render_table3(rows)
        assert "Plausible: 2/3" in text
        assert "Correct:   1/3" in text
        assert "paper: 3/3" in text  # all paper_outcome='correct'

    def test_missing_time_dash(self):
        text = render_table3([result("a", 1, "none")])
        assert "-" in text

    def test_outcome_property(self):
        assert result("x", 1, "correct", 1.0).outcome == "correct"
        assert result("x", 1, "plausible", 1.0).outcome == "plausible"
        assert result("x", 1, "none").outcome == "none"


class TestRq1Renderer:
    def test_wins_counted(self):
        rows = [
            HeadToHeadRow("a", True, 100, False, 500),
            HeadToHeadRow("b", True, 50, True, 200),
            HeadToHeadRow("c", False, 600, False, 600),
        ]
        res = Rq1Result(rows)
        assert res.cirfix_wins == 1
        text = render_rq1(res)
        assert "CirFix repairs 1 scenarios" in text


class TestRq4Renderer:
    def test_levels_and_paper_column(self):
        res = Rq4Result(
            [
                Rq4Cell(1.0, 3, 3, 3),
                Rq4Cell(0.5, 3, 2, 3),
                Rq4Cell(0.25, 2, 1, 3),
            ]
        )
        text = render_rq4(res)
        assert "100%" in text and "50%" in text and "25%" in text
        assert "21/16" in text  # paper reference for full oracle
        assert res.by_fraction(0.5).correct == 2

    def test_unknown_fraction_raises(self):
        import pytest

        res = Rq4Result([Rq4Cell(1.0, 1, 1, 1)])
        with pytest.raises(KeyError):
            res.by_fraction(0.33)


class TestMintedRenderer:
    def test_table_and_overall_line(self):
        from repro.mint.grading import GradedScenario, GradeReport
        from repro.experiments.minted import render_minted_grading

        def graded(sid, mutator, plausible, truth):
            return GradedScenario(
                scenario_id=sid,
                source="fuzz",
                base="seed:1",
                mutator=mutator,
                category=1,
                faulty_fitness=0.5,
                plausible=plausible,
                correct=plausible,
                ground_truth_match=truth,
                fitness=1.0 if plausible else 0.5,
                eval_sims=10,
                generations=1,
                edits=1,
            )

        report = GradeReport(
            seed=0,
            engine="cirfix",
            results=[
                graded("a", "negate_condition", True, True),
                graded("b", "negate_condition", True, False),
                graded("c", "stuck_constant", False, False),
            ],
        )
        text = render_minted_grading(report)
        assert "negate_condition" in text
        assert "2/2" in text  # both negate scenarios plausible
        assert "overall (cirfix): plausible 2/3" in text
        assert "ground-truth match 1/3" in text
