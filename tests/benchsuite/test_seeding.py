"""Random defect seeding tests."""

import pytest

from repro.benchsuite import load_project
from repro.benchsuite.seeding import DefectSeeder
from repro.hdl import parse


@pytest.fixture(scope="module")
def seeder():
    return DefectSeeder(load_project("flip_flop"), rng_seed=1)


class TestSeeding:
    def test_generates_requested_count(self, seeder):
        defects = seeder.generate(3)
        assert len(defects) == 3

    def test_defects_compile(self, seeder):
        for defect in seeder.generate(3):
            parse(defect.faulty_text)

    def test_defects_are_observable(self, seeder):
        for defect in seeder.generate(3):
            assert 0.0 < defect.faulty_fitness < 1.0

    def test_defects_differ_from_golden(self, seeder):
        golden = load_project("flip_flop").design_text
        for defect in seeder.generate(3):
            assert defect.faulty_text != golden

    def test_deterministic_per_seed(self):
        project = load_project("flip_flop")
        first = DefectSeeder(project, rng_seed=5).generate(2)
        second = DefectSeeder(project, rng_seed=5).generate(2)
        assert [d.faulty_text for d in first] == [d.faulty_text for d in second]

    def test_as_scenario_roundtrip(self, seeder):
        defect = seeder.generate(1)[0]
        scenario = seeder.as_scenario(defect)
        assert scenario.faulty_design_text == defect.faulty_text
        fitness = scenario.faulty_fitness()
        assert abs(fitness - defect.faulty_fitness) < 1e-9
