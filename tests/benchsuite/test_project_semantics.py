"""Semantic checks on the golden projects: each design must actually do
its job under the main testbench (stronger than trace-exists checks, and
documents the intended behaviour of every re-authored core)."""

import pytest

from repro.benchsuite import load_project
from repro.core.oracle import combine_sources, ensure_instrumented
from repro.hdl import parse
from repro.sim.simulator import Simulator


@pytest.fixture(scope="module")
def results():
    cache = {}

    def run(name):
        if name not in cache:
            project = load_project(name)
            golden = parse(project.design_text)
            bench = ensure_instrumented(parse(project.testbench_text), golden)
            sim = Simulator(combine_sources(golden, bench))
            cache[name] = sim.run(1_000_000)
        return cache[name]

    return run


class TestCounter:
    def test_counts_and_overflows(self, results):
        trace = results("counter").trace
        counts = [r.values["counter_out"] for r in trace if r.values["counter_out"].is_fully_defined]
        assert any(v.to_int() == 15 for v in counts)  # reaches max
        overflow = [r.values["overflow_out"].to_bit_string() for r in trace]
        assert "1" in overflow  # overflow fires
        # After wrap-around the counter is small again with overflow latched
        # (paper's walkthrough ends at counter 5, overflow 1; exact value
        # depends on the reset handshake timing).
        assert trace[-1].values["counter_out"].to_int() <= 5
        assert trace[-1].values["overflow_out"].to_int() == 1


class TestDecoder:
    def test_one_hot_when_enabled(self, results):
        for record in results("decoder_3_to_8").trace:
            value = record.values["out"]
            if value.is_fully_defined and value.to_int() != 0:
                assert bin(value.to_int()).count("1") == 1  # one-hot


class TestMux:
    def test_output_tracks_selected_input(self, results):
        trace = results("mux_4_1").trace
        defined = [r.values["out"].to_int() for r in trace if r.values["out"].is_fully_defined]
        assert {1, 2, 4, 8} <= set(defined)  # a/b/c/d each selected once


class TestFsm:
    def test_grants_mutually_exclusive(self, results):
        for record in results("fsm_full").trace:
            g0 = record.values["gnt_0"]
            g1 = record.values["gnt_1"]
            if g0.is_fully_defined and g1.is_fully_defined:
                assert not (g0.to_int() and g1.to_int())

    def test_both_requesters_served(self, results):
        trace = results("fsm_full").trace
        assert any(r.values["gnt_0"].to_int() == 1 for r in trace if r.values["gnt_0"].is_fully_defined)
        assert any(r.values["gnt_1"].to_int() == 1 for r in trace if r.values["gnt_1"].is_fully_defined)


class TestLshift:
    def test_rotation_preserves_popcount(self, results):
        trace = results("lshift_reg").trace
        seen_a5 = False
        for record in trace:
            value = record.values["op"]
            if value.is_fully_defined and value.to_int():
                if value.to_int() in (0xA5, 0x5A + 0x100):  # loaded value appears
                    seen_a5 = True
        assert seen_a5 or any(
            r.values["op"].is_fully_defined and bin(r.values["op"].to_int()).count("1") == 4
            for r in trace
        )


class TestI2c:
    def test_data_byte_received(self, results):
        trace = results("i2c").trace
        valid_rows = [r for r in trace if r.values["data_valid"].to_bit_string() == "1"]
        assert valid_rows, "no data_valid strobe"
        assert valid_rows[0].values["data_out"].aval == 0x3C

    def test_address_acknowledged(self, results):
        trace = results("i2c").trace
        # sda_out must be driven low (ACK) at least once during the
        # own-address transaction.
        assert any(r.values["sda_out"].to_bit_string() == "0" for r in trace)

    def test_foreign_address_not_acked_at_end(self, results):
        trace = results("i2c").trace
        # The second transaction targets a foreign address: after its ACK
        # slot the line must be released (no 0 during the final rows).
        tail = trace[-6:]
        assert all(r.values["sda_out"].to_bit_string() == "1" for r in tail)


class TestSha3:
    def test_digest_produced(self, results):
        trace = results("sha3").trace
        valid = [r for r in trace if r.values["out_valid"].to_bit_string() == "1"]
        assert valid
        digest = valid[0].values["hash_out"]
        assert digest.is_fully_defined
        assert digest.aval != 0

    def test_ready_during_absorb(self, results):
        trace = results("sha3").trace
        assert any(r.values["ready"].to_bit_string() == "1" for r in trace)
        assert any(r.values["ready"].to_bit_string() == "0" for r in trace)


class TestTatePairing:
    def test_accumulator_progresses_and_finishes(self, results):
        trace = results("tate_pairing").trace
        assert trace[-1].values["done"].to_int() == 1
        values = {
            r.values["acc_out"].aval
            for r in trace
            if r.values["acc_out"].is_fully_defined
        }
        assert len(values) >= 4  # the Miller loop folds several times


class TestReedSolomon:
    def test_corrected_symbols_drain_in_order(self, results):
        trace = results("reed_solomon_decoder").trace
        outs = [
            r.values["out_data"].aval
            for r in trace
            if r.values["out_valid"].to_bit_string() == "1"
        ]
        # Six symbols loaded: 0x20..0x25 with xor 0x0F on odd indexes.
        expected = [0x20, 0x21 ^ 0x0F, 0x22, 0x23 ^ 0x0F, 0x24, 0x25 ^ 0x0F]
        assert outs[: len(expected)] == expected

    def test_drain_waits_500_cycles(self, results):
        trace = results("reed_solomon_decoder").trace
        first_valid = next(
            r.time for r in trace if r.values["out_valid"].to_bit_string() == "1"
        )
        assert first_valid > 500 * 10  # 500 cycles at period 10


class TestSdram:
    def test_read_back_written_data(self, results):
        trace = results("sdram_controller").trace
        reads = [
            r.values["rd_data"].aval
            for r in trace
            if r.values["rd_valid"].to_bit_string() == "1"
        ]
        assert reads[:3] == [0xDE, 0x5C, 0xAD]  # testbench read order
        assert reads[-1] == 0xB2  # post-warm-reset readback

    def test_init_sequence_commands(self, results):
        trace = results("sdram_controller").trace
        commands = [r.values["command"].to_bit_string() for r in trace]
        assert "001" in commands  # PRECHARGE
        assert "010" in commands  # REFRESH
        assert "100" in commands  # READ
        assert "101" in commands  # WRITE
