"""Golden project health: every project parses, simulates to $finish, and
produces a non-trivial instrumented trace — on both benches."""

import pytest

from repro.benchsuite import PROJECT_NAMES, all_projects, load_project
from repro.core.oracle import ensure_instrumented, generate_oracle
from repro.hdl import parse


@pytest.fixture(scope="module", params=PROJECT_NAMES)
def project(request):
    return load_project(request.param)


class TestGoldenProjects:
    def test_design_parses(self, project):
        tree = parse(project.design_text)
        assert tree.modules

    def test_testbench_parses(self, project):
        parse(project.testbench_text)

    def test_validation_bench_exists(self, project):
        assert project.validate_text is not None

    def test_main_bench_oracle(self, project):
        golden = parse(project.design_text)
        bench = ensure_instrumented(parse(project.testbench_text), golden)
        oracle = generate_oracle(golden, bench)
        assert len(oracle) >= 8
        assert oracle.variables()

    def test_validation_bench_oracle(self, project):
        golden = parse(project.design_text)
        bench = ensure_instrumented(parse(project.validate_text), golden)
        oracle = generate_oracle(golden, bench)
        assert len(oracle) >= 8

    def test_loc_counts_positive(self, project):
        assert project.design_loc > 10
        assert project.testbench_loc > 10


class TestRegistry:
    def test_eleven_projects(self):
        assert len(PROJECT_NAMES) == 11
        assert len(all_projects()) == 11

    def test_unknown_project_raises(self):
        with pytest.raises(KeyError):
            load_project("nonexistent")

    def test_table2_projects_match_paper(self):
        expected = {
            "decoder_3_to_8",
            "counter",
            "flip_flop",
            "fsm_full",
            "lshift_reg",
            "mux_4_1",
            "i2c",
            "sha3",
            "tate_pairing",
            "reed_solomon_decoder",
            "sdram_controller",
        }
        assert set(PROJECT_NAMES) == expected
