"""Engine parity across the full benchmark suite.

The compiled engine's acceptance bar: every benchsuite project's golden
simulation and every defect scenario's faulty simulation produce a
bit-identical :class:`~repro.sim.simulator.SimResult` — values *and*
execution counters — under the interpreter and the closure compiler.
"""

import pytest

from repro.benchsuite import all_projects, all_scenarios
from repro.hdl import ast, parse
from repro.sim import CompiledSimulator, Simulator

MAX_TIME = 1_000_000


def full_key(result):
    """Every observable of a run, including counters and 4-state bits."""
    return (
        result.time,
        result.finished,
        tuple(result.output),
        tuple(result.errors),
        result.steps_used,
        result.events_executed,
        result.slots_advanced,
        tuple(
            (
                record.time,
                tuple(
                    (name, v.width, v.aval, v.bval, v.signed)
                    for name, v in record.values.items()
                ),
            )
            for record in result.trace
        ),
    )


def _run_both(combined):
    interp = Simulator(combined).run(MAX_TIME)
    compiled = CompiledSimulator(combined).run(MAX_TIME)
    return interp, compiled


@pytest.mark.parametrize(
    "project", all_projects(), ids=lambda p: p.name
)
def test_project_golden_parity(project):
    combined = parse(project.design_text + "\n" + project.testbench_text)
    interp, compiled = _run_both(combined)
    assert full_key(interp) == full_key(compiled)


@pytest.mark.parametrize(
    "scenario", all_scenarios(), ids=lambda s: s.scenario_id
)
def test_scenario_faulty_parity(scenario):
    design = parse(scenario.faulty_design_text)
    testbench = scenario.instrumented_testbench()
    combined = ast.Source(list(design.modules) + list(testbench.modules))
    interp, compiled = _run_both(combined)
    assert full_key(interp) == full_key(compiled)
