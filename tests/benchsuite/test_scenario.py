"""Scenario machinery tests (defect transplantation, config scaling,
correctness checking)."""

import pytest

from repro.benchsuite import load_scenario
from repro.benchsuite.scenario import Defect
from repro.core.config import RepairConfig


class TestDefectApply:
    def test_replacement_applied_once(self):
        defect = Defect("t", "p", "d", 1, (("aaa", "bbb"),))
        assert defect.apply("aaa aaa") == "bbb aaa"

    def test_missing_pattern_raises(self):
        defect = Defect("t", "p", "d", 1, (("zzz", "y"),))
        with pytest.raises(ValueError):
            defect.apply("aaa")

    def test_noop_defect_rejected(self):
        defect = Defect("t", "p", "d", 1, (("a", "a"),))
        with pytest.raises(ValueError):
            defect.apply("aaa")


class TestScenario:
    def test_problem_is_cached(self):
        scenario = load_scenario("ff_cond")
        assert scenario.problem() is scenario.problem()

    def test_oracle_shared_across_scenarios_of_project(self):
        first = load_scenario("counter_sens")
        second = load_scenario("counter_reset")
        assert first.oracle().times() == second.oracle().times()

    def test_suggested_config_scales_bounds(self):
        scenario = load_scenario("rs_sens")
        base = RepairConfig()
        scaled = scenario.suggested_config(base)
        end_time = scenario.oracle().times()[-1]
        assert scaled.max_sim_time >= end_time
        assert scaled.max_sim_steps >= 20_000
        # Other fields untouched.
        assert scaled.population_size == base.population_size

    def test_is_correct_repair_accepts_golden(self):
        scenario = load_scenario("ff_cond")
        assert scenario.is_correct_repair(scenario.project.design_text)

    def test_is_correct_repair_rejects_garbage(self):
        scenario = load_scenario("ff_cond")
        assert not scenario.is_correct_repair("module tff; endmodule")

    def test_faulty_fitness_uses_phi(self):
        scenario = load_scenario("counter_reset")
        # The counter defect's signature is x output, so phi matters.
        assert scenario.faulty_fitness(phi=1.0) != scenario.faulty_fitness(phi=3.0)
