"""Defect scenario health: all 32 transplants apply, parse, and visibly
change behaviour under the instrumented testbench (the paper's requirement
that defects "change the externally visible behavior of the circuit")."""

import pytest

from repro.benchsuite import DEFECTS, all_scenarios, load_scenario
from repro.hdl import parse

SCENARIO_IDS = [d.scenario_id for d in DEFECTS]


@pytest.fixture(scope="module", params=SCENARIO_IDS)
def scenario(request):
    return load_scenario(request.param)


class TestSuiteShape:
    def test_thirty_two_defects(self):
        assert len(DEFECTS) == 32

    def test_category_split_matches_paper(self):
        # Paper: 19 Category 1 and 13 Category 2 defects.
        cat1 = sum(1 for d in DEFECTS if d.category == 1)
        cat2 = sum(1 for d in DEFECTS if d.category == 2)
        assert (cat1, cat2) == (19, 13)

    def test_eleven_projects_covered(self):
        assert len({d.project for d in DEFECTS}) == 11

    def test_paper_outcomes_recorded(self):
        correct = sum(1 for d in DEFECTS if d.paper_outcome == "correct")
        plausible = sum(1 for d in DEFECTS if d.paper_outcome in ("correct", "plausible"))
        assert correct == 16
        assert plausible == 21

    def test_repair_times_only_for_repaired(self):
        for defect in DEFECTS:
            if defect.paper_outcome == "none":
                assert defect.paper_repair_seconds is None
            else:
                assert defect.paper_repair_seconds is not None

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            load_scenario("bogus")


class TestEachDefect:
    def test_faulty_design_differs_from_golden(self, scenario):
        assert scenario.faulty_design_text != scenario.project.design_text

    def test_faulty_design_parses(self, scenario):
        parse(scenario.faulty_design_text)

    def test_defect_is_observable(self, scenario):
        """The transplanted defect must degrade fitness below 1.0."""
        fitness = scenario.faulty_fitness()
        assert 0.0 <= fitness < 1.0

    def test_golden_design_scores_one(self, scenario):
        from repro.benchsuite.scenario import simulate_design_text
        from repro.core.fitness import evaluate_fitness

        trace = simulate_design_text(
            scenario.project.design_text, scenario.instrumented_testbench()
        )
        assert evaluate_fitness(trace, scenario.oracle()).fitness == 1.0

    def test_golden_design_is_correct_repair(self, scenario):
        """The validation-bench correctness check must accept the golden
        design itself (sanity of the correctness oracle)."""
        assert scenario.is_correct_repair(scenario.project.design_text)

    def test_faulty_design_not_correct(self, scenario):
        """Defects observable on the main bench are almost always visible on
        the validation bench too; all 32 of ours are."""
        assert not scenario.is_correct_repair(scenario.faulty_design_text)
