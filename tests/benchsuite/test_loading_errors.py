"""Loader error paths: unknown names must fail loudly and helpfully.

``load_project`` / ``load_scenario`` are the suite's only entry points,
so a typo'd name must produce an error that names the bad input and
lists the valid ones — not an AttributeError three frames later.
"""

import pytest

from repro import benchsuite
from repro.benchsuite import (
    PROJECT_NAMES,
    load_project,
    load_scenario,
)
from repro.benchsuite.defects import DEFECTS_BY_ID


class TestLoadProjectErrors:
    def test_unknown_project_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown project 'nonexistent'"):
            load_project("nonexistent")

    def test_unknown_project_error_lists_known_names(self):
        with pytest.raises(KeyError) as excinfo:
            load_project("countre")  # typo of "counter"
        message = str(excinfo.value)
        for name in PROJECT_NAMES:
            assert name in message

    def test_case_sensitive(self):
        with pytest.raises(KeyError):
            load_project("Counter")

    def test_empty_name(self):
        with pytest.raises(KeyError):
            load_project("")

    def test_missing_project_files_raise_filenotfounderror(self, monkeypatch):
        # A registered project whose packaged sources have gone missing is
        # a FileNotFoundError (broken install), not a KeyError (bad name).
        monkeypatch.setattr(
            benchsuite, "_read_project_file", lambda project, filename: None
        )
        with pytest.raises(FileNotFoundError, match="project files for 'counter'"):
            load_project("counter")

    def test_missing_testbench_alone_raises(self, monkeypatch):
        real = benchsuite._read_project_file

        def drop_testbench(project, filename):
            if filename == "testbench.v":
                return None
            return real(project, filename)

        monkeypatch.setattr(benchsuite, "_read_project_file", drop_testbench)
        with pytest.raises(FileNotFoundError):
            load_project("counter")


class TestLoadScenarioErrors:
    def test_unknown_scenario_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown scenario 'no_such_defect'"):
            load_scenario("no_such_defect")

    def test_unknown_scenario_error_lists_known_ids(self):
        with pytest.raises(KeyError) as excinfo:
            load_scenario("counter_rest")  # typo of a real scenario id
        message = str(excinfo.value)
        # The suggestion list is complete, so the caller can grep it.
        for scenario_id in DEFECTS_BY_ID:
            assert scenario_id in message

    def test_project_name_is_not_a_scenario_id(self):
        # Passing a *project* name where a scenario id belongs is the
        # classic confusion; it must fail as an unknown scenario.
        with pytest.raises(KeyError, match="unknown scenario"):
            load_scenario("counter")

    def test_known_scenarios_still_load(self):
        scenario_id = next(iter(DEFECTS_BY_ID))
        scenario = load_scenario(scenario_id)
        assert scenario.scenario_id == scenario_id
        assert scenario.faulty_design_text != scenario.project.design_text
