"""Shared test configuration."""

from hypothesis import HealthCheck, settings

# One profile for the whole suite: generous deadlines (simulations inside
# property tests are slow on shared CI boxes), deterministic derandomize
# left off so new counterexamples can still surface locally.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
