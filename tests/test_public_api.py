"""Top-level public API tests (`repro.repair_verilog` and exports)."""

import repro
from repro import repair_verilog
from repro.core.config import RepairConfig

GOLDEN = """
module blinker(clk, rst, led);
  input clk, rst;
  output led;
  reg led;
  reg [1:0] cnt;
  always @(posedge clk) begin
    if (rst) begin
      cnt <= 0;
      led <= 0;
    end
    else begin
      cnt <= cnt + 1;
      if (cnt == 2'd3) led <= !led;
    end
  end
endmodule
"""

FAULTY = GOLDEN.replace("if (cnt == 2'd3)", "if (cnt == 2'd2)")

TESTBENCH = """
module tb;
  reg clk, rst;
  wire led;
  blinker dut(.clk(clk), .rst(rst), .led(led));
  always #5 clk = !clk;
  initial begin
    clk = 0; rst = 1;
    @(negedge clk);
    rst = 0;
    repeat (20) begin @(negedge clk); end
    $finish;
  end
endmodule
"""


class TestRepairVerilog:
    def test_one_call_repair(self):
        config = RepairConfig(
            population_size=80,
            max_generations=4,
            max_wall_seconds=90.0,
            max_fitness_evals=800,
        )
        outcome = repair_verilog(FAULTY, TESTBENCH, GOLDEN, config=config, seeds=(0, 1))
        assert outcome.plausible
        assert outcome.repaired_source is not None
        assert "module blinker" in outcome.repaired_source

    def test_version_and_exports(self):
        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name), name
