"""Brute-force baseline tests."""

from repro.baselines import BruteForceRepair
from repro.benchsuite import load_scenario
from repro.core.config import RepairConfig


def tiny_config():
    return RepairConfig(
        max_wall_seconds=15.0,
        max_fitness_evals=120,
        max_sim_time=5_000,
        max_sim_steps=30_000,
    )


class TestBruteForce:
    def test_respects_budget(self):
        scenario = load_scenario("ff_cond")
        brute = BruteForceRepair(scenario.problem(), tiny_config(), seed=0)
        outcome = brute.run()
        assert outcome.simulations <= 120
        assert outcome.candidates_tried > 0

    def test_tracks_best_fitness(self):
        scenario = load_scenario("ff_cond")
        outcome = BruteForceRepair(scenario.problem(), tiny_config(), seed=1).run()
        assert 0.0 <= outcome.fitness <= 1.0

    def test_deterministic_per_seed(self):
        scenario = load_scenario("ff_cond")
        out1 = BruteForceRepair(scenario.problem(), tiny_config(), seed=3).run()
        out2 = BruteForceRepair(scenario.problem(), tiny_config(), seed=3).run()
        assert out1.plausible == out2.plausible
        assert out1.candidates_tried == out2.candidates_tried

    def test_does_not_repair_what_cirfix_does(self):
        """The §5.1 shape: under a budget where CirFix succeeds, uniform
        search fails (it has the whole AST × AST edit space to wander)."""
        from repro.core.repair import CirFixEngine
        from repro.experiments.common import SMOKE

        scenario = load_scenario("counter_sens")
        config = scenario.suggested_config(SMOKE)
        cirfix = CirFixEngine(scenario.problem(), config, seed=0).run()
        brute = BruteForceRepair(scenario.problem(), config, seed=0).run()
        assert cirfix.plausible
        assert not brute.plausible
