"""SimulationTrace tests, including property-based subsampling invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.instrument.trace import SimulationTrace, output_mismatch
from repro.sim.logic import Value
from repro.sim.simulator import TraceRecord


def make_trace(rows):
    """rows: list of (time, {var: bitstring})."""
    return SimulationTrace(
        [(t, {k: Value.from_string(v) for k, v in values.items()}) for t, values in rows]
    )


class TestBasics:
    def test_from_records(self):
        records = [TraceRecord(5, {"a": Value.from_int(1, 1)})]
        trace = SimulationTrace.from_records(records)
        assert trace.times() == [5]
        assert trace.get(5, "a").to_int() == 1

    def test_variables_ordered_first_seen(self):
        trace = make_trace([(0, {"b": "1", "a": "0"}), (1, {"c": "1"})])
        assert trace.variables() == ["b", "a", "c"]

    def test_get_missing(self):
        trace = make_trace([(0, {"a": "1"})])
        assert trace.get(1, "a") is None
        assert trace.get(0, "b") is None

    def test_total_bits(self):
        trace = make_trace([(0, {"a": "1010", "b": "1"}), (1, {"a": "0000"})])
        assert trace.total_bits() == 9


class TestCsv:
    def test_roundtrip(self):
        trace = make_trace([(5, {"a": "10xz", "b": "1"}), (15, {"a": "0001", "b": "x"})])
        restored = SimulationTrace.from_csv(trace.to_csv())
        assert restored.times() == [5, 15]
        assert restored.get(5, "a").to_bit_string() == "10xz"
        assert restored.get(15, "b").to_bit_string() == "x"

    def test_empty(self):
        assert len(SimulationTrace.from_csv("")) == 0

    def test_bad_header_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            SimulationTrace.from_csv("tick,a\n0,1")


class TestSubsample:
    def test_full_fraction_identity(self):
        trace = make_trace([(i, {"a": "1"}) for i in range(10)])
        assert trace.subsample(1.0).times() == trace.times()

    def test_half_keeps_half(self):
        trace = make_trace([(i, {"a": "1"}) for i in range(10)])
        assert len(trace.subsample(0.5)) == 5

    def test_quarter(self):
        trace = make_trace([(i, {"a": "1"}) for i in range(20)])
        assert len(trace.subsample(0.25)) == 5

    def test_invalid_fraction(self):
        import pytest

        trace = make_trace([(0, {"a": "1"})])
        with pytest.raises(ValueError):
            trace.subsample(0.0)

    @given(
        st.integers(min_value=1, max_value=50),
        st.floats(min_value=0.05, max_value=1.0),
    )
    def test_subsample_is_subset_and_deterministic(self, n, fraction):
        trace = make_trace([(i * 10, {"a": "1"}) for i in range(n)])
        sub1 = trace.subsample(fraction)
        sub2 = trace.subsample(fraction)
        assert sub1.times() == sub2.times()
        assert set(sub1.times()) <= set(trace.times())
        assert 1 <= len(sub1) <= len(trace)


class TestOutputMismatch:
    def test_no_mismatch(self):
        oracle = make_trace([(0, {"a": "1"})])
        actual = make_trace([(0, {"a": "1"})])
        assert output_mismatch(oracle, actual) == set()

    def test_value_mismatch(self):
        oracle = make_trace([(0, {"a": "1", "b": "0"})])
        actual = make_trace([(0, {"a": "0", "b": "0"})])
        assert output_mismatch(oracle, actual) == {"a"}

    def test_x_vs_defined_is_mismatch(self):
        oracle = make_trace([(0, {"a": "0"})])
        actual = make_trace([(0, {"a": "x"})])
        assert output_mismatch(oracle, actual) == {"a"}

    def test_missing_timestamp_blames_all_vars(self):
        oracle = make_trace([(0, {"a": "1"}), (10, {"a": "1", "b": "0"})])
        actual = make_trace([(0, {"a": "1"})])
        assert output_mismatch(oracle, actual) == {"a", "b"}

    def test_extra_actual_rows_ignored(self):
        oracle = make_trace([(0, {"a": "1"})])
        actual = make_trace([(0, {"a": "1"}), (10, {"a": "0"})])
        assert output_mismatch(oracle, actual) == set()

    def test_width_mismatch_compares_at_oracle_width(self):
        oracle = make_trace([(0, {"a": "0001"})])
        actual = SimulationTrace([(0, {"a": Value.from_int(1, 1)})])
        assert output_mismatch(oracle, actual) == set()
