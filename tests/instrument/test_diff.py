"""Trace diffing tests."""

from repro.instrument.diff import diff_traces, render_diff
from repro.instrument.trace import SimulationTrace
from repro.sim.logic import Value


def trace(rows):
    return SimulationTrace(
        [(t, {k: Value.from_string(v) for k, v in values.items()}) for t, values in rows]
    )


class TestDiffTraces:
    def test_identical_traces_match(self):
        oracle = trace([(0, {"a": "10"}), (10, {"a": "01"})])
        diff = diff_traces(oracle, oracle)
        assert diff.is_match
        assert diff.compared_cells == 2
        assert diff.compared_bits == 4

    def test_single_divergence_located(self):
        oracle = trace([(0, {"a": "10"}), (10, {"a": "01"})])
        actual = trace([(0, {"a": "10"}), (10, {"a": "11"})])
        diff = diff_traces(oracle, actual)
        first = diff.first_divergence
        assert first.time == 10
        assert first.var == "a"
        assert (first.expected, first.actual) == ("01", "11")

    def test_xz_flagged(self):
        oracle = trace([(0, {"a": "0"})])
        actual = trace([(0, {"a": "x"})])
        diff = diff_traces(oracle, actual)
        assert diff.diffs[0].involves_xz

    def test_missing_row_reported(self):
        oracle = trace([(0, {"a": "1"}), (5, {"a": "1"})])
        actual = trace([(0, {"a": "1"})])
        diff = diff_traces(oracle, actual)
        assert diff.diffs[0].actual == "?"

    def test_mismatched_vars_matches_faultloc_seed(self):
        from repro.instrument.trace import output_mismatch

        oracle = trace([(0, {"a": "1", "b": "0"}), (5, {"a": "0", "b": "0"})])
        actual = trace([(0, {"a": "1", "b": "1"}), (5, {"a": "1", "b": "0"})])
        diff = diff_traces(oracle, actual)
        assert diff.mismatched_vars == output_mismatch(oracle, actual)


class TestRender:
    def test_match_summary(self):
        oracle = trace([(0, {"a": "1"})])
        assert "traces match" in render_diff(diff_traces(oracle, oracle))

    def test_report_rows_capped(self):
        oracle = trace([(i, {"a": "1"}) for i in range(50)])
        actual = trace([(i, {"a": "0"}) for i in range(50)])
        text = render_diff(diff_traces(oracle, actual), max_rows=10)
        assert "and 40 more" in text
