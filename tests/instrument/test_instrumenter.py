"""Testbench analysis and instrumentation tests."""

import pytest

from repro.hdl import ast, generate, parse
from repro.instrument import (
    AnalysisError,
    analyze_dut,
    build_record_block,
    instrument_testbench,
    is_instrumented,
)

DESIGN = """
module dff(clk, d, q, qbar);
  input clk, d;
  output q, qbar;
  reg q;
  assign qbar = !q;
  always @(posedge clk) q <= d;
endmodule
"""

TESTBENCH = """
module dff_tb;
  reg clk, d;
  wire q, qbar;
  dff dut(.clk(clk), .d(d), .q(q), .qbar(qbar));
  always #5 clk = !clk;
  initial begin clk = 0; d = 0; #40 $finish; end
endmodule
"""


def design_modules():
    tree = parse(DESIGN)
    return {m.name: m for m in tree.modules}


class TestAnalyze:
    def test_finds_outputs_and_clock(self):
        tb = parse(TESTBENCH).modules[0]
        info = analyze_dut(tb, design_modules())
        assert info.module_name == "dff"
        assert info.output_connections == ["q", "qbar"]
        assert info.clock_signal == "clk"

    def test_clock_override_wins(self):
        tb = parse(TESTBENCH).modules[0]
        info = analyze_dut(tb, design_modules(), clock_override="myclk")
        assert info.clock_signal == "myclk"

    def test_no_dut_raises(self):
        tb = parse("module empty_tb; endmodule").modules[0]
        with pytest.raises(AnalysisError):
            analyze_dut(tb, design_modules())

    def test_pacing_clock_fallback(self):
        source = """
        module comb(a, y);
          input a; output y;
          assign y = !a;
        endmodule
        module comb_tb;
          reg a, tick;
          wire y;
          comb dut(.a(a), .y(y));
          always #5 tick = !tick;
          initial begin tick = 0; a = 0; #50 $finish; end
        endmodule
        """
        tree = parse(source)
        modules = {"comb": tree.modules[0]}
        info = analyze_dut(tree.modules[1], modules)
        assert info.clock_signal == "tick"

    def test_positional_connections_analysed(self):
        source = """
        module dff_tb2;
          reg clk, d;
          wire q, qbar;
          dff dut(clk, d, q, qbar);
          always #5 clk = !clk;
        endmodule
        """
        tb = parse(source).modules[0]
        info = analyze_dut(tb, design_modules())
        assert info.output_connections == ["q", "qbar"]


class TestInstrument:
    def test_inserts_record_block(self):
        instrumented, info = instrument_testbench(parse(TESTBENCH), design_modules())
        tb = instrumented.modules[0]
        assert is_instrumented(tb)
        text = generate(instrumented)
        assert "$cirfix_record(q, qbar);" in text

    def test_original_left_untouched(self):
        original = parse(TESTBENCH)
        instrument_testbench(original, design_modules())
        assert not is_instrumented(original.modules[0])

    def test_extra_signals_recorded(self):
        instrumented, _ = instrument_testbench(
            parse(TESTBENCH), design_modules(), extra_signals=["d"]
        )
        assert "$cirfix_record(q, qbar, d);" in generate(instrumented)

    def test_record_block_shape(self):
        block = build_record_block("clk", ["a", "b"])
        assert isinstance(block, ast.Always)
        assert block.senslist.items[0].edge == "posedge"
        assert isinstance(block.body, ast.SysTaskCall)

    def test_instrumented_testbench_parses(self):
        instrumented, _ = instrument_testbench(parse(TESTBENCH), design_modules())
        reparsed = parse(generate(instrumented))
        assert is_instrumented(reparsed.modules[0])

    def test_missing_testbench_name_raises(self):
        with pytest.raises(AnalysisError):
            instrument_testbench(parse(TESTBENCH), design_modules(), testbench_name="nope")
