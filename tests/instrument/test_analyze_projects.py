"""Instrumentation analysis across the whole benchmark suite: every
project's testbench must be automatically analysable (paper §3.2: "this
instrumentation is easily automatable")."""

import pytest

from repro.benchsuite import PROJECT_NAMES, load_project
from repro.hdl import parse
from repro.instrument import analyze_dut


@pytest.mark.parametrize("name", PROJECT_NAMES)
class TestAllProjectsAnalysable:
    def _info(self, name, bench_attr):
        project = load_project(name)
        design = parse(project.design_text)
        modules = {m.name: m for m in design.modules}
        bench_text = getattr(project, bench_attr)
        testbench = next(
            m
            for m in parse(bench_text).modules
            if any(True for _ in m.walk())
        )
        return analyze_dut(testbench, modules)

    def test_main_bench_dut_found(self, name):
        info = self._info(name, "testbench_text")
        assert info.instance_name == "dut"
        assert info.output_connections, "no recordable outputs"
        assert info.clock_signal is not None

    def test_validation_bench_dut_found(self, name):
        info = self._info(name, "validate_text")
        assert info.output_connections
        assert info.clock_signal is not None

    def test_outputs_are_testbench_wires(self, name):
        project = load_project(name)
        info = self._info(name, "testbench_text")
        bench = parse(project.testbench_text).modules[0]
        declared = {d.name for d in bench.decls()}
        for output in info.output_connections:
            assert output in declared
