"""ObserverSet isolation semantics: telemetry can never hurt the search."""

from repro.obs.events import PhaseCompleted
from repro.obs.observer import ObserverSet, RecordingObserver, RepairObserver


class _Exploding:
    def __init__(self):
        self.calls = 0

    def on_event(self, event):
        self.calls += 1
        raise RuntimeError("boom")


def test_empty_set_is_falsy():
    assert not ObserverSet()
    assert not ObserverSet(None)
    assert not ObserverSet([])
    assert len(ObserverSet()) == 0


def test_recording_observer_satisfies_protocol():
    assert isinstance(RecordingObserver(), RepairObserver)


def test_emit_fans_out():
    a, b = RecordingObserver(), RecordingObserver()
    events = ObserverSet([a, b])
    assert events and len(events) == 2
    event = PhaseCompleted(phase="parse", seconds=0.1)
    events.emit(event)
    assert a.events == [event]
    assert b.events == [event]
    assert a.types() == ["phase_completed"]


def test_failing_observer_detached_others_survive(caplog):
    bad, good = _Exploding(), RecordingObserver()
    events = ObserverSet([bad, good])
    events.emit(PhaseCompleted(phase="parse", seconds=0.1))
    events.emit(PhaseCompleted(phase="evaluation", seconds=0.2))
    # The exploding observer saw only the first event, then was detached.
    assert bad.calls == 1
    assert len(good.events) == 2
    assert len(events) == 1


def test_close_calls_observer_close():
    class _Closeable(RecordingObserver):
        closed = False

        def close(self):
            self.closed = True

    observer = _Closeable()
    events = ObserverSet([observer, RecordingObserver()])  # second has no close
    events.close()
    assert observer.closed


def test_none_observers_filtered():
    assert not ObserverSet([None, None])
