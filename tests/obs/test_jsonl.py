"""JSONL trace writer/reader tests."""

import json

import pytest

from repro.obs.events import PhaseCompleted, TrialStarted
from repro.obs.jsonl import JsonlTraceObserver, read_events, read_trace

EVENTS = [
    TrialStarted(
        scenario="dec_numeric", seed=0, backend="serial", workers=1,
        population_size=16, max_generations=3,
    ),
    PhaseCompleted(phase="evaluation", seconds=0.5),
]


def _write(path, events=EVENTS, clock=None):
    observer = (
        JsonlTraceObserver(path, clock=clock) if clock else JsonlTraceObserver(path)
    )
    with observer:
        for event in events:
            observer.on_event(event)
    return path


def test_round_trip(tmp_path):
    path = _write(tmp_path / "run.jsonl")
    assert read_events(path) == EVENTS


def test_ts_stamped_at_write_time(tmp_path):
    ticks = iter([10.0, 20.0])
    path = _write(tmp_path / "run.jsonl", clock=lambda: next(ticks))
    records = read_trace(path)
    assert [r["ts"] for r in records] == [10.0, 20.0]
    assert records[0]["type"] == "trial_started"


def test_creates_parent_dirs(tmp_path):
    path = _write(tmp_path / "deep" / "nested" / "run.jsonl")
    assert path.exists()
    assert len(read_trace(path)) == 2


def test_close_is_idempotent_and_stops_writes(tmp_path):
    path = tmp_path / "run.jsonl"
    observer = JsonlTraceObserver(path)
    observer.on_event(EVENTS[0])
    observer.close()
    observer.close()
    observer.on_event(EVENTS[1])  # silently dropped after close
    assert len(read_trace(path)) == 1


def test_flushes_per_event(tmp_path):
    path = tmp_path / "run.jsonl"
    observer = JsonlTraceObserver(path)
    observer.on_event(EVENTS[0])
    # Readable mid-run, before close.
    assert len(read_trace(path)) == 1
    observer.close()


def test_bad_line_names_line_number(tmp_path):
    path = tmp_path / "run.jsonl"
    path.write_text(json.dumps({"type": "phase_completed", "phase": "parse", "seconds": 0.1}) + "\n{oops\n")
    with pytest.raises(ValueError, match=":2"):
        read_trace(path)


def test_non_object_line_rejected(tmp_path):
    path = tmp_path / "run.jsonl"
    path.write_text("[1, 2, 3]\n")
    with pytest.raises(ValueError, match="not an object"):
        read_trace(path)
