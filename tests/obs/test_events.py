"""Event schema tests: serialisation round-trips and the registry."""

import dataclasses

import pytest

from repro.obs.events import (
    EVENT_TYPES,
    WALL_TIME_FIELDS,
    CandidateEvaluated,
    CandidatePruned,
    CandidateTimedOut,
    CheckpointSaved,
    ChunkRetried,
    FuzzProgramChecked,
    FuzzRunCompleted,
    FuzzViolationFound,
    GenerationCompleted,
    JobAdmitted,
    JobCompleted,
    JobRecovered,
    JobShed,
    JobStarted,
    MintedGradingCompleted,
    MintedScenarioGraded,
    MintRunCompleted,
    MintScenarioAdmitted,
    MintScenarioRejected,
    PhaseCompleted,
    SynthSolveCompleted,
    SynthTemplateEnumerated,
    TrialCompleted,
    TrialStarted,
    WorkerCrashed,
    event_from_dict,
)

SAMPLES = [
    TrialStarted(
        scenario="dec_numeric", seed=0, backend="serial", workers=1,
        population_size=16, max_generations=3,
    ),
    CandidateEvaluated(
        fitness=0.5, compiled=True, wall_seconds=0.01, sim_events=120, sim_steps=80,
    ),
    CandidatePruned(new_violations={"L001": 1}, rules="L001,L004,L005"),
    GenerationCompleted(
        generation=1, population=16, best_fitness=0.9, fitness_min=0.1,
        fitness_mean=0.4, fitness_max=0.9, eval_sims=30,
        operator_stats={"mutate": 7, "crossover": 3},
    ),
    CandidateTimedOut(deadline_seconds=2.0, attempt=1, quarantined=False),
    WorkerCrashed(kind="oom", exitcode=-9, attempt=2, quarantined=True),
    ChunkRetried(chunk=3, requeued=2),
    PhaseCompleted(phase="evaluation", seconds=1.25),
    TrialCompleted(
        plausible=True, fitness=1.0, generations=2, eval_sims=40,
        fitness_evals=52, simulations=44, edits=1, elapsed_seconds=3.2,
    ),
    FuzzProgramChecked(index=3, program_seed=3, checks=4, violations=0),
    FuzzViolationFound(
        index=3, program_seed=3, oracle="roundtrip", detail="AST mismatch at root",
    ),
    FuzzRunCompleted(seed=0, programs=25, checks=76, violations=1, elapsed_seconds=4.2),
    JobAdmitted(
        job_id="job-1-abcd1234", tenant="default", scenario="counter_reset",
        joined=False, queue_depth=1,
    ),
    JobStarted(job_id="job-1-abcd1234", tenant="default", running=1),
    JobCompleted(
        job_id="job-1-abcd1234", tenant="default", status="done",
        plausible=True, fitness=1.0, elapsed_seconds=2.5, cache_hit_rate=0.95,
    ),
    CheckpointSaved(
        engine="cirfix", seed=0, cursor=3, eval_sims=120, best_fitness=0.9,
    ),
    JobRecovered(
        job_id="job-1-abcd1234", tenant="default", scenario="counter_reset",
        attempts=2, had_checkpoint=True, cursor=3,
    ),
    JobShed(
        tenant="default", scenario="counter_reset", queue_depth=4,
        retry_after_hint=1.5,
    ),
    MintScenarioAdmitted(
        index=4, scenario_id="minted_0_004_off_by_one", source="fuzz",
        mutator="off_by_one", category=1, faulty_fitness=0.75,
    ),
    MintScenarioRejected(
        index=5, source="bench", mutator="stuck_constant",
        reason="unobservable", shrunk=0,
    ),
    MintRunCompleted(
        seed=0, requested=50, admitted=46, rejected=4, elapsed_seconds=1.9,
    ),
    MintedScenarioGraded(
        scenario_id="minted_0_004_off_by_one", engine="cirfix",
        mutator="off_by_one", category=1, plausible=True, correct=True,
        ground_truth_match=False, fitness=1.0, eval_sims=46,
    ),
    MintedGradingCompleted(
        seed=0, engine="cirfix", scenarios=7, plausible=6, correct=6,
        ground_truth_matches=1, elapsed_seconds=5.9,
    ),
    SynthTemplateEnumerated(template="flip_operator", sites=3, candidates=9),
    SynthSolveCompleted(
        templates=5, candidates=41, winner_template="flip_operator",
        plausible=True,
    ),
]


@pytest.mark.parametrize("event", SAMPLES, ids=lambda e: e.type)
def test_round_trip(event):
    data = event.to_dict()
    assert data["type"] == event.type
    assert event_from_dict(data) == event


def test_registry_covers_all_types():
    assert set(EVENT_TYPES) == {
        "trial_started", "candidate_evaluated", "candidate_pruned",
        "generation_completed",
        "backend_chunk_dispatched", "backend_chunk_completed",
        "candidate_timed_out", "worker_crashed", "chunk_retried",
        "plausible_patch_found", "phase_completed", "trial_completed",
        "job_admitted", "job_started", "job_completed",
        "checkpoint_saved", "job_recovered", "job_shed",
        "fuzz_program_checked", "fuzz_violation_found", "fuzz_run_completed",
        "mint_scenario_admitted", "mint_scenario_rejected",
        "mint_run_completed",
        "minted_scenario_graded", "minted_grading_completed",
        "synth_template_enumerated", "synth_solve_completed",
    }
    for tag, cls in EVENT_TYPES.items():
        assert cls.type == tag


def test_unknown_type_rejected():
    with pytest.raises(ValueError, match="unknown telemetry event type"):
        event_from_dict({"type": "not_a_thing"})


def test_unknown_keys_dropped():
    data = PhaseCompleted(phase="parse", seconds=0.5).to_dict()
    data["future_field"] = 42
    assert event_from_dict(data) == PhaseCompleted(phase="parse", seconds=0.5)


def test_events_are_frozen():
    event = PhaseCompleted(phase="parse", seconds=0.5)
    with pytest.raises(dataclasses.FrozenInstanceError):
        event.seconds = 1.0


def test_wall_time_fields_name_real_fields():
    """Every wall-time name except ``ts`` (the serialisation stamp) must
    exist on some event, so the golden-file filter stays honest."""
    declared = {
        f.name for cls in EVENT_TYPES.values() for f in dataclasses.fields(cls)
    }
    assert WALL_TIME_FIELDS - {"ts"} <= declared
