"""MetricsObserver aggregation tests (synthetic event streams)."""

from repro.obs.events import (
    BackendChunkCompleted,
    BackendChunkDispatched,
    CandidateEvaluated,
    CandidateTimedOut,
    ChunkRetried,
    GenerationCompleted,
    PhaseCompleted,
    PlausiblePatchFound,
    TrialCompleted,
    TrialStarted,
    WorkerCrashed,
)
from repro.obs.metrics import MetricsObserver, Summary

STREAM = [
    TrialStarted(
        scenario="dec_numeric", seed=0, backend="serial", workers=1,
        population_size=4, max_generations=2,
    ),
    BackendChunkDispatched(chunk=0, size=2),
    CandidateEvaluated(fitness=0.5, compiled=True, wall_seconds=0.5,
                       sim_events=100, sim_steps=60),
    CandidateEvaluated(fitness=0.0, compiled=False, wall_seconds=0.25,
                       sim_events=0, sim_steps=0),
    BackendChunkCompleted(chunk=0, size=2, wall_seconds=0.75),
    GenerationCompleted(generation=0, population=4, best_fitness=0.5,
                        fitness_min=0.0, fitness_mean=0.25, fitness_max=0.5,
                        eval_sims=2, operator_stats={"mutate": 2}),
    CandidateEvaluated(fitness=1.0, compiled=True, wall_seconds=0.25,
                       sim_events=50, sim_steps=30),
    PlausiblePatchFound(generation=1, fitness=1.0, edits=2),
    PhaseCompleted(phase="parse", seconds=0.2),
    PhaseCompleted(phase="localization", seconds=0.1),
    PhaseCompleted(phase="evaluation", seconds=1.0),
    PhaseCompleted(phase="minimization", seconds=0.05),
    TrialCompleted(plausible=True, fitness=1.0, generations=1, eval_sims=3,
                   fitness_evals=4, simulations=3, edits=1, elapsed_seconds=2.0),
]


def test_summary_streaming():
    s = Summary()
    assert s.mean == 0.0
    for v in (2.0, 1.0, 3.0):
        s.add(v)
    assert s.count == 3
    assert s.total == 6.0
    assert s.min == 1.0
    assert s.max == 3.0
    assert s.mean == 2.0
    assert s.to_dict()["mean"] == 2.0


def test_replay_aggregates():
    m = MetricsObserver.replay(STREAM)
    assert m.trials_started == 1
    assert m.trials_completed == 1
    assert m.plausible_trials == 1
    assert m.scenarios == ["dec_numeric"]
    assert m.candidates == 3
    assert m.compile_failures == 1
    assert m.sim_events == 150
    assert m.sim_steps == 90
    assert m.eval_seconds.total == 1.0
    assert m.chunks_dispatched == 1
    assert m.chunks_completed == 1
    assert m.chunk_candidates == 2
    assert m.plausible_found == 1
    assert m.eval_sims == 3
    assert m.fitness_evals == 4
    assert m.simulations == 3
    assert m.best_fitness == 1.0
    assert m.phase_seconds["evaluation"] == 1.0
    assert m.operator_stats == {"mutate": 2}


def test_derived_rates():
    m = MetricsObserver.replay(STREAM)
    assert m.evaluation_seconds == 1.0
    assert m.evals_per_second == 3.0
    assert m.sim_events_per_second == 150.0
    empty = MetricsObserver()
    assert empty.evals_per_second == 0.0
    assert empty.sim_events_per_second == 0.0


def test_live_and_replay_agree():
    live = MetricsObserver()
    for event in STREAM:
        live.on_event(event)
    assert live.summary() == MetricsObserver.replay(STREAM).summary()


def test_summary_is_json_ready():
    import json

    text = json.dumps(MetricsObserver.replay(STREAM).summary())
    assert "dec_numeric" in text


def test_multi_trial_totals_accumulate():
    m = MetricsObserver.replay(STREAM + STREAM)
    assert m.trials_completed == 2
    assert m.eval_sims == 6
    assert m.simulations == 6
    assert m.elapsed_seconds == 4.0


def test_supervision_counters():
    stream = [
        CandidateTimedOut(deadline_seconds=2.0, attempt=1, quarantined=False),
        CandidateTimedOut(deadline_seconds=2.0, attempt=2, quarantined=True),
        WorkerCrashed(kind="crash", exitcode=43, attempt=1, quarantined=False),
        WorkerCrashed(kind="oom", exitcode=None, attempt=2, quarantined=True),
        ChunkRetried(chunk=0, requeued=2),
    ]
    m = MetricsObserver.replay(stream)
    assert m.candidates_timed_out == 2
    assert m.worker_failures == {"crash": 1, "oom": 1}
    assert m.candidates_quarantined == 2
    assert m.quarantined_by_kind == {"timeout": 1, "oom": 1}
    assert m.chunks_retried == 1
    assert m.candidates_requeued == 2
    supervision = m.summary()["supervision"]
    assert supervision["quarantined"] == 2
    assert supervision["quarantined_by_kind"] == {"oom": 1, "timeout": 1}
    assert supervision["requeued"] == 2


def test_supervision_block_zero_on_healthy_runs():
    supervision = MetricsObserver.replay(STREAM).summary()["supervision"]
    assert supervision == {
        "timed_out": 0, "worker_failures": {}, "quarantined": 0,
        "quarantined_by_kind": {}, "chunks_retried": 0, "requeued": 0,
    }
