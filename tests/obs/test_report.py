"""Report rendering tests (synthetic traces; a real trace is exercised
by the integration tests and scripts/check_all.sh)."""

import pytest

from repro.obs.events import (
    BackendChunkCompleted,
    BackendChunkDispatched,
    CandidateEvaluated,
    GenerationCompleted,
    PhaseCompleted,
    TrialCompleted,
    TrialStarted,
)
from repro.obs.jsonl import JsonlTraceObserver
from repro.obs.report import render_report, report_text, summary_dict


def _stream(generations=2):
    events = [
        TrialStarted(scenario="counter_reset", seed=0, backend="serial",
                     workers=1, population_size=4, max_generations=generations),
        BackendChunkDispatched(chunk=0, size=4),
        BackendChunkCompleted(chunk=0, size=4, wall_seconds=0.4),
    ]
    for g in range(generations + 1):
        events.append(CandidateEvaluated(
            fitness=0.5, compiled=True, wall_seconds=0.1,
            sim_events=10, sim_steps=5,
        ))
        events.append(GenerationCompleted(
            generation=g, population=4, best_fitness=0.5, fitness_min=0.1,
            fitness_mean=0.3, fitness_max=0.5, eval_sims=g + 1,
            operator_stats={"mutate": g},
        ))
    events += [
        PhaseCompleted(phase="parse", seconds=0.1),
        PhaseCompleted(phase="localization", seconds=0.1),
        PhaseCompleted(phase="evaluation", seconds=0.3),
        PhaseCompleted(phase="minimization", seconds=0.0),
        TrialCompleted(plausible=False, fitness=0.5,
                       generations=generations, eval_sims=generations + 1,
                       fitness_evals=8, simulations=4, edits=0,
                       elapsed_seconds=0.6),
    ]
    return events


def test_render_report_sections():
    text = render_report(_stream(), source="test.jsonl")
    assert "Run report — test.jsonl" in text
    assert "counter_reset" in text
    assert "Candidate evaluation" in text
    assert "Backend chunks" in text
    assert "Phase timing" in text
    assert "Generations" in text
    assert "Operator usage" in text


def test_generation_rows_elided():
    text = render_report(_stream(generations=40))
    assert "generation rows elided" in text
    # First and last generations always survive the elision.
    assert "\n0 " in text
    assert "\n40" in text


def test_report_text_from_file(tmp_path):
    path = tmp_path / "run.jsonl"
    with JsonlTraceObserver(path) as observer:
        for event in _stream():
            observer.on_event(event)
    text = report_text(path)
    assert "counter_reset" in text
    summary = summary_dict(path)
    assert summary["scenarios"] == ["counter_reset"]
    assert summary["candidates"]["evaluated"] == 3


def test_empty_trace_rejected(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(ValueError, match="no events"):
        report_text(path)


def _write_trace(path, events, extra_lines=()):
    with JsonlTraceObserver(path) as observer:
        for event in events:
            observer.on_event(event)
    if extra_lines:
        with path.open("a") as fh:
            for line in extra_lines:
                fh.write(line + "\n")
    return path


def test_unknown_event_types_skipped_with_note(tmp_path):
    path = _write_trace(
        tmp_path / "future.jsonl",
        _stream(),
        extra_lines=[
            '{"type": "from_the_future", "payload": 1}',
            '{"type": "also_unknown"}',
        ],
    )
    text = report_text(path)
    assert "counter_reset" in text
    assert "(2 records of unknown event types skipped)" in text
    summary = summary_dict(path)
    assert summary["skipped_records"] == 2
    assert summary["scenarios"] == ["counter_reset"]


def test_fully_unknown_trace_rejected(tmp_path):
    path = tmp_path / "alien.jsonl"
    path.write_text('{"type": "from_the_future"}\n')
    with pytest.raises(ValueError, match="no recognised events"):
        report_text(path)


def test_skipped_records_key_absent_when_clean(tmp_path):
    path = _write_trace(tmp_path / "clean.jsonl", _stream())
    assert "skipped_records" not in summary_dict(path)
    assert "unknown event types skipped" not in report_text(path)


def test_pruned_rows_render_only_on_gated_traces():
    from repro.obs.events import CandidatePruned

    base = render_report(_stream())
    assert "pruned by lint gate" not in base
    events = _stream()
    events.insert(3, CandidatePruned(new_violations={"L004": 1}, rules="L001,L004,L005"))
    gated = render_report(events)
    assert "pruned by lint gate" in gated
    assert "pruned under L004" in gated
