"""End-to-end telemetry guarantees on a real repair run.

Three pinned properties (ISSUE acceptance criteria):

1. attaching observers never changes the search — a fixed-seed repair
   yields a bit-identical ``RepairOutcome`` with and without observers,
   on both backends;
2. the event-type sequence of a fixed-seed run is byte-stable across
   backends and across time (golden file);
3. ``MetricsObserver`` totals agree with the engine's own counters.
"""

from pathlib import Path

import pytest

from repro.benchsuite import load_scenario
from repro.core.backend import make_backend
from repro.core.repair import CirFixEngine
from repro.obs.metrics import MetricsObserver
from repro.obs.observer import RecordingObserver

GOLDEN = Path(__file__).parent / "golden" / "dec_numeric_event_types.txt"

#: Small fixed budget: enough to cover seed population, one evolved
#: generation, chunked backend dispatch, and (usually) a repair.
SCENARIO_ID = "dec_numeric"
SEED = 0


def _scaled(workers=1, backend="serial"):
    from repro.core.config import RepairConfig

    scenario = load_scenario(SCENARIO_ID)
    config = scenario.suggested_config(
        RepairConfig(
            population_size=16,
            max_generations=2,
            max_wall_seconds=120.0,
            max_fitness_evals=150,
            minimize_budget=32,
            eval_chunk_size=8,
            workers=workers,
            backend=backend,
        )
    )
    return scenario, config


def _run(workers=1, backend="serial", observers=None):
    scenario, config = _scaled(workers, backend)
    problem = scenario.problem()
    eval_backend = make_backend(problem, config)
    try:
        return CirFixEngine(
            problem, config, SEED, backend=eval_backend, observers=observers
        ).run()
    finally:
        eval_backend.close()


def _outcome_key(outcome):
    """Every outcome field except wall-clock."""
    return (
        outcome.plausible,
        outcome.fitness,
        outcome.generations,
        outcome.fitness_evals,
        outcome.eval_sims,
        outcome.simulations,
        outcome.seed,
        tuple(outcome.best_fitness_history),
        len(outcome.patch),
        outcome.repaired_source,
    )


class TestObserversDoNotPerturbTheSearch:
    def test_serial_backend(self):
        bare = _run()
        observed = _run(observers=[RecordingObserver(), MetricsObserver()])
        assert _outcome_key(bare) == _outcome_key(observed)

    def test_process_backend(self):
        bare = _run(workers=2, backend="process")
        observed = _run(
            workers=2, backend="process",
            observers=[RecordingObserver(), MetricsObserver()],
        )
        assert _outcome_key(bare) == _outcome_key(observed)


class TestEventSequenceDeterminism:
    def test_cross_backend_and_golden(self):
        serial = RecordingObserver()
        pool = RecordingObserver()
        _run(observers=[serial])
        _run(workers=2, backend="process", observers=[pool])
        serial_types = serial.types()
        assert serial_types, "serial run emitted no events"
        # Byte-stable across backends: the pool run emits the same event
        # types in the same order (only wall-clock field values differ).
        assert serial_types == pool.types()
        # And across time: pinned by the committed golden file.
        assert "\n".join(serial_types) + "\n" == GOLDEN.read_text()

    def test_sequence_shape(self):
        recording = RecordingObserver()
        _run(observers=[recording])
        types = recording.types()
        assert types[0] == "trial_started"
        assert types[-1] == "trial_completed"
        # The four phase events come right before trial_completed, in order.
        phases = [e.phase for e in recording.events if e.type == "phase_completed"]
        assert phases == ["parse", "localization", "evaluation", "minimization"]
        assert types[-5:-1] == ["phase_completed"] * 4
        # Chunks balance.
        assert types.count("backend_chunk_dispatched") == types.count(
            "backend_chunk_completed"
        )


class TestMetricsMatchEngineCounters:
    @pytest.mark.parametrize(
        "workers,backend", [(1, "serial"), (2, "process")],
        ids=["serial", "process"],
    )
    def test_totals(self, workers, backend):
        metrics = MetricsObserver()
        outcome = _run(workers=workers, backend=backend, observers=[metrics])
        # One CandidateEvaluated per unique evaluation, by construction.
        assert metrics.candidates == outcome.eval_sims
        # TrialCompleted mirrors the outcome counters.
        assert metrics.eval_sims == outcome.eval_sims
        assert metrics.fitness_evals == outcome.fitness_evals
        assert metrics.simulations == outcome.simulations
        assert metrics.generations == outcome.generations
        assert metrics.plausible_trials == int(outcome.plausible)
        assert metrics.best_fitness == pytest.approx(outcome.fitness)
        # Phase timing covers all four phases and is non-negative.
        assert set(metrics.phase_seconds) == {
            "parse", "localization", "evaluation", "minimization"
        }
        assert all(v >= 0.0 for v in metrics.phase_seconds.values())


class TestPlausibleRepairTelemetry:
    def test_plausible_patch_event_emitted(self):
        """A run that finds a repair emits plausible_patch_found before
        the phase/trial tail, and the metrics see the repair."""
        from repro.experiments.common import SMOKE

        scenario = load_scenario("counter_reset")
        config = scenario.suggested_config(SMOKE)
        problem = scenario.problem()
        recording, metrics = RecordingObserver(), MetricsObserver()
        backend = make_backend(problem, config)
        try:
            outcome = CirFixEngine(
                problem, config, 0, backend=backend,
                observers=[recording, metrics],
            ).run()
        finally:
            backend.close()
        assert outcome.plausible
        types = recording.types()
        assert "plausible_patch_found" in types
        assert types.index("plausible_patch_found") < types.index("phase_completed")
        assert metrics.plausible_found == 1
        assert metrics.plausible_trials == 1
        assert metrics.best_fitness == 1.0
        assert metrics.candidates == outcome.eval_sims
