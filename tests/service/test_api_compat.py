"""Facade compatibility: positional deprecations, engine registry."""

import warnings

import pytest

from repro.api import materialize_request, repair_scenario, repair_verilog, run_request
from repro.core.config import RepairConfig
from repro.core.engines import engine_names, get_engine, register_engine
from repro.service.jobs import RepairRequest

TINY = RepairConfig(population_size=8, max_generations=2)

#: A minimal clocked design + testbench for text-based requests.
DESIGN = """\
module m(input clk, output reg q);
  always @(posedge clk) q <= 1'b1;
endmodule
"""
BENCH = """\
module tb;
  reg clk;
  wire q;
  m dut(clk, q);
  initial begin
    clk = 0;
    repeat (8) #5 clk = ~clk;
    $finish;
  end
endmodule
"""


class TestPositionalDeprecation:
    def test_positional_config_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match="repair_scenario"):
            outcome = repair_scenario("counter_reset", TINY, (0,))
        assert outcome.seed == 0

    def test_keyword_call_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            repair_scenario("counter_reset", config=TINY, seeds=(0,))

    def test_positional_extras_respect_keyword_arguments(self):
        """Old-style positional config combined with keyword seeds."""
        with pytest.warns(DeprecationWarning):
            outcome = repair_scenario("counter_reset", TINY, seeds=(1,))
        assert outcome.seed == 1

    def test_too_many_positionals_raise(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                repair_scenario("counter_reset", TINY, (0,), None, "extra")

    def test_repair_verilog_positional_warns(self):
        with pytest.warns(DeprecationWarning, match="repair_verilog"):
            outcome = repair_verilog(DESIGN, BENCH, DESIGN, TINY, (0,))
        assert outcome is not None


class TestEngineRegistry:
    def test_builtin_cirfix_is_registered(self):
        assert "cirfix" in engine_names()
        assert callable(get_engine("cirfix"))

    def test_unknown_engine_raises_with_listing(self):
        with pytest.raises(ValueError, match="cirfix"):
            get_engine("nope")

    def test_bad_engine_name_rejected(self):
        with pytest.raises(ValueError):
            register_engine("", lambda *a, **k: None)
        with pytest.raises(ValueError):
            register_engine("has space", lambda *a, **k: None)

    def test_custom_engine_is_routable_end_to_end(self):
        calls = {}

        def fake_engine(problem, config=None, seeds=(0,), backend=None,
                        observers=None, cancel=None, checkpoint=None):
            """Record the call and delegate to the real engine."""
            calls["seeds"] = seeds
            return get_engine("cirfix")(
                problem, config, seeds, backend=backend,
                observers=observers, cancel=cancel, checkpoint=checkpoint,
            )

        register_engine("fake-for-test", fake_engine)
        try:
            outcome = repair_scenario(
                "counter_reset", config=TINY, seeds=(0,), engine="fake-for-test"
            )
        finally:
            from repro.core import engines

            engines._REGISTRY.pop("fake-for-test", None)
        assert calls["seeds"] == (0,)
        assert outcome.seed == 0

    def test_request_validation_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown repair engine"):
            RepairRequest(scenario="s", engine="nope").validate()


class TestRunRequest:
    def test_scenario_request_runs(self):
        request = RepairRequest(
            scenario="counter_reset",
            config={"population_size": 8, "max_generations": 2},
            seeds=(0,),
        )
        outcome = run_request(request)
        assert outcome.seed == 0

    def test_materialize_applies_scenario_scaling(self):
        request = RepairRequest(scenario="counter_reset", seeds=(0,))
        problem, config = materialize_request(request)
        from repro.benchsuite import load_scenario

        suggested = load_scenario("counter_reset").suggested_config(RepairConfig())
        assert config == suggested
        assert problem.design is not None

    def test_text_request_with_golden_oracle(self):
        request = RepairRequest(
            design=DESIGN, testbench=BENCH, golden=DESIGN, seeds=(0,),
            config={"population_size": 4, "max_generations": 1},
        )
        problem, _ = materialize_request(request)
        assert problem.oracle is not None

    def test_invalid_request_raises_before_running(self):
        with pytest.raises(ValueError):
            run_request(RepairRequest())
