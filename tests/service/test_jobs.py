"""The versioned typed job API: round-trips, validation, job keys."""

import json

import pytest

from repro.service.jobs import (
    JOB_STATES,
    SCHEMA_VERSION,
    JobStatus,
    RepairRequest,
    RepairResponse,
)


class TestRepairRequest:
    def test_json_roundtrip_is_lossless(self):
        request = RepairRequest(
            scenario="counter_reset",
            config={"population_size": 20, "sim_engine": "compiled"},
            seeds=(3, 1, 4),
            tenant="team-a",
        )
        again = RepairRequest.from_json(request.to_json())
        assert again == request
        assert isinstance(again.seeds, tuple)

    def test_serialization_is_stable(self):
        a = RepairRequest(scenario="s", config={"b": 1, "a": 2})
        b = RepairRequest(scenario="s", config={"a": 2, "b": 1})
        assert a.to_json() == b.to_json()

    def test_schema_version_embedded_and_enforced(self):
        request = RepairRequest(scenario="s")
        data = json.loads(request.to_json())
        assert data["schema_version"] == SCHEMA_VERSION
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            RepairRequest.from_json(json.dumps(data))

    def test_job_key_ignores_tenant(self):
        a = RepairRequest(scenario="s", tenant="alpha")
        b = RepairRequest(scenario="s", tenant="beta")
        assert a.job_key() == b.job_key()

    def test_job_key_tracks_every_work_field(self):
        base = RepairRequest(scenario="s")
        variants = [
            RepairRequest(scenario="other"),
            RepairRequest(scenario="s", seeds=(1,)),
            RepairRequest(scenario="s", config={"phi": 3.0}),
            RepairRequest(design="module m; endmodule", testbench="tb", golden="g"),
        ]
        keys = {base.job_key()} | {v.job_key() for v in variants}
        assert len(keys) == len(variants) + 1

    def test_validate_requires_exactly_one_problem_source(self):
        with pytest.raises(ValueError):
            RepairRequest().validate()
        with pytest.raises(ValueError):
            RepairRequest(scenario="s", design="d", testbench="t").validate()
        with pytest.raises(ValueError):
            RepairRequest(design="d").validate()  # no testbench
        with pytest.raises(ValueError):
            RepairRequest(design="d", testbench="t").validate()  # no oracle
        with pytest.raises(ValueError):
            RepairRequest(
                design="d", testbench="t", golden="g", oracle_csv="o"
            ).validate()  # both oracles
        assert RepairRequest(scenario="s").validate() is not None
        assert RepairRequest(design="d", testbench="t", golden="g").validate()

    def test_validate_checks_seeds_engine_tenant(self):
        with pytest.raises(ValueError):
            RepairRequest(scenario="s", seeds=()).validate()
        with pytest.raises(ValueError, match="unknown repair engine"):
            RepairRequest(scenario="s", engine="nope").validate()
        with pytest.raises(ValueError, match="tenant"):
            RepairRequest(scenario="s", tenant="").validate()

    def test_resolved_config_rejects_unknown_keys(self):
        request = RepairRequest(scenario="s", config={"not_a_knob": 1})
        with pytest.raises(ValueError):
            request.resolved_config()

    def test_resolved_config_applies_overrides(self):
        request = RepairRequest(scenario="s", config={"population_size": 17})
        assert request.resolved_config().population_size == 17


class TestJobStatus:
    def test_roundtrip(self):
        status = JobStatus(
            job_id="job-1-abc", state="running", tenant="t", scenario="s",
            submissions=3,
        )
        assert JobStatus.from_json(status.to_json()) == status
        assert status.state in JOB_STATES

    def test_version_enforced(self):
        data = json.loads(JobStatus(job_id="j").to_json())
        data["schema_version"] = 0
        with pytest.raises(ValueError):
            JobStatus.from_json(json.dumps(data))


class TestRepairResponse:
    def test_roundtrip(self):
        response = RepairResponse(
            job_id="job-1-abc",
            status="done",
            plausible=True,
            fitness=1.0,
            outcome_json='{"plausible": true}',
            cache={"store_hits": 5, "store_misses": 0, "hit_rate": 1.0},
        )
        again = RepairResponse.from_json(response.to_json())
        assert again == response
        assert again.cache["hit_rate"] == 1.0

    def test_unknown_fields_ignored(self):
        data = json.loads(RepairResponse(job_id="j").to_json())
        data["from_the_future"] = True
        assert RepairResponse.from_json(json.dumps(data)).job_id == "j"
