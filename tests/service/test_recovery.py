"""Crash-recovery tests: engine resume, daemon recovery, backpressure.

The recovery model under test (``docs/service.md``, "Operations"):

1. engines checkpoint their deterministic cursor at every generation
   boundary; recovery replays the search from the start with the
   persistent eval cache warm, so the replay is bit-identical to an
   uninterrupted run and reaches the pre-crash cursor at cache speed;
2. the daemon journals every admission/start/completion and, with
   ``recover=True``, re-admits unfinished journaled jobs on startup;
3. admission sheds new work with a typed ``overloaded`` error once the
   queue is full, and the client retries idempotently (dedup joins).
"""

import asyncio
import json
import threading
import time

import pytest

from repro.api import run_request
from repro.cache import PersistentEvalCache
from repro.core.backend import open_eval_store
from repro.core.config import RepairConfig
from repro.core.serialize import outcome_to_json
from repro.obs.events import WALL_TIME_FIELDS
from repro.obs.observer import RecordingObserver
from repro.service import (
    RepairDaemon,
    RepairRequest,
    ServiceClient,
    ServiceInterruptedError,
    ServiceOverloadedError,
    ServiceUnavailableError,
)
from repro.service.daemon import _Broadcast
from repro.service.journal import JobJournal, JournalCheckpointSink
from repro.obs.bridge import AsyncEventBridge

#: Tiny search: ~23 unique evaluations on counter_reset, a few seconds.
TINY = {"population_size": 8, "max_generations": 3}


@pytest.fixture(autouse=True)
def _fresh_store_registry():
    PersistentEvalCache.reset_shared()
    yield
    PersistentEvalCache.reset_shared()


def tiny_request(cache_dir: str = "", backend: str = "serial", **kwargs):
    config = dict(TINY, backend=backend)
    if backend == "process":
        config["workers"] = 2
    if cache_dir:
        config["cache_dir"] = cache_dir
    return RepairRequest(
        scenario="counter_reset", config=config, seeds=(0,), **kwargs
    )


def event_fingerprint(events):
    """Event dicts minus wall-clock fields — the determinism fingerprint."""
    out = []
    for event in events:
        data = event.to_dict()
        for field in WALL_TIME_FIELDS:
            data.pop(field, None)
        out.append(data)
    return out


class DaemonHarness:
    """Run one daemon on a background event-loop thread."""

    def __init__(self, tmp_path, name: str, **kwargs):
        self.socket_path = str(tmp_path / f"{name}.sock")
        self.daemon = RepairDaemon(self.socket_path, **kwargs)
        self.thread = threading.Thread(
            target=lambda: asyncio.run(self.daemon.serve()), daemon=True
        )

    def __enter__(self) -> ServiceClient:
        self.thread.start()
        client = ServiceClient(self.socket_path, timeout=180)
        deadline = time.monotonic() + 10
        while True:
            try:
                client.ping()
                return client
            except OSError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.02)

    def __exit__(self, *exc) -> None:
        try:
            ServiceClient(self.socket_path, timeout=10).shutdown()
        except OSError:
            pass
        self.thread.join(timeout=120)
        assert not self.thread.is_alive(), "daemon failed to drain"


class TestEngineResume:
    """Checkpoint + warm-cache replay is bit-identical to an unbroken run."""

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_resume_is_bit_identical_and_warm(self, tmp_path, backend):
        job_id = "job-1-deadbeef"

        # Uninterrupted baseline (own cache + journal so it stays cold).
        baseline_req = tiny_request(str(tmp_path / "cache-b"), backend)
        baseline_sink = JournalCheckpointSink(
            JobJournal(tmp_path / "journal-b"), job_id
        )
        baseline_obs = RecordingObserver()
        baseline = run_request(
            baseline_req,
            observers=[baseline_obs],
            checkpoint=baseline_sink.save,
        )

        # "Crash" after the second checkpoint: cooperative cancel fires
        # at a generation boundary, exactly like a kill landing between
        # generations — the journal holds a genuine mid-search cursor
        # and the persistent cache holds every pre-crash evaluation.
        crashed_req = tiny_request(str(tmp_path / "cache-a"), backend)
        journal = JobJournal(tmp_path / "journal-a")
        crash_sink = JournalCheckpointSink(journal, job_id)
        crash_store = open_eval_store(crashed_req.resolved_config())
        run_request(
            crashed_req,
            cancel=lambda: crash_sink.saves >= 2,
            checkpoint=crash_sink.save,
        )
        assert journal.load_checkpoint(job_id) is not None
        # Every pre-crash store miss wrote an entry the replay can hit.
        pre_crash_misses = crash_store.misses
        assert pre_crash_misses > 0

        # Resume: same cache, full budget, sink primed with the snapshot.
        PersistentEvalCache.reset_shared()  # simulate a fresh process
        resume_sink = JournalCheckpointSink(journal, job_id)
        assert resume_sink.load() is not None
        resume_obs = RecordingObserver()
        store = open_eval_store(crashed_req.resolved_config())
        hits_before = store.hits
        resumed = run_request(
            crashed_req,
            observers=[resume_obs],
            checkpoint=resume_sink.save,
        )

        # The replay crossed the journaled cursor bit-exactly.
        assert resume_sink.verified is True
        # Outcome parity with the never-crashed run (modulo wall clock).
        reports = []
        for outcome in (baseline, resumed):
            data = json.loads(outcome_to_json(outcome, "counter_reset"))
            data.pop("elapsed_seconds")
            reports.append(data)
        assert reports[0] == reports[1]
        assert resumed.eval_sims == baseline.eval_sims
        # Event-stream parity (checkpoint events included on both sides).
        assert event_fingerprint(resume_obs.events) == event_fingerprint(
            baseline_obs.events
        )
        # Recovery ran warm: every pre-crash evaluation was a disk hit.
        assert store.hits - hits_before >= pre_crash_misses


class TestDaemonRecovery:
    """``recover=True`` re-admits unfinished journaled jobs on startup."""

    def test_recovered_job_completes_and_clients_reattach(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        request = tiny_request(cache_dir)
        job_id = f"job-1-{request.job_key()[:8]}"
        journal_dir = tmp_path / "journal"
        journal = JobJournal(journal_dir)

        # Fabricate the instant a kill -9 landed: the job was journaled
        # admitted + started and the engine had checkpointed one
        # generation (a genuine snapshot from a cancelled partial run).
        sink = JournalCheckpointSink(journal, job_id)
        run_request(
            request, cancel=lambda: sink.saves >= 2, checkpoint=sink.save
        )
        journal.record_admitted(job_id, request.to_dict())
        journal.record_started(job_id)
        assert [r.job_id for r in journal.unfinished()] == [job_id]

        PersistentEvalCache.reset_shared()  # new daemon process
        lifecycle = RecordingObserver()
        harness = DaemonHarness(
            tmp_path,
            "d",
            base_config=RepairConfig(),
            journal_dir=journal_dir,
            recover=True,
            observers=[lifecycle],
        )
        with harness as client:
            # The client re-attaches by resubmitting: dedup joins the
            # recovered in-flight job instead of duplicating it.
            status, response = client.submit(request)
        assert status.job_id == job_id
        assert status.submissions >= 2  # recovery + our resubmission
        assert response.status == "done"

        recovered = [e for e in lifecycle.events if e.type == "job_recovered"]
        assert len(recovered) == 1
        assert recovered[0].job_id == job_id
        assert recovered[0].attempts == 2
        assert recovered[0].had_checkpoint is True
        assert recovered[0].cursor >= 1

        # The deterministic replay verified against the crash snapshot.
        runtime = harness.daemon._runtimes[job_id]
        assert runtime.checkpoint.verified is True

        # Outcome parity with a direct run of the same request.
        direct = run_request(request)
        want = json.loads(outcome_to_json(direct, "counter_reset"))
        got = json.loads(response.outcome_json)
        for data in (want, got):
            data.pop("elapsed_seconds")
        assert got == want

        # Terminal record journaled; checkpoint discarded; nothing left.
        assert journal.get(job_id).state == "done"
        assert journal.load_checkpoint(job_id) is None
        assert journal.unfinished() == []

    def test_poison_and_garbage_records_fail_instead_of_looping(self, tmp_path):
        journal_dir = tmp_path / "journal"
        journal = JobJournal(journal_dir)
        request = tiny_request()
        journal.record_admitted(
            "job-1-aaaaaaaa", request.to_dict(), attempts=4
        )  # crossed MAX_RECOVERY_ATTEMPTS
        journal.record_admitted("job-2-bbbbbbbb", {"schema_version": 99})
        with DaemonHarness(
            tmp_path, "d", journal_dir=journal_dir, recover=True
        ) as client:
            assert client.jobs() == []  # neither job was re-admitted
        poisoned = journal.get("job-1-aaaaaaaa")
        assert poisoned.state == "failed"
        assert "poison" in poisoned.error
        garbage = journal.get("job-2-bbbbbbbb")
        assert garbage.state == "failed"
        assert "unrecoverable" in garbage.error

    def test_graceful_drain_leaves_no_unfinished_records(self, tmp_path):
        journal_dir = tmp_path / "journal"
        with DaemonHarness(
            tmp_path, "d", journal_dir=journal_dir, max_jobs=1
        ) as client:
            slow = RepairRequest(
                scenario="counter_reset", config=dict(TINY), seeds=tuple(range(16))
            )
            threading.Thread(
                target=lambda: client.submit(slow), daemon=True
            ).start()
            queued = tiny_request(tenant="other")
            deadline = time.monotonic() + 30
            while not any(r.state == "running" for r in client.jobs()):
                assert time.monotonic() < deadline
                time.sleep(0.02)
            client.submit(queued, wait=False)
            # Exit the context: shutdown drains the running job and
            # cancels the queued one.
        journal = JobJournal(journal_dir)
        assert journal.unfinished() == []
        states = {r.job_id: r.state for r in journal.records()}
        assert len(states) == 2
        assert set(states.values()) <= {"done", "cancelled"}


class TestBackpressure:
    """A full queue sheds new submissions with a typed overloaded error."""

    def test_shed_with_hint_and_joins_exempt(self, tmp_path):
        slow = RepairRequest(
            scenario="counter_reset", config=dict(TINY), seeds=tuple(range(16))
        )
        queued = tiny_request(tenant="q")
        shed_events = RecordingObserver()
        with DaemonHarness(
            tmp_path,
            "d",
            max_jobs=1,
            max_queue_depth=1,
            observers=[shed_events],
        ) as client:
            threading.Thread(
                target=lambda: client.submit(slow), daemon=True
            ).start()
            deadline = time.monotonic() + 30
            while not any(r.state == "running" for r in client.jobs()):
                assert time.monotonic() < deadline
                time.sleep(0.02)
            client.submit(queued, wait=False)  # fills the queue (depth 1)
            # Distinct seeds: a different job key, so no join exemption.
            victim = RepairRequest(
                scenario="counter_reset", config=dict(TINY), seeds=(5,),
                tenant="victim",
            )
            with pytest.raises(ServiceOverloadedError) as info:
                client.submit(victim, wait=False)
            assert info.value.retry_after_hint >= 1.0
            # Joining in-flight work adds no depth, so it is never shed.
            status, _ = client.submit(queued, wait=False)
            assert status.submissions == 2
            for row in client.jobs():
                client.cancel(row.job_id)
        shed = [e for e in shed_events.events if e.type == "job_shed"]
        assert len(shed) == 1
        assert shed[0].queue_depth == 1
        assert shed[0].retry_after_hint >= 1.0


class TestClientRetry:
    """Typed errors and idempotent resubmission with backoff."""

    def test_unavailable_names_the_socket_and_is_oserror(self, tmp_path):
        missing = str(tmp_path / "nothing.sock")
        client = ServiceClient(missing, timeout=1)
        with pytest.raises(ServiceUnavailableError) as info:
            client.ping()
        assert missing in str(info.value)
        assert info.value.socket_path == missing
        assert isinstance(info.value, OSError)  # legacy handlers still work

    def test_submit_retries_with_deterministic_backoff(self, tmp_path):
        client = ServiceClient(str(tmp_path / "nothing.sock"), timeout=1)
        delays: list[float] = []
        with pytest.raises(ServiceUnavailableError):
            client.submit(
                tiny_request(), retries=3, backoff_base=0.5, sleep=delays.append
            )
        assert len(delays) == 3  # one sleep between each of 4 attempts
        # Exponential shape with jitter in [0.5, 1.5) of 0.5, 1.0, 2.0.
        for delay, base in zip(delays, (0.5, 1.0, 2.0)):
            assert base * 0.5 <= delay < base * 1.5
        # Jitter is seeded from the job key: a second client run backs
        # off identically (reproducible load patterns).
        rerun: list[float] = []
        with pytest.raises(ServiceUnavailableError):
            client.submit(tiny_request(), retries=3, sleep=rerun.append)
        assert rerun == delays

    def test_overload_raises_delay_to_the_hint(self, monkeypatch):
        client = ServiceClient("/nonexistent.sock")
        outcomes = [ServiceOverloadedError("busy", 7.5), ("status", "response")]

        def fake_submit_once(request, wait, stream, on_event):
            result = outcomes.pop(0)
            if isinstance(result, Exception):
                raise result
            return result

        monkeypatch.setattr(client, "_submit_once", fake_submit_once)
        delays: list[float] = []
        status, response = client.submit(
            tiny_request(), retries=1, sleep=delays.append
        )
        assert (status, response) == ("status", "response")
        assert len(delays) == 1
        assert 7.5 * 0.5 <= delays[0] < 7.5 * 1.5  # hint, not 0.5s base

    def test_interrupted_is_retryable(self, monkeypatch):
        client = ServiceClient("/nonexistent.sock")
        outcomes = [
            ServiceInterruptedError("daemon died mid-job"),
            ("status", "response"),
        ]

        def fake_submit_once(request, wait, stream, on_event):
            result = outcomes.pop(0)
            if isinstance(result, Exception):
                raise result
            return result

        monkeypatch.setattr(client, "_submit_once", fake_submit_once)
        status, response = client.submit(
            tiny_request(), retries=2, sleep=lambda _: None
        )
        assert (status, response) == ("status", "response")

    def test_zero_retries_raises_immediately(self, tmp_path):
        client = ServiceClient(str(tmp_path / "nothing.sock"), timeout=1)
        delays: list[float] = []
        with pytest.raises(ServiceUnavailableError):
            client.submit(tiny_request(), sleep=delays.append)
        assert delays == []


class TestDroppedEvents:
    """Slow streaming consumers lose events — visibly, never silently."""

    def test_slow_consumer_drops_are_counted_on_the_status_row(self):
        from repro.obs.events import JobStarted
        from repro.service.queue import JobQueue

        async def scenario() -> int:
            loop = asyncio.get_running_loop()
            broadcast = _Broadcast()
            bridge = AsyncEventBridge(loop, maxsize=4)
            broadcast.attach(bridge)
            for i in range(32):  # nobody drains: the queue fills at 4
                broadcast.on_event(
                    JobStarted(job_id="job-1-aaaaaaaa", tenant="t", running=1)
                )
            await asyncio.sleep(0)  # let call_soon_threadsafe callbacks run
            broadcast.close()
            await asyncio.sleep(0)
            return broadcast.dropped_total()

        dropped = asyncio.run(scenario())
        assert dropped >= 32 - 4 - 1  # sentinel may sacrifice one more

        queue = JobQueue()
        job, _ = queue.submit(tiny_request())
        job.dropped_events = dropped
        status = job.status()
        assert status.dropped_events == dropped
        # The additive field round-trips, and old payloads parse as 0.
        assert type(status).from_json(status.to_json()) == status
        legacy = json.loads(status.to_json())
        del legacy["dropped_events"]
        assert type(status).from_dict(legacy).dropped_events == 0
