"""Journal unit tests: lifecycle, atomicity, corruption, checkpoints."""

import json

from repro.service import RepairRequest
from repro.service.journal import (
    JOURNAL_SCHEMA,
    JobJournal,
    JournalCheckpointSink,
    JournalRecord,
    TERMINAL_STATES,
)


def request_dict(scenario: str = "counter_reset") -> dict:
    return RepairRequest(scenario=scenario, seeds=(0,)).to_dict()


def snapshot(cursor: int = 2, eval_sims: int = 40, rng: str = "ab12") -> dict:
    return {
        "engine": "cirfix",
        "seed": 0,
        "cursor": cursor,
        "label": "",
        "eval_sims": eval_sims,
        "fitness_evals": eval_sims + 8,
        "best_fitness": 0.75,
        "rng": rng,
    }


class TestLifecycleRecords:
    def test_admitted_then_started_then_completed(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.record_admitted("job-1-aaaaaaaa", request_dict())
        assert journal.get("job-1-aaaaaaaa").state == "queued"
        journal.record_started("job-1-aaaaaaaa")
        assert journal.get("job-1-aaaaaaaa").state == "running"
        journal.record_completed("job-1-aaaaaaaa", "done")
        record = journal.get("job-1-aaaaaaaa")
        assert record.state == "done"
        assert record.request == request_dict()  # preserved across transitions
        assert journal.unfinished() == []

    def test_completed_rejects_non_terminal_states(self, tmp_path):
        journal = JobJournal(tmp_path)
        for state in ("queued", "running", "bogus"):
            try:
                journal.record_completed("job-1-aaaaaaaa", state)
            except ValueError:
                continue
            raise AssertionError(f"{state!r} accepted as terminal")
        assert TERMINAL_STATES == {"done", "failed", "cancelled"}

    def test_unfinished_returns_only_recoverable_records(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.record_admitted("job-1-aaaaaaaa", request_dict())
        journal.record_admitted("job-2-bbbbbbbb", request_dict("dec_numeric"))
        journal.record_started("job-2-bbbbbbbb")
        journal.record_admitted("job-3-cccccccc", request_dict())
        journal.record_completed("job-3-cccccccc", "done")
        # A terminal transition on a never-admitted id synthesizes a
        # requestless record: visible in records(), never re-admitted.
        journal.record_completed("job-9-dddddddd", "failed", "boom")
        unfinished = [record.job_id for record in journal.unfinished()]
        assert unfinished == ["job-1-aaaaaaaa", "job-2-bbbbbbbb"]
        assert len(journal.records()) == 4

    def test_records_ordered_by_ordinal_and_max_ordinal(self, tmp_path):
        journal = JobJournal(tmp_path)
        for ordinal in (10, 2, 7):
            journal.record_admitted(f"job-{ordinal}-aaaaaaaa", request_dict())
        ids = [record.job_id for record in journal.records()]
        assert ids == ["job-2-aaaaaaaa", "job-7-aaaaaaaa", "job-10-aaaaaaaa"]
        assert journal.max_ordinal() == 10
        assert JobJournal(tmp_path / "empty").max_ordinal() == 0

    def test_attempts_round_trip(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.record_admitted("job-1-aaaaaaaa", request_dict(), attempts=3)
        assert journal.get("job-1-aaaaaaaa").attempts == 3


class TestCorruptionTolerance:
    def test_corrupt_record_dropped_and_counted(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.record_admitted("job-1-aaaaaaaa", request_dict())
        path = tmp_path / "jobs" / "job-1-aaaaaaaa.json"
        path.write_text("{truncated")
        assert journal.get("job-1-aaaaaaaa") is None
        assert not path.exists()
        assert journal.info()["corrupt_dropped"] == 1

    def test_wrong_schema_is_corrupt(self, tmp_path):
        journal = JobJournal(tmp_path)
        record = JournalRecord("job-1-aaaaaaaa", "queued", request_dict())
        data = record.to_dict()
        data["schema"] = JOURNAL_SCHEMA + 1
        (tmp_path / "jobs" / "job-1-aaaaaaaa.json").write_text(json.dumps(data))
        assert journal.records() == []
        assert journal.info()["corrupt_dropped"] == 1

    def test_stray_tmp_files_ignored(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.record_admitted("job-1-aaaaaaaa", request_dict())
        # A crash can leave a half-written tmp file behind; scans skip it.
        (tmp_path / "jobs" / "job-2-bbbbbbbb.tmp.123").write_text("{half")
        assert [r.job_id for r in journal.records()] == ["job-1-aaaaaaaa"]

    def test_no_partially_written_records_visible(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.record_admitted("job-1-aaaaaaaa", request_dict())
        # Atomic rename discipline: the only .json file is complete JSON.
        for path in (tmp_path / "jobs").iterdir():
            if path.suffix == ".json":
                json.loads(path.read_bytes())


class TestCheckpoints:
    def test_save_load_round_trip(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.save_checkpoint("job-1-aaaaaaaa", snapshot(cursor=5))
        assert journal.load_checkpoint("job-1-aaaaaaaa") == snapshot(cursor=5)
        assert journal.load_checkpoint("job-2-bbbbbbbb") is None
        assert journal.info()["checkpoints_written"] == 1

    def test_terminal_record_discards_checkpoint(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.record_admitted("job-1-aaaaaaaa", request_dict())
        journal.save_checkpoint("job-1-aaaaaaaa", snapshot())
        journal.record_completed("job-1-aaaaaaaa", "done")
        assert journal.load_checkpoint("job-1-aaaaaaaa") is None

    def test_checkpoint_for_wrong_job_id_is_corrupt(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.save_checkpoint("job-1-aaaaaaaa", snapshot())
        path = tmp_path / "checkpoints" / "job-2-bbbbbbbb.json"
        (tmp_path / "checkpoints" / "job-1-aaaaaaaa.json").rename(path)
        assert journal.load_checkpoint("job-2-bbbbbbbb") is None
        assert journal.info()["corrupt_dropped"] == 1


class TestCheckpointSink:
    def test_verifies_matching_replay(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.save_checkpoint("job-1-aaaaaaaa", snapshot(cursor=2))
        sink = JournalCheckpointSink(journal, "job-1-aaaaaaaa")
        assert sink.load() == snapshot(cursor=2)
        sink.save(snapshot(cursor=0, eval_sims=10, rng="zz"))  # pre-cursor
        assert sink.verified is None
        sink.save(snapshot(cursor=2))  # replay crosses the resume point
        assert sink.verified is True
        assert sink.resumed_from is None  # one-shot
        sink.save(snapshot(cursor=3, eval_sims=60))  # new work; no re-check
        assert sink.verified is True
        assert sink.saves == 3

    def test_flags_drifting_replay(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.save_checkpoint("job-1-aaaaaaaa", snapshot(cursor=2, rng="ab12"))
        sink = JournalCheckpointSink(journal, "job-1-aaaaaaaa")
        sink.load()
        sink.save(snapshot(cursor=2, rng="ff99"))  # same cursor, drifted rng
        assert sink.verified is False

    def test_unprimed_sink_just_persists(self, tmp_path):
        journal = JobJournal(tmp_path)
        sink = JournalCheckpointSink(journal, "job-1-aaaaaaaa")
        sink.save(snapshot(cursor=1))
        assert sink.verified is None
        assert journal.load_checkpoint("job-1-aaaaaaaa") == snapshot(cursor=1)
