"""End-to-end daemon tests: parity, warm cache, join, cancel, restart."""

import asyncio
import json
import threading
import time

import pytest

from repro.api import run_request
from repro.cache import PersistentEvalCache
from repro.core.config import RepairConfig
from repro.core.serialize import outcome_to_json
from repro.service import RepairDaemon, RepairRequest, ServiceClient

#: Tiny search: ~23 unique evaluations on counter_reset, a few seconds.
TINY = {"population_size": 8, "max_generations": 3}


class DaemonHarness:
    """Run one daemon on a background event-loop thread."""

    def __init__(self, tmp_path, name: str, **kwargs):
        self.socket_path = str(tmp_path / f"{name}.sock")
        self.daemon = RepairDaemon(self.socket_path, **kwargs)
        self.thread = threading.Thread(
            target=lambda: asyncio.run(self.daemon.serve()), daemon=True
        )

    def __enter__(self) -> ServiceClient:
        self.thread.start()
        client = ServiceClient(self.socket_path, timeout=180)
        deadline = time.monotonic() + 10
        while True:
            try:
                client.ping()
                return client
            except OSError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.02)

    def __exit__(self, *exc) -> None:
        try:
            ServiceClient(self.socket_path, timeout=10).shutdown()
        except OSError:
            pass
        self.thread.join(timeout=60)
        assert not self.thread.is_alive(), "daemon failed to drain"


@pytest.fixture(autouse=True)
def _fresh_store_registry():
    PersistentEvalCache.reset_shared()
    yield
    PersistentEvalCache.reset_shared()


def tiny_request(**kwargs) -> RepairRequest:
    return RepairRequest(scenario="counter_reset", config=dict(TINY), seeds=(0,), **kwargs)


class TestParityAndWarmCache:
    def test_submit_matches_direct_run_and_resubmit_hits(self, tmp_path):
        base = RepairConfig(cache_dir=str(tmp_path / "cache"))
        request = tiny_request()
        with DaemonHarness(tmp_path, "d", base_config=base) as client:
            _, first = client.submit(request)
            _, second = client.submit(request)
        assert first.status == "done"
        assert second.status == "done"
        # Cold job misses the persistent store; warm job must hit >= 90%.
        assert first.cache["store_hits"] == 0
        assert first.cache["store_misses"] > 0
        assert second.cache["hit_rate"] >= 0.9
        # The service outcome is bit-identical to a direct in-process run
        # of the same request (modulo wall clock).
        direct = run_request(request, base_config=base)
        reports = []
        for text in (
            first.outcome_json,
            second.outcome_json,
            outcome_to_json(direct, "counter_reset"),
        ):
            data = json.loads(text)
            data.pop("elapsed_seconds")
            reports.append(data)
        assert reports[0] == reports[2]
        assert reports[1] == reports[2]

    def test_streaming_delivers_lifecycle_and_engine_events(self, tmp_path):
        with DaemonHarness(tmp_path, "d") as client:
            events = []
            _, response = client.submit(
                tiny_request(), stream=True, on_event=events.append
            )
        assert response.status == "done"
        types = [event.type for event in events]
        assert "job_started" in types
        assert "candidate_evaluated" in types
        assert types[-1] == "job_completed"
        completed = events[-1]
        assert completed.status == "done"
        assert completed.cache_hit_rate == response.cache["hit_rate"]


class TestJoin:
    def test_duplicate_inflight_submission_joins(self, tmp_path):
        # Enough seeds that the job is still in flight when we resubmit.
        slow = RepairRequest(
            scenario="counter_reset", config=dict(TINY), seeds=tuple(range(8))
        )
        with DaemonHarness(tmp_path, "d") as client:
            results = {}

            def waiter():
                results["first"] = client.submit(slow)

            thread = threading.Thread(target=waiter)
            thread.start()
            deadline = time.monotonic() + 30
            while not any(
                row.state in ("queued", "running") for row in client.jobs()
            ):
                assert time.monotonic() < deadline, "job never admitted"
                time.sleep(0.02)
            status, _ = client.submit(slow, wait=False)
            assert status.submissions == 2  # joined, not re-enqueued
            # Joining must not spawn a second job.
            assert len(client.jobs()) == 1
            client.cancel(status.job_id)
            thread.join(timeout=120)
            assert not thread.is_alive()
        first_status, first_response = results["first"]
        assert first_status.job_id == status.job_id
        assert first_response.status in ("done", "cancelled")


class TestCancel:
    def test_cancel_running_job_leaves_daemon_reusable(self, tmp_path):
        slow = RepairRequest(
            scenario="counter_reset", config=dict(TINY), seeds=tuple(range(16))
        )
        with DaemonHarness(tmp_path, "d") as client:
            results = {}

            def waiter():
                results["slow"] = client.submit(slow)

            thread = threading.Thread(target=waiter)
            thread.start()
            deadline = time.monotonic() + 30
            while not any(row.state == "running" for row in client.jobs()):
                assert time.monotonic() < deadline, "job never started"
                time.sleep(0.02)
            job_id = client.jobs()[0].job_id
            client.cancel(job_id)
            thread.join(timeout=120)
            assert not thread.is_alive(), "cancelled job never returned"
            _, cancelled = results["slow"]
            assert cancelled.status == "cancelled"
            # The daemon (and its execution pool) must still take work.
            _, after = client.submit(tiny_request())
            assert after.status == "done"

    def test_cancel_queued_job_never_runs(self, tmp_path):
        slow = RepairRequest(
            scenario="counter_reset", config=dict(TINY), seeds=tuple(range(16))
        )
        queued = tiny_request(tenant="other")
        with DaemonHarness(tmp_path, "d", max_jobs=1) as client:
            background = threading.Thread(
                target=lambda: client.submit(slow), daemon=True
            )
            background.start()
            deadline = time.monotonic() + 30
            while not any(row.state == "running" for row in client.jobs()):
                assert time.monotonic() < deadline
                time.sleep(0.02)
            status, _ = client.submit(queued, wait=False)
            assert status.state == "queued"
            cancelled = client.cancel(status.job_id)
            assert cancelled.state == "cancelled"
            running = [row for row in client.jobs() if row.state == "running"]
            client.cancel(running[0].job_id)
            background.join(timeout=120)


class TestCrashRestart:
    def test_persistent_cache_survives_restart_with_correct_telemetry(
        self, tmp_path
    ):
        cache_dir = str(tmp_path / "cache")
        base = RepairConfig(cache_dir=cache_dir)
        request = tiny_request()
        with DaemonHarness(tmp_path, "first", base_config=base) as client:
            _, cold = client.submit(request)
        assert cold.status == "done"
        assert cold.cache["store_misses"] > 0
        # Simulate a process crash/restart: the in-memory store registry
        # dies with the process; only the directory survives.
        PersistentEvalCache.reset_shared()
        with DaemonHarness(tmp_path, "second", base_config=base) as client:
            events = []
            _, warm = client.submit(request, stream=True, on_event=events.append)
        assert warm.status == "done"
        assert warm.cache["hit_rate"] >= 0.9
        assert warm.cache["store_hits"] == cold.cache["store_misses"]
        # Replayed hits must carry the same telemetry the cold run had:
        # the replayed outcome report is bit-identical.
        cold_report = json.loads(cold.outcome_json)
        warm_report = json.loads(warm.outcome_json)
        cold_report.pop("elapsed_seconds")
        warm_report.pop("elapsed_seconds")
        assert warm_report == cold_report
        # And the job-completed event agrees with the response counters.
        completed = [e for e in events if e.type == "job_completed"]
        assert completed and completed[-1].cache_hit_rate >= 0.9


class TestProtocolErrors:
    def test_bad_request_fails_connection_not_daemon(self, tmp_path):
        from repro.service import ServiceError

        with DaemonHarness(tmp_path, "d") as client:
            with pytest.raises(ServiceError):
                client.submit(RepairRequest())  # no problem source
            with pytest.raises(ServiceError):
                client.submit(
                    RepairRequest(scenario="s", config={"bogus_knob": 1})
                )
            with pytest.raises(ServiceError):
                client.cancel("job-404")
            # Still alive and serving after three bad requests.
            assert client.ping()["ok"]

    def test_unknown_engine_rejected_with_typed_error(self, tmp_path):
        from repro.core.engines import engine_names
        from repro.service import ServiceError

        request = tiny_request(engine="bogus")
        with DaemonHarness(tmp_path, "d") as client:
            # The raw protocol reply is typed: a machine-readable code
            # plus the registered engine list, not just prose.
            reply = next(
                iter(
                    client._call(
                        {"op": "submit", "request": request.to_dict(), "wait": False}
                    )
                )
            )
            assert reply["ok"] is False
            assert reply["code"] == "unknown_engine"
            assert reply["known_engines"] == list(engine_names())
            assert "bogus" in reply["error"]
            # Rejected at admission: no job was enqueued.
            assert client.jobs() == []
            # The high-level client surfaces it as a ServiceError naming
            # the valid engines, and the daemon keeps serving.
            with pytest.raises(ServiceError, match="cirfix"):
                client.submit(request)
            assert client.ping()["ok"]
