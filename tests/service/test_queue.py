"""JobQueue properties: determinism, fair share, dedup/join, cancel."""

from hypothesis import given
from hypothesis import strategies as st

from repro.service.jobs import RepairRequest
from repro.service.queue import JobQueue


def request(scenario: str, tenant: str = "default") -> RepairRequest:
    return RepairRequest(scenario=scenario, tenant=tenant)


def drain(queue: JobQueue, run_all: bool = True) -> list[str]:
    """Pick (and start) jobs until nothing is ready; return scenarios."""
    order = []
    while True:
        job = queue.next_ready()
        if job is None:
            return order
        if run_all:
            queue.mark_running(job)
        order.append(job.request.scenario)


class TestDedup:
    def test_identical_submission_joins(self):
        queue = JobQueue()
        first, joined_a = queue.submit(request("s1"))
        second, joined_b = queue.submit(request("s1"))
        assert not joined_a
        assert joined_b
        assert first is second
        assert first.submissions == 2
        assert queue.queued_depth() == 1

    def test_join_applies_to_running_jobs(self):
        queue = JobQueue()
        job, _ = queue.submit(request("s1"))
        picked = queue.next_ready()
        queue.mark_running(picked)
        again, joined = queue.submit(request("s1"))
        assert joined
        assert again is job

    def test_finished_jobs_do_not_absorb_new_work(self):
        queue = JobQueue()
        job, _ = queue.submit(request("s1"))
        queue.mark_running(queue.next_ready())
        queue.mark_finished(job, "done")
        fresh, joined = queue.submit(request("s1"))
        assert not joined
        assert fresh is not job

    def test_different_tenants_still_join(self):
        """The dedup key excludes tenancy: identical work coalesces."""
        queue = JobQueue()
        a, _ = queue.submit(request("s1", tenant="alpha"))
        b, joined = queue.submit(request("s1", tenant="beta"))
        assert joined
        assert a is b


class TestFairShare:
    def test_round_robin_across_tenants(self):
        queue = JobQueue(tenant_quota=10)
        for i in range(3):
            queue.submit(request(f"a{i}", tenant="alpha"))
        for i in range(3):
            queue.submit(request(f"b{i}", tenant="beta"))
        assert drain(queue) == ["a0", "b0", "a1", "b1", "a2", "b2"]

    def test_chatty_tenant_cannot_starve_late_arrival(self):
        queue = JobQueue(tenant_quota=10)
        for i in range(5):
            queue.submit(request(f"a{i}", tenant="alpha"))
        queue.submit(request("b0", tenant="beta"))
        order = drain(queue)
        # beta's single job runs second, not sixth.
        assert order.index("b0") == 1

    def test_quota_caps_concurrent_runs_per_tenant(self):
        queue = JobQueue(tenant_quota=1)
        queue.submit(request("a0", tenant="alpha"))
        queue.submit(request("a1", tenant="alpha"))
        queue.submit(request("b0", tenant="beta"))
        first = queue.next_ready()
        queue.mark_running(first)
        second = queue.next_ready()
        queue.mark_running(second)
        assert {first.request.scenario, second.request.scenario} == {"a0", "b0"}
        # alpha is at quota: a1 must wait until a0 finishes.
        assert queue.next_ready() is None
        queue.mark_finished(first, "done")
        assert queue.next_ready().request.scenario == "a1"

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["alpha", "beta", "gamma"]),
                st.integers(min_value=0, max_value=20),
            ),
            max_size=24,
        )
    )
    def test_schedule_is_a_function_of_arrival_order(self, submissions):
        """Two queues fed the same arrivals pick identical schedules."""

        def run() -> list[str]:
            queue = JobQueue(tenant_quota=2)
            for tenant, i in submissions:
                queue.submit(request(f"{tenant}-{i}", tenant=tenant))
            order = []
            while True:
                job = queue.next_ready()
                if job is None:
                    break
                queue.mark_running(job)
                order.append(job.job_id)
                # Finish every other job to exercise quota churn.
                if len(order) % 2 == 0:
                    queue.mark_finished(job, "done")
            return order

        assert run() == run()


class TestCancel:
    def test_cancel_queued_removes_it(self):
        queue = JobQueue()
        job, _ = queue.submit(request("s1"))
        cancelled = queue.cancel(job.job_id)
        assert cancelled.state == "cancelled"
        assert queue.queued_depth() == 0
        assert queue.next_ready() is None

    def test_cancel_running_sets_the_flag_only(self):
        queue = JobQueue()
        job, _ = queue.submit(request("s1"))
        queue.mark_running(queue.next_ready())
        queue.cancel(job.job_id)
        assert job.state == "running"  # still running until it notices
        assert job.cancel_flag.is_set()
        queue.mark_finished(job, "cancelled")
        assert job.state == "cancelled"
        assert queue.running_count() == 0

    def test_cancel_unknown_returns_none(self):
        assert JobQueue().cancel("job-404") is None

    def test_cancelled_key_is_resubmittable(self):
        queue = JobQueue()
        job, _ = queue.submit(request("s1"))
        queue.cancel(job.job_id)
        fresh, joined = queue.submit(request("s1"))
        assert not joined
        assert fresh.state == "queued"

    def test_statuses_reflect_history(self):
        queue = JobQueue()
        a, _ = queue.submit(request("s1"))
        b, _ = queue.submit(request("s2"))
        queue.cancel(b.job_id)
        states = {s.job_id: s.state for s in queue.statuses()}
        assert states == {a.job_id: "queued", b.job_id: "cancelled"}
