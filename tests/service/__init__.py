"""Tests for repro.service (job API, queue, daemon, client)."""
