"""Oracle generation tests (paper §4.1.2)."""

import pytest

from repro.core.oracle import (
    OracleError,
    combine_sources,
    degrade_oracle,
    ensure_instrumented,
    generate_oracle,
)
from repro.hdl import generate, parse
from repro.instrument.instrumenter import is_instrumented

GOLDEN = """
module inc(clk, v);
  input clk;
  output [3:0] v;
  reg [3:0] v;
  initial v = 0;
  always @(posedge clk) v <= v + 1;
endmodule
"""

TESTBENCH = """
module tb;
  reg clk;
  wire [3:0] v;
  inc dut(.clk(clk), .v(v));
  always #5 clk = !clk;
  initial begin clk = 0; #95 $finish; end
endmodule
"""


class TestEnsureInstrumented:
    def test_instruments_plain_testbench(self):
        golden = parse(GOLDEN)
        bench = ensure_instrumented(parse(TESTBENCH), golden)
        assert any(is_instrumented(m) for m in bench.modules)

    def test_already_instrumented_untouched(self):
        golden = parse(GOLDEN)
        bench = ensure_instrumented(parse(TESTBENCH), golden)
        again = ensure_instrumented(bench, golden)
        assert generate(again) == generate(bench)


class TestGenerateOracle:
    def test_oracle_rows_at_posedges(self):
        golden = parse(GOLDEN)
        bench = ensure_instrumented(parse(TESTBENCH), golden)
        oracle = generate_oracle(golden, bench)
        assert oracle.times() == [5, 15, 25, 35, 45, 55, 65, 75, 85]
        assert oracle.variables() == ["v"]
        # Postponed sampling: value after the NBA update at each edge.
        assert oracle.get(5, "v").to_int() == 1

    def test_uninstrumented_bench_rejected(self):
        golden = parse(GOLDEN)
        with pytest.raises(OracleError):
            generate_oracle(golden, parse(TESTBENCH))

    def test_unfinished_simulation_rejected(self):
        golden = parse(GOLDEN)
        bench_text = TESTBENCH.replace("#95 $finish;", "#95;")
        bench = ensure_instrumented(parse(bench_text), golden)
        with pytest.raises(OracleError):
            generate_oracle(golden, bench, require_finish=True)

    def test_combine_sources_reparses(self):
        combined = combine_sources(parse(GOLDEN), parse(TESTBENCH))
        assert {m.name for m in combined.modules} == {"inc", "tb"}


class TestDegrade:
    def test_degrade_halves(self):
        golden = parse(GOLDEN)
        bench = ensure_instrumented(parse(TESTBENCH), golden)
        oracle = generate_oracle(golden, bench)
        half = degrade_oracle(oracle, 0.5)
        assert len(half) in (4, 5)
        assert set(half.times()) <= set(oracle.times())
