"""Cache-key completeness: outcome-relevant config must never alias.

The persistent eval store is shared across runs, backends, and daemon
restarts, so two evaluation contexts that could produce *different*
results for the same candidate text must hash to different context
digests.  Conversely, knobs that only shape the GP search schedule (not
any single candidate's score) must NOT perturb the digest — otherwise
warm resubmissions with a tweaked budget would never hit.
"""

import dataclasses

import pytest

from repro.benchsuite import load_scenario
from repro.core.backend import (
    EvalCache,
    SerialBackend,
    decode_eval_payload,
    encode_eval_payload,
    eval_context_digest,
)
from repro.core.config import RepairConfig
from repro.core.fitness import FitnessBreakdown
from repro.instrument.trace import SimulationTrace


@pytest.fixture(scope="module")
def scenario():
    return load_scenario("counter_reset")


@pytest.fixture(scope="module")
def base_digest(scenario):
    return eval_context_digest(
        scenario.project.testbench_text, scenario.oracle(), RepairConfig()
    )


def digest_with(scenario, **overrides) -> str:
    config = dataclasses.replace(RepairConfig(), **overrides)
    return eval_context_digest(
        scenario.project.testbench_text, scenario.oracle(), config
    )


class TestOutcomeRelevantKnobs:
    """Every knob that can change a candidate's score splits the key."""

    @pytest.mark.parametrize(
        "overrides",
        [
            {"phi": 3.0},
            {"max_sim_time": 123},
            {"max_sim_steps": 999},
            {"sim_engine": "compiled"},
            {"worker_mem_mb": 256},
            {"lint_gate": True},
            # Deadline buckets: 0 (off) vs a 1-minute bucket.
            {"eval_deadline_seconds": 30.0, "backend": "process"},
        ],
    )
    def test_change_splits_the_digest(self, scenario, base_digest, overrides):
        assert digest_with(scenario, **overrides) != base_digest

    def test_gated_ruleset_change_splits_the_digest(self, scenario):
        gated = digest_with(scenario, lint_gate=True)
        narrowed = digest_with(
            scenario, lint_gate=True, lint_gate_rules="multi-driver"
        )
        assert gated != narrowed

    def test_deadline_buckets_quantize_to_minutes(self, scenario):
        # Same 1-minute bucket → same digest (restarts with slightly
        # different deadlines still share the cache) ...
        a = digest_with(scenario, eval_deadline_seconds=30.0)
        b = digest_with(scenario, eval_deadline_seconds=59.0)
        assert a == b
        # ... but crossing a bucket boundary splits it.
        c = digest_with(scenario, eval_deadline_seconds=61.0)
        assert a != c

    def test_testbench_and_oracle_split_the_digest(self, scenario):
        config = RepairConfig()
        base = eval_context_digest(
            scenario.project.testbench_text, scenario.oracle(), config
        )
        other_tb = eval_context_digest(
            scenario.project.testbench_text + "\n// v2", scenario.oracle(), config
        )
        assert other_tb != base
        halved = scenario.oracle().subsample(0.5)
        other_oracle = eval_context_digest(
            scenario.project.testbench_text, halved, config
        )
        assert other_oracle != base


class TestScheduleKnobsExcluded:
    """GP schedule knobs never alias-split the persistent cache."""

    @pytest.mark.parametrize(
        "overrides",
        [
            {"population_size": 7},
            {"max_generations": 99},
            {"max_wall_seconds": 1.0},
            {"max_fitness_evals": 5},
            {"eval_chunk_size": 3},
            {"workers": 8},
            {"eval_cache_size": 16},
            {"minimize_budget": 1},
        ],
    )
    def test_schedule_change_keeps_the_digest(self, scenario, base_digest, overrides):
        assert digest_with(scenario, **overrides) == base_digest

    def test_ungated_ruleset_is_irrelevant(self, scenario, base_digest):
        # With the gate off, the rule list cannot affect any score.
        assert digest_with(scenario, lint_gate_rules="all") == base_digest

    def test_never_aliases_across_any_relevant_change(self, scenario):
        """The headline property: pairwise-distinct digests across a
        sweep of outcome-relevant contexts (no hash collisions/aliasing
        among the realistic neighbouring configurations)."""
        contexts = [
            {},
            {"phi": 3.0},
            {"max_sim_time": 123},
            {"sim_engine": "compiled"},
            {"lint_gate": True},
            {"lint_gate": True, "lint_gate_rules": "multi-driver"},
            {"eval_deadline_seconds": 30.0},
            {"eval_deadline_seconds": 120.0},
            {"worker_mem_mb": 256},
        ]
        digests = [digest_with(scenario, **c) for c in contexts]
        assert len(set(digests)) == len(digests)


class TestPayloadCodec:
    """encode/decode round-trips every CandidateResult shape we persist."""

    def _trace(self):
        return SimulationTrace.from_csv("time,q\n0,1\n5,0\n")

    def test_success_with_trace_roundtrip(self):
        from repro.core.backend import CandidateResult, TraceSummary

        result = CandidateResult(
            0.75,
            FitnessBreakdown(0.75, 3.0, 4.0, 3, 1, 0),
            True,
            self._trace(),
            TraceSummary(rows=2, recorded_vars=1, mismatched_vars=("q",)),
            sim_events=10,
            sim_steps=20,
        )
        decoded = decode_eval_payload(encode_eval_payload(result))
        assert decoded is not None
        assert decoded.fitness == result.fitness
        assert decoded.breakdown == result.breakdown
        assert decoded.summary == result.summary
        assert decoded.trace is not None
        assert decoded.trace.to_csv() == result.trace.to_csv()

    def test_failure_without_trace_roundtrip(self):
        from repro.core.backend import CandidateResult

        result = CandidateResult(0.0, None, False, None, None)
        decoded = decode_eval_payload(encode_eval_payload(result))
        assert decoded is not None
        assert decoded.fitness == 0.0
        assert decoded.breakdown is None
        assert decoded.trace is None

    def test_garbage_payload_decodes_to_none(self):
        assert decode_eval_payload({"version": 1}) is None
        assert decode_eval_payload({"version": 99, "fitness": 1.0}) is None


class TestTieredEvalCache:
    """The in-memory EvalCache over a persistent store."""

    def _success(self, with_trace: bool):
        from repro.core.backend import CandidateResult, TraceSummary

        trace = SimulationTrace.from_csv("time,q\n0,1\n") if with_trace else None
        return CandidateResult(
            0.5,
            FitnessBreakdown(0.5, 1.0, 2.0, 1, 1, 0),
            True,
            trace,
            TraceSummary(rows=1, recorded_vars=1, mismatched_vars=()),
        )

    def _store(self, tmp_path):
        from repro.cache import PersistentEvalCache

        PersistentEvalCache.reset_shared()
        return PersistentEvalCache(tmp_path / "store")

    def test_disk_hit_after_memory_restart(self, tmp_path):
        store = self._store(tmp_path)
        warm = EvalCache(8, store=store, context="ctx", keep_traces=True)
        warm.put("module a; endmodule", self._success(with_trace=True))
        # Same store, fresh memory tier: must hit the disk.
        cold = EvalCache(8, store=store, context="ctx", keep_traces=True)
        result = cold.get("module a; endmodule")
        assert result is not None
        assert cold.info()["store_hits"] == 1
        assert result.trace is not None  # trace was persisted and replayed

    def test_context_isolates_entries(self, tmp_path):
        store = self._store(tmp_path)
        one = EvalCache(8, store=store, context="ctx-one", keep_traces=True)
        one.put("module a; endmodule", self._success(with_trace=True))
        other = EvalCache(8, store=store, context="ctx-two", keep_traces=True)
        assert other.get("module a; endmodule") is None

    def test_serial_tier_rejects_stripped_success(self, tmp_path):
        """A pool-written (traceless, successful) entry must be a serial
        miss — the serial backend's contract includes the trace."""
        store = self._store(tmp_path)
        pool = EvalCache(8, store=store, context="ctx", keep_traces=False)
        pool.put("module a; endmodule", self._success(with_trace=False))
        serial = EvalCache(8, store=store, context="ctx", keep_traces=True)
        assert serial.get("module a; endmodule") is None

    def test_pool_tier_strips_serial_traces(self, tmp_path):
        store = self._store(tmp_path)
        serial = EvalCache(8, store=store, context="ctx", keep_traces=True)
        serial.put("module a; endmodule", self._success(with_trace=True))
        pool = EvalCache(8, store=store, context="ctx", keep_traces=False)
        result = pool.get("module a; endmodule")
        assert result is not None
        assert result.trace is None

    def test_failed_entries_replay_on_both_tiers(self, tmp_path):
        from repro.core.backend import CandidateResult

        store = self._store(tmp_path)
        failed = CandidateResult(0.0, None, False, None, None)
        pool = EvalCache(8, store=store, context="ctx", keep_traces=False)
        pool.put("module bad; endmodule", failed)
        serial = EvalCache(8, store=store, context="ctx", keep_traces=True)
        replay = serial.get("module bad; endmodule")
        assert replay is not None
        assert replay.breakdown is None


class TestBackendIntegration:
    """A serial backend with cache_dir set survives a cold restart."""

    def test_serial_backend_restart_hits_disk(self, tmp_path, scenario):
        from repro.cache import PersistentEvalCache
        from repro.experiments.common import SMOKE

        PersistentEvalCache.reset_shared()
        config = dataclasses.replace(
            scenario.suggested_config(SMOKE), cache_dir=str(tmp_path / "c")
        )
        text = scenario.faulty_design_text
        first = SerialBackend.for_problem(scenario.problem(), config)
        first.evaluate_batch([text])
        assert first.cache.info()["store_hits"] == 0
        # "Restart": new backend instance, same persistent directory.
        second = SerialBackend.for_problem(scenario.problem(), config)
        second.evaluate_batch([text])
        info = second.cache.info()
        assert info["store_hits"] == 1
        PersistentEvalCache.reset_shared()
