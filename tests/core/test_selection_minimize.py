"""Selection (tournament + elitism) and delta-debugging minimization tests."""

import random

import pytest

from repro.core.minimize import minimize_patch
from repro.core.patch import Edit, Patch
from repro.core.selection import elite, tournament_select


class TestTournament:
    def test_returns_fittest_of_pool(self):
        # Pool sampling is with replacement; with a 2-member population and
        # a large tournament the best member is picked almost surely.
        rng = random.Random(0)
        winner = tournament_select([0, 1], lambda x: x, rng, tournament_size=2)
        assert winner in (0, 1)
        winners = [
            tournament_select([0, 1], lambda x: x, random.Random(i), 2)
            for i in range(100)
        ]
        assert winners.count(1) > 60  # ~75% expected

    def test_tournament_size_one_is_random_choice(self):
        rng = random.Random(0)
        population = [1, 2, 3]
        picks = {tournament_select(population, lambda x: x, rng, 1) for _ in range(50)}
        assert len(picks) > 1

    def test_selection_pressure_grows_with_size(self):
        population = list(range(50))
        small = [
            tournament_select(population, lambda x: x, random.Random(i), 2)
            for i in range(200)
        ]
        large = [
            tournament_select(population, lambda x: x, random.Random(i), 10)
            for i in range(200)
        ]
        assert sum(large) / len(large) > sum(small) / len(small)

    def test_empty_population_raises(self):
        with pytest.raises(ValueError):
            tournament_select([], lambda x: x, random.Random(0))


class TestElite:
    def test_top_fraction_fittest_first(self):
        population = [5, 1, 9, 3, 7, 2, 8, 4, 6, 0] * 2
        top = elite(population, lambda x: x, fraction=0.10)
        assert top == [9, 9]

    def test_at_least_one_survivor(self):
        assert elite([3, 1], lambda x: x, fraction=0.01) == [3]

    def test_empty_population(self):
        assert elite([], lambda x: x) == []


class TestMinimize:
    def _patch(self, n):
        return Patch([Edit("delete", i) for i in range(n)])

    def test_single_necessary_edit_kept(self):
        patch = self._patch(6)

        def plausible(p):
            return any(e.target_id == 3 for e in p.edits)

        result = minimize_patch(patch, plausible)
        assert [e.target_id for e in result.edits] == [3]

    def test_pair_of_necessary_edits(self):
        patch = self._patch(8)

        def plausible(p):
            ids = {e.target_id for e in p.edits}
            return {2, 5} <= ids

        result = minimize_patch(patch, plausible)
        assert {e.target_id for e in result.edits} == {2, 5}

    def test_all_edits_necessary(self):
        patch = self._patch(4)

        def plausible(p):
            return len(p.edits) == 4

        result = minimize_patch(patch, plausible)
        assert len(result.edits) == 4

    def test_empty_patch_returned_unchanged(self):
        patch = Patch.empty()
        assert minimize_patch(patch, lambda p: True) is patch

    def test_one_minimality(self):
        patch = self._patch(10)
        required = {1, 4, 8}

        def plausible(p):
            return required <= {e.target_id for e in p.edits}

        result = minimize_patch(patch, plausible)
        # Dropping any single remaining edit must break plausibility.
        for drop in range(len(result.edits)):
            keep = [i for i in range(len(result.edits)) if i != drop]
            assert not plausible(result.subset(keep))

    def test_budget_respected(self):
        patch = self._patch(12)
        calls = []

        def plausible(p):
            calls.append(1)
            return True

        minimize_patch(patch, plausible, max_tests=10)
        assert len(calls) <= 11
