"""Patch serialization round-trip tests."""

import json

import pytest

from repro.core.patch import Edit, Patch
from repro.core.serialize import (
    SerializeError,
    outcome_to_json,
    patch_from_json,
    patch_to_json,
)
from repro.hdl import ast, generate, parse

SRC = """
module m;
  reg [3:0] a, b;
  always @(posedge clk) begin
    a <= 4'd1;
    b <= a + 1;
  end
endmodule
"""


def base():
    return parse(SRC)


def nba(tree, index):
    return [n for n in tree.walk() if isinstance(n, ast.NonBlockingAssign)][index]


class TestRoundTrip:
    def test_empty_patch(self):
        restored = patch_from_json(patch_to_json(Patch.empty()))
        assert len(restored) == 0

    def test_delete_edit(self):
        tree = base()
        patch = Patch([Edit("delete", nba(tree, 0).node_id)])
        restored = patch_from_json(patch_to_json(patch))
        assert restored.edits[0].kind == "delete"
        assert restored.edits[0].target_id == patch.edits[0].target_id

    def test_template_edit(self):
        patch = Patch([Edit("template", 7, template="negate_conditional")])
        restored = patch_from_json(patch_to_json(patch))
        assert restored.edits[0].template == "negate_conditional"

    def test_statement_payload(self):
        tree = base()
        donor = nba(tree, 1)
        patch = Patch([Edit("insert_after", nba(tree, 0).node_id, donor.clone())])
        restored = patch_from_json(patch_to_json(patch))
        assert isinstance(restored.edits[0].payload, ast.NonBlockingAssign)

    def test_expression_payload(self):
        tree = base()
        number = next(n for n in tree.walk() if isinstance(n, ast.Number))
        patch = Patch([Edit("replace", 5, number.clone())])
        restored = patch_from_json(patch_to_json(patch))
        assert isinstance(restored.edits[0].payload, ast.Number)

    def test_applied_results_identical(self):
        tree = base()
        donor = nba(tree, 1)
        patch = Patch(
            [
                Edit("insert_after", nba(tree, 0).node_id, donor.clone()),
                Edit("delete", nba(tree, 1).node_id),
            ]
        )
        restored = patch_from_json(patch_to_json(patch))
        assert generate(patch.apply(tree)) == generate(restored.apply(tree))

    def test_unknown_format_rejected(self):
        with pytest.raises(SerializeError):
            patch_from_json(json.dumps({"format": "v99", "edits": []}))


class TestOutcomeReport:
    def test_report_fields(self):
        from repro.core.repair import RepairOutcome

        outcome = RepairOutcome(
            plausible=True,
            patch=Patch([Edit("template", 3, template="sens_posedge")]),
            fitness=1.0,
            repaired_source="module m; endmodule",
            generations=2,
            fitness_evals=50,
            simulations=40,
            elapsed_seconds=1.25,
            best_fitness_history=[0.5, 1.0],
            seed=7,
        )
        data = json.loads(outcome_to_json(outcome, "counter_sens"))
        assert data["scenario"] == "counter_sens"
        assert data["plausible"] is True
        assert data["patchlist"][0]["template"] == "sens_posedge"
        assert data["best_fitness_history"] == [0.5, 1.0]
