"""Repair template tests (paper Table 1): all nine templates."""

from repro.core.templates import ALL_TEMPLATES, TEMPLATES_BY_CATEGORY, applicable_templates, apply_template
from repro.hdl import ast, generate, parse

SRC = """
module m;
  reg [3:0] q;
  reg en;
  always @(posedge clk) begin
    if (en == 1'b1) begin
      q = q + 1;
    end
    q <= 4'd5;
  end
  always @(negedge clk) begin
    while (q < 4'd9) begin
      q = q + 1;
    end
  end
endmodule
"""


def tree():
    return parse(SRC)


def find(t, node_type, predicate=lambda n: True):
    return next(n for n in t.walk() if isinstance(n, node_type) and predicate(n))


class TestInventory:
    def test_nine_templates_in_four_categories(self):
        assert len(ALL_TEMPLATES) == 9
        assert len(TEMPLATES_BY_CATEGORY) == 4
        assert len(TEMPLATES_BY_CATEGORY["sensitivity"]) == 4

    def test_applicability(self):
        t = tree()
        if_node = find(t, ast.If)
        assert "negate_conditional" in applicable_templates(if_node)
        always = find(t, ast.Always)
        assert set(TEMPLATES_BY_CATEGORY["sensitivity"]) <= set(
            applicable_templates(always)
        )
        blocking = find(t, ast.BlockingAssign)
        assert applicable_templates(blocking) == ["blocking_to_nonblocking"]
        number = find(t, ast.Number)
        assert "increment_by_one" in applicable_templates(number)

    def test_inapplicable_returns_empty(self):
        t = tree()
        block = find(t, ast.Block)
        assert applicable_templates(block) == []


class TestConditionals:
    def test_negate_if(self):
        t = tree()
        if_node = find(t, ast.If)
        assert apply_template("negate_conditional", t, if_node.node_id, 90_000)
        assert "!((en == 1'b1))" in generate(t)

    def test_negate_while(self):
        t = tree()
        while_node = find(t, ast.While)
        assert apply_template("negate_conditional", t, while_node.node_id, 90_000)
        assert "!((q < 4'd9))" in generate(t)

    def test_negate_preserves_condition_ids(self):
        t = tree()
        if_node = find(t, ast.If)
        cond_id = if_node.cond.node_id
        apply_template("negate_conditional", t, if_node.node_id, 90_000)
        assert t.find(cond_id) is not None


class TestSensitivity:
    def test_to_negedge(self):
        t = tree()
        always = find(t, ast.Always)
        assert apply_template("sens_negedge", t, always.node_id, 90_000)
        assert "@(negedge clk)" in generate(t).split("always")[1]

    def test_to_posedge_on_sens_item(self):
        t = tree()
        item = find(t, ast.SensItem, lambda n: n.edge == "negedge")
        assert apply_template("sens_posedge", t, item.node_id, 90_000)
        assert "negedge" not in generate(t)

    def test_to_level(self):
        t = tree()
        always = find(t, ast.Always)
        assert apply_template("sens_level", t, always.node_id, 90_000)
        assert "@(clk)" in generate(t)

    def test_any_change_becomes_star(self):
        t = tree()
        always = find(t, ast.Always)
        assert apply_template("sens_any_change", t, always.node_id, 90_000)
        assert "@(*)" in generate(t)


class TestAssignments:
    def test_blocking_to_nonblocking(self):
        t = tree()
        target = find(t, ast.BlockingAssign)
        assert apply_template("blocking_to_nonblocking", t, target.node_id, 90_000)
        assert "q <= (q + 1);" in generate(t)

    def test_nonblocking_to_blocking(self):
        t = tree()
        target = find(t, ast.NonBlockingAssign)
        assert apply_template("nonblocking_to_blocking", t, target.node_id, 90_000)
        assert "q = 4'd5;" in generate(t)

    def test_delay_preserved(self):
        t = parse("module m; reg r; always @(posedge c) r <= #1 1'b0; endmodule")
        target = find(t, ast.NonBlockingAssign)
        apply_template("nonblocking_to_blocking", t, target.node_id, 90_000)
        assert "r = #1 1'b0;" in generate(t)


class TestNumeric:
    def test_increment_number(self):
        t = tree()
        number = find(t, ast.Number, lambda n: n.text == "4'd5")
        assert apply_template("increment_by_one", t, number.node_id, 90_000)
        assert "4'd6" in generate(t)

    def test_decrement_number(self):
        t = tree()
        number = find(t, ast.Number, lambda n: n.text == "4'd5")
        assert apply_template("decrement_by_one", t, number.node_id, 90_000)
        assert "4'd4" in generate(t)

    def test_decrement_wraps_at_width(self):
        t = parse("module m; reg r; initial r = 1'b0; endmodule")
        number = find(t, ast.Number)
        apply_template("decrement_by_one", t, number.node_id, 90_000)
        assert "1'd1" in generate(t)

    def test_increment_identifier_wraps_in_addition(self):
        t = tree()
        ident = find(t, ast.Identifier, lambda n: n.name == "en")
        assert apply_template("increment_by_one", t, ident.node_id, 90_000)
        assert "(en + 1)" in generate(t)

    def test_lvalue_head_identifier_refused(self):
        # Wrapping the assignment target would emit ``(q + 1) = ...`` which
        # no longer parses (fuzz reproducer: tests/fuzz/corpus).
        t = tree()
        assign = find(t, ast.BlockingAssign)
        lhs = assign.lhs
        assert isinstance(lhs, ast.Identifier)
        assert not apply_template("increment_by_one", t, lhs.node_id, 90_000)
        parse(generate(t))  # unchanged, still parses

    def test_indexed_lvalue_head_refused_but_index_expr_allowed(self):
        t = parse(
            "module m; reg [3:0] v; reg [1:0] i;\n"
            "always @(*) v[i] = 1'b0;\nendmodule"
        )
        assign = find(t, ast.BlockingAssign)
        head = assign.lhs.target
        index = assign.lhs.index
        assert not apply_template("increment_by_one", t, head.node_id, 90_000)
        assert apply_template("increment_by_one", t, index.node_id, 91_000)
        parse(generate(t))
        assert "v[(i + 1)]" in generate(t)

    def test_xz_number_rejected(self):
        t = parse("module m; reg r; initial r = 1'bx; endmodule")
        number = find(t, ast.Number)
        assert not apply_template("increment_by_one", t, number.node_id, 90_000)


class TestStaleness:
    def test_stale_target_noop(self):
        t = tree()
        assert not apply_template("negate_conditional", t, 10**9, 90_000)

    def test_wrong_template_for_node_noop(self):
        t = tree()
        if_node = find(t, ast.If)
        assert not apply_template("blocking_to_nonblocking", t, if_node.node_id, 90_000)

    def test_all_results_still_parse(self):
        for name in ALL_TEMPLATES:
            t = tree()
            for node in list(t.walk()):
                if name in applicable_templates(node) and node.node_id:
                    if apply_template(name, t, node.node_id, 90_000):
                        parse(generate(t))  # must stay syntactically valid
                    break
