"""Repair engine tests: evaluation pipeline, fault localization per parent,
caching, and two fast end-to-end repairs."""

import pytest

from repro.core import TEST_CONFIG, CirFixEngine, RepairProblem
from repro.core.patch import Edit, Patch
from repro.core.repair import repair
from repro.core.oracle import ensure_instrumented, generate_oracle
from repro.hdl import ast, parse

GOLDEN_FF = """
module tff(clk, rstn, t, q);
  input clk, rstn, t;
  output q;
  reg q;
  always @(posedge clk) begin
    if (!rstn) q <= 1'b0;
    else begin
      if (t) q <= !q;
      else q <= q;
    end
  end
endmodule
"""

FAULTY_FF = GOLDEN_FF.replace("if (t) q <= !q;", "if (!t) q <= !q;")

TESTBENCH = """
module tb;
  reg clk, rstn, t;
  wire q;
  tff dut(.clk(clk), .rstn(rstn), .t(t), .q(q));
  always #5 clk = !clk;
  initial begin
    clk = 0; rstn = 0; t = 0;
    @(negedge clk);
    rstn = 1; t = 1;
    repeat (4) begin @(negedge clk); end
    t = 0;
    repeat (3) begin @(negedge clk); end
    #5 $finish;
  end
endmodule
"""


@pytest.fixture(scope="module")
def problem():
    golden = parse(GOLDEN_FF)
    bench = ensure_instrumented(parse(TESTBENCH), golden)
    oracle = generate_oracle(golden, bench)
    return RepairProblem(parse(FAULTY_FF), bench, oracle, "ff_cond")


class TestEvaluation:
    def test_faulty_design_scores_below_one(self, problem):
        engine = CirFixEngine(problem, TEST_CONFIG)
        evaluation = engine.evaluate(Patch.empty())
        assert evaluation.compiled
        assert 0.0 <= evaluation.fitness < 1.0

    def test_golden_equivalent_patch_scores_one(self, problem):
        engine = CirFixEngine(problem, TEST_CONFIG)
        if_node = next(
            n
            for n in problem.design.walk()
            if isinstance(n, ast.If)
            and isinstance(n.cond, ast.UnaryOp)
            and isinstance(n.cond.operand, ast.Identifier)
            and n.cond.operand.name == "t"
        )
        patch = Patch([Edit("template", if_node.node_id, template="negate_conditional")])
        assert engine.evaluate(patch).fitness == 1.0

    def test_evaluation_cached_by_source(self, problem):
        engine = CirFixEngine(problem, TEST_CONFIG)
        engine.evaluate(Patch.empty())
        sims_before = engine.simulations
        engine.evaluate(Patch.empty())
        assert engine.simulations == sims_before

    def test_broken_mutant_scores_zero_and_counts_compile_failure(self, problem):
        engine = CirFixEngine(problem, TEST_CONFIG)
        # Replace the whole if-statement's condition with a statement —
        # renders as nonsense that fails to parse.
        if_node = next(n for n in problem.design.walk() if isinstance(n, ast.If))
        bad = Patch([Edit("replace", if_node.cond.node_id, if_node.clone())])
        evaluation = engine.evaluate(bad)
        assert evaluation.fitness == 0.0

    def test_fault_localization_targets_q(self, problem):
        engine = CirFixEngine(problem, TEST_CONFIG)
        variant = engine.variant_tree(Patch.empty())
        fault_ids = engine.fault_localization(Patch.empty(), variant)
        implicated = {
            n.node_id
            for n in variant.walk()
            if isinstance(n, ast.NonBlockingAssign)
        }
        assert implicated & fault_ids


class TestEndToEnd:
    def test_repairs_negated_conditional(self, problem):
        outcome = repair(problem, TEST_CONFIG, seeds=(0, 1, 2))
        assert outcome.plausible
        assert outcome.fitness == 1.0
        assert outcome.repaired_source is not None

    def test_minimized_repair_is_small(self, problem):
        outcome = repair(problem, TEST_CONFIG, seeds=(0, 1, 2))
        assert outcome.plausible
        assert len(outcome.patch) <= 2

    def test_outcome_metadata(self, problem):
        engine = CirFixEngine(problem, TEST_CONFIG, seed=0)
        outcome = engine.run()
        assert outcome.simulations > 0
        assert outcome.fitness_evals >= outcome.simulations
        assert outcome.best_fitness_history
        assert outcome.best_fitness_history == sorted(outcome.best_fitness_history)

    def test_determinism_per_seed(self, problem):
        out1 = CirFixEngine(problem, TEST_CONFIG, seed=5).run()
        out2 = CirFixEngine(problem, TEST_CONFIG, seed=5).run()
        assert out1.plausible == out2.plausible
        assert out1.patch.describe() == out2.patch.describe()
