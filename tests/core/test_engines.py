"""The repair-engine registry: names, resolution errors, replacement."""

import pytest

from repro.core import engines
from repro.core.engines import (
    DEFAULT_ENGINE,
    engine_descriptions,
    engine_names,
    get_engine,
    register_engine,
)


@pytest.fixture(autouse=True)
def _pristine_registry():
    """Snapshot the global registry so test registrations never leak."""
    saved_registry = dict(engines._REGISTRY)
    saved_descriptions = dict(engines._DESCRIPTIONS)
    yield
    engines._REGISTRY.clear()
    engines._REGISTRY.update(saved_registry)
    engines._DESCRIPTIONS.clear()
    engines._DESCRIPTIONS.update(saved_descriptions)


def _stub(problem, config=None, seeds=(0,), backend=None, observers=None, cancel=None):
    raise AssertionError("stub runner should never be invoked")


class TestBuiltins:
    def test_builtin_engines_are_registered(self):
        names = engine_names()
        assert DEFAULT_ENGINE in names
        assert "synth" in names
        assert "race" in names
        assert names == tuple(sorted(names))

    def test_every_engine_has_a_description(self):
        descriptions = engine_descriptions()
        assert set(descriptions) == set(engine_names())
        for name in ("cirfix", "synth", "race"):
            assert descriptions[name], f"{name} has an empty description"

    def test_default_engine_resolves(self):
        assert callable(get_engine(DEFAULT_ENGINE))


class TestRegisterErrors:
    @pytest.mark.parametrize(
        "name", ["", "bad name", "a/b", "engine!", " cirfix", "\t", "a.b"]
    )
    def test_bad_names_rejected(self, name):
        with pytest.raises(ValueError, match="bad engine name"):
            register_engine(name, _stub)

    @pytest.mark.parametrize("name", ["my_engine", "my-engine", "Engine2"])
    def test_word_characters_allowed(self, name):
        register_engine(name, _stub, "a test stub")
        assert get_engine(name) is _stub
        assert engine_descriptions()[name] == "a test stub"


class TestResolutionErrors:
    def test_unknown_engine_message_lists_known_names(self):
        with pytest.raises(ValueError) as exc_info:
            get_engine("bogus")
        message = str(exc_info.value)
        assert "bogus" in message
        for name in engine_names():
            assert name in message


class TestReRegistration:
    def test_latest_registration_wins(self):
        def first(problem, config=None, seeds=(0,), backend=None,
                  observers=None, cancel=None):
            raise AssertionError

        register_engine("contested", first, "first description")
        register_engine("contested", _stub, "second description")
        assert get_engine("contested") is _stub
        assert engine_descriptions()["contested"] == "second description"

    def test_builtin_can_be_shadowed(self):
        register_engine(DEFAULT_ENGINE, _stub, "shadowed")
        assert get_engine(DEFAULT_ENGINE) is _stub
        assert engine_descriptions()[DEFAULT_ENGINE] == "shadowed"
