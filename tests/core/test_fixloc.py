"""Fix localization rule tests (paper §3.6)."""

from repro.core import fixloc
from repro.hdl import ast, parse

SRC = """
module m;
  reg [3:0] a;
  wire w;
  assign w = a[0];
  always @(posedge clk) begin
    if (a == 4'd1) a <= 4'd0;
    a <= a + 1;
  end
  initial a = 4'd2;
endmodule
"""


def tree():
    return parse(SRC)


class TestInsertionRules:
    def test_sources_are_statements_only(self):
        for node in fixloc.insertion_sources(tree()):
            assert isinstance(node, ast.Stmt)

    def test_sources_exclude_declarations(self):
        sources = fixloc.insertion_sources(tree())
        assert not any(isinstance(n, ast.Decl) for n in sources)

    def test_anchors_inside_procedural_blocks_only(self):
        t = tree()
        anchors = fixloc.insertion_anchors(t)
        assert anchors
        # The continuous assign is not an anchor (not in initial/always).
        cont = next(n for n in t.walk() if isinstance(n, ast.ContinuousAssign))
        assert cont not in anchors

    def test_anchor_must_sit_in_statement_list(self):
        t = parse("module m; reg r; always @(posedge c) r <= 1; endmodule")
        # The lone statement is the Always body (scalar field), not a list
        # member: no insertion anchor exists.
        assert fixloc.insertion_anchors(t) == []


class TestReplacementRules:
    def test_same_type_compatible(self):
        t = tree()
        assigns = [n for n in t.walk() if isinstance(n, ast.NonBlockingAssign)]
        assert fixloc.compatible_replacement(assigns[0], assigns[1])

    def test_statement_family_compatible(self):
        t = tree()
        if_node = next(n for n in t.walk() if isinstance(n, ast.If))
        nba = next(n for n in t.walk() if isinstance(n, ast.NonBlockingAssign))
        assert fixloc.compatible_replacement(if_node, nba)

    def test_expression_family_compatible(self):
        t = tree()
        ident = next(n for n in t.walk() if isinstance(n, ast.Identifier))
        number = next(n for n in t.walk() if isinstance(n, ast.Number))
        assert fixloc.compatible_replacement(ident, number)

    def test_statement_expression_incompatible(self):
        t = tree()
        nba = next(n for n in t.walk() if isinstance(n, ast.NonBlockingAssign))
        number = next(n for n in t.walk() if isinstance(n, ast.Number))
        assert not fixloc.compatible_replacement(nba, number)

    def test_module_item_family(self):
        t = tree()
        cont = next(n for n in t.walk() if isinstance(n, ast.ContinuousAssign))
        always = next(n for n in t.walk() if isinstance(n, ast.Always))
        assert fixloc.compatible_replacement(cont, always)

    def test_replacement_sources_exclude_target(self):
        t = tree()
        nba = next(n for n in t.walk() if isinstance(n, ast.NonBlockingAssign))
        assert nba not in fixloc.replacement_sources(t, nba)


class TestLvalueCheck:
    def test_identifier_ok(self):
        assert fixloc.is_lvalue_expr(ast.Identifier("a"))

    def test_select_ok(self):
        expr = ast.Index(ast.Identifier("a"), ast.Number("0", None, 0, 0))
        assert fixloc.is_lvalue_expr(expr)

    def test_concat_of_identifiers_ok(self):
        expr = ast.Concat([ast.Identifier("a"), ast.Identifier("b")])
        assert fixloc.is_lvalue_expr(expr)

    def test_binary_op_not_lvalue(self):
        expr = ast.BinaryOp("+", ast.Identifier("a"), ast.Identifier("b"))
        assert not fixloc.is_lvalue_expr(expr)

    def test_number_not_lvalue(self):
        assert not fixloc.is_lvalue_expr(ast.Number("1", None, 1, 0))


class TestDeletable:
    def test_deletable_excludes_blocks(self):
        t = tree()
        from repro.core.faultloc import all_statement_ids

        targets = fixloc.deletable_targets(t, all_statement_ids(t))
        assert targets
        assert not any(isinstance(n, ast.Block) for n in targets)

    def test_deletable_respects_fault_set(self):
        t = tree()
        assert fixloc.deletable_targets(t, set()) == []
