"""Minimization integration: a bloated plausible patch shrinks to its
essential edits through the real evaluation pipeline."""

from repro.core import TEST_CONFIG, CirFixEngine
from repro.core.minimize import minimize_patch
from repro.core.patch import Edit, Patch
from repro.benchsuite import load_scenario
from repro.hdl import ast


def test_bloated_counter_patch_minimizes_to_two_edits():
    scenario = load_scenario("counter_reset")
    engine = CirFixEngine(scenario.problem(), scenario.suggested_config(TEST_CONFIG))
    base = scenario.problem().design

    nba_nodes = [n for n in base.walk() if isinstance(n, ast.NonBlockingAssign)]
    anchor = nba_nodes[0]        # counter_out <= #1 4'b0000;
    donor = nba_nodes[2]         # overflow_out <= #1 1'b1;

    # The essential pair: insert the overflow assignment, flip its constant.
    core = Patch([Edit("insert_after", anchor.node_id, donor.clone())])
    tree1 = core.apply(base)
    inserted_number = next(
        n
        for n in tree1.walk()
        if isinstance(n, ast.Number) and n.text == "1'b1" and (n.node_id or 0) > 10_000
    )
    essential = core.extended(
        Edit("template", inserted_number.node_id, template="decrement_by_one")
    )

    # Bloat: three no-effect edits (duplicate inserts after the last stmt).
    tail = nba_nodes[2]
    bloated = Patch(
        essential.edits
        + [
            Edit("insert_after", tail.node_id, tail.clone()),
            Edit("insert_after", tail.node_id, tail.clone()),
            Edit("template", nba_nodes[1].rhs.node_id, template="increment_by_one"),
        ]
    )
    # The bloat must not break plausibility for this test to be meaningful;
    # the extra template targets the (a+1) expression -> (a+1)+1 would break
    # it, so check and drop to the harmless subset if needed.
    if not engine.evaluate(bloated).is_plausible:
        bloated = Patch(essential.edits + bloated.edits[2:4])
    assert engine.evaluate(bloated).is_plausible

    minimized = minimize_patch(bloated, lambda p: engine.evaluate(p).is_plausible)
    assert engine.evaluate(minimized).is_plausible
    assert len(minimized) <= 2
