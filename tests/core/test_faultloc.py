"""Fault localization tests (paper §3.1, Algorithm 2)."""

from repro.core.faultloc import all_statement_ids, localize_faults
from repro.hdl import ast, parse

COUNTER = """
module counter(clk, reset, enable, counter_out, overflow_out);
  input clk, reset, enable;
  output [3:0] counter_out;
  output overflow_out;
  reg [3:0] counter_out;
  reg overflow_out;
  always @(posedge clk)
  begin : COUNTER
    if (reset == 1'b1) begin
      counter_out <= #1 4'b0000;
    end
    else if (enable == 1'b1) begin
      counter_out <= #1 counter_out + 1;
    end
    if (counter_out == 4'b1111) begin
      overflow_out <= #1 1'b1;
    end
  end
endmodule
"""


def node_of(tree, node_type, predicate=lambda n: True):
    return next(n for n in tree.walk() if isinstance(n, node_type) and predicate(n))


class TestMotivatingExample:
    """Reproduces the paper's §2/§3.1 walkthrough on the faulty counter."""

    def test_overflow_assignment_implicated(self):
        tree = parse(COUNTER)
        result = localize_faults(tree, {"overflow_out"})
        assign = node_of(
            tree,
            ast.NonBlockingAssign,
            lambda n: isinstance(n.lhs, ast.Identifier) and n.lhs.name == "overflow_out",
        )
        assert assign.node_id in result.nodes

    def test_wrapping_if_implicated_by_impl_ctrl(self):
        tree = parse(COUNTER)
        result = localize_faults(tree, {"overflow_out"})
        guard = node_of(
            tree,
            ast.If,
            lambda n: "counter_out" in {i.name for i in n.cond.walk() if isinstance(i, ast.Identifier)},
        )
        assert guard.node_id in result.nodes

    def test_counter_out_joins_mismatch_by_add_child(self):
        tree = parse(COUNTER)
        result = localize_faults(tree, {"overflow_out"})
        assert "counter_out" in result.mismatch

    def test_transitive_closure_reaches_counter_assignments(self):
        tree = parse(COUNTER)
        result = localize_faults(tree, {"overflow_out"})
        incr = node_of(
            tree,
            ast.NonBlockingAssign,
            lambda n: isinstance(n.rhs, ast.BinaryOp),
        )
        assert incr.node_id in result.nodes

    def test_children_of_implicated_nodes_included(self):
        tree = parse(COUNTER)
        result = localize_faults(tree, {"overflow_out"})
        assign = node_of(
            tree,
            ast.NonBlockingAssign,
            lambda n: isinstance(n.lhs, ast.Identifier) and n.lhs.name == "overflow_out",
        )
        for child in assign.walk():
            assert child.node_id in result.nodes


class TestAlgorithmProperties:
    def test_empty_mismatch_empty_set(self):
        tree = parse(COUNTER)
        result = localize_faults(tree, set())
        assert result.nodes == set()

    def test_unknown_name_produces_nothing(self):
        tree = parse(COUNTER)
        result = localize_faults(tree, {"no_such_wire"})
        assert result.nodes == set()

    def test_fixed_point_terminates(self):
        tree = parse(COUNTER)
        result = localize_faults(tree, {"overflow_out", "counter_out"})
        assert result.iterations <= 64

    def test_monotone_in_mismatch_set(self):
        tree = parse(COUNTER)
        small = localize_faults(tree, {"overflow_out"})
        large = localize_faults(tree, {"overflow_out", "counter_out"})
        assert small.nodes <= large.nodes

    def test_continuous_assign_impl_data(self):
        tree = parse(
            "module m(o); output o; wire o; wire a; assign o = a; endmodule"
        )
        result = localize_faults(tree, {"o"})
        assign = node_of(tree, ast.ContinuousAssign)
        assert assign.node_id in result.nodes
        assert "a" in result.mismatch

    def test_case_statement_implicated(self):
        tree = parse(
            """
            module m(s, o);
              input [1:0] s;
              output reg o;
              always @(*) case (s) 2'b00 : o = 1; default : o = 0; endcase
            endmodule
            """
        )
        result = localize_faults(tree, {"o"})
        case = node_of(tree, ast.Case)
        assert case.node_id in result.nodes

    def test_part_select_lhs_implicated(self):
        tree = parse(
            "module m; reg [7:0] r; always @(*) r[3:0] = 4'b0; endmodule"
        )
        result = localize_faults(tree, {"r"})
        assign = node_of(tree, ast.BlockingAssign)
        assert assign.node_id in result.nodes

    def test_concat_lhs_implicated(self):
        tree = parse("module m; reg a, b; always @(*) {a, b} = 2'b01; endmodule")
        result = localize_faults(tree, {"b"})
        assign = node_of(tree, ast.BlockingAssign)
        assert assign.node_id in result.nodes

    def test_uniform_ranking_is_a_set(self):
        tree = parse(COUNTER)
        result = localize_faults(tree, {"overflow_out"})
        assert isinstance(result.nodes, set)


class TestFallback:
    def test_all_statement_ids_covers_statements(self):
        tree = parse(COUNTER)
        ids = all_statement_ids(tree)
        for node in tree.walk():
            if isinstance(node, (ast.NonBlockingAssign, ast.If, ast.Block)):
                assert node.node_id in ids

    def test_all_statement_ids_excludes_expressions(self):
        tree = parse(COUNTER)
        ids = all_statement_ids(tree)
        for node in tree.walk():
            if isinstance(node, ast.Identifier):
                assert node.node_id not in ids
