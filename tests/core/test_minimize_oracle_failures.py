"""Failure-path coverage for core/minimize.py and core/oracle.py (ISSUE 3).

The happy paths are exercised throughout the suite; these tests pin the
degenerate inputs the fuzz harness leans on: oracle generation that
cannot produce a usable trace, fitness scoring against empty / all-x /
truncated traces, and patch minimization under tight or hostile budgets.
"""

import pytest

from repro.core.fitness import evaluate_fitness, fitness_score
from repro.core.minimize import ddmin, minimize_patch
from repro.core.oracle import OracleError, degrade_oracle, generate_oracle
from repro.core.patch import Edit, Patch
from repro.hdl import parse
from repro.instrument.trace import SimulationTrace

GOLDEN = """
module dut (clk, q);
  input clk;
  output reg q;
  initial q = 0;
  always @(posedge clk) q <= ~q;
endmodule
"""

RECORDING_TB = """
module tb;
  reg clk;
  wire q;
  dut d0 (.clk(clk), .q(q));
  always #5 clk = ~clk;
  initial begin
    clk = 0;
    #40 $finish;
  end
  always @(negedge clk) $cirfix_record(q);
endmodule
"""

SILENT_TB = """
module tb;
  reg clk;
  wire q;
  dut d0 (.clk(clk), .q(q));
  always #5 clk = ~clk;
  initial begin
    clk = 0;
    #40 $finish;
  end
endmodule
"""

ENDLESS_TB = """
module tb;
  reg clk;
  wire q;
  dut d0 (.clk(clk), .q(q));
  always #5 clk = ~clk;
  initial clk = 0;
  always @(negedge clk) $cirfix_record(q);
endmodule
"""


class TestGenerateOracleFailures:
    def test_good_pair_yields_trace(self):
        trace = generate_oracle(parse(GOLDEN), parse(RECORDING_TB))
        assert len(trace) > 0
        assert trace.variables() == ["q"]

    def test_empty_trace_is_an_error(self):
        with pytest.raises(OracleError, match="empty trace"):
            generate_oracle(parse(GOLDEN), parse(SILENT_TB))

    def test_missing_finish_is_an_error(self):
        with pytest.raises(OracleError, match=r"\$finish"):
            generate_oracle(
                parse(GOLDEN), parse(ENDLESS_TB),
                max_sim_time=200, max_sim_steps=10_000,
            )

    def test_missing_finish_allowed_when_not_required(self):
        trace = generate_oracle(
            parse(GOLDEN), parse(ENDLESS_TB),
            max_sim_time=200, max_sim_steps=10_000, require_finish=False,
        )
        assert len(trace) > 0

    def test_degrade_oracle_drops_rows(self):
        trace = generate_oracle(parse(GOLDEN), parse(RECORDING_TB))
        degraded = degrade_oracle(trace, 0.5)
        assert 0 < len(degraded) < len(trace)


class TestFitnessDegenerateTraces:
    def _trace(self, csv: str) -> SimulationTrace:
        return SimulationTrace.from_csv(csv)

    def test_empty_expected_trace_scores_zero(self):
        empty = SimulationTrace()
        simulated = self._trace("time,q\n5,1\n")
        breakdown = evaluate_fitness(simulated, empty)
        assert breakdown.fitness == 0.0
        assert breakdown.total == 0.0

    def test_all_x_oracle_matches_all_x_candidate(self):
        oracle = self._trace("time,q\n5,x\n15,x\n")
        assert fitness_score(self._trace("time,q\n5,x\n15,x\n"), oracle) == 1.0

    def test_all_x_oracle_penalises_defined_candidate(self):
        oracle = self._trace("time,q\n5,xx\n")
        breakdown = evaluate_fitness(self._trace("time,q\n5,10\n"), oracle)
        assert breakdown.fitness == 0.0
        assert breakdown.xz_positions == 2

    def test_truncated_candidate_rows_score_as_all_x(self):
        oracle = self._trace("time,q\n5,1\n15,0\n25,1\n")
        truncated = self._trace("time,q\n5,1\n")
        breakdown = evaluate_fitness(truncated, oracle)
        full = evaluate_fitness(self._trace("time,q\n5,1\n15,0\n25,1\n"), oracle)
        assert full.fitness == 1.0
        assert breakdown.fitness < full.fitness
        assert breakdown.xz_positions == 2  # the two missing observations

    def test_missing_variable_column_scores_as_all_x(self):
        oracle = self._trace("time,q,r\n5,1,0\n")
        only_q = self._trace("time,q\n5,1\n")
        breakdown = evaluate_fitness(only_q, oracle)
        assert breakdown.xz_positions == 1
        assert breakdown.matches == 1 and breakdown.mismatches == 1
        # the phi-weighted x penalty outweighs the single match: clamped to 0
        assert breakdown.fitness == 0.0 and breakdown.raw_sum < 0


class TestMinimizePatch:
    def _patch(self, n: int) -> Patch:
        return Patch([Edit("delete", target_id=i) for i in range(n)])

    def test_empty_patch_passthrough(self):
        patch = Patch.empty()
        assert minimize_patch(patch, lambda p: True) is patch

    def test_reduces_to_essential_edits(self):
        patch = self._patch(8)

        def is_plausible(candidate: Patch) -> bool:
            targets = {e.target_id for e in candidate.edits}
            return {2, 5} <= targets

        minimized = minimize_patch(patch, is_plausible)
        assert [e.target_id for e in minimized.edits] == [2, 5]

    def test_budget_zero_keeps_input(self):
        patch = self._patch(4)
        minimized = minimize_patch(patch, lambda p: True, max_tests=0)
        assert len(minimized.edits) == 4

    def test_result_is_always_plausible(self):
        patch = self._patch(6)
        probes: list[int] = []

        def is_plausible(candidate: Patch) -> bool:
            probes.append(len(candidate.edits))
            return {e.target_id for e in candidate.edits} >= {0}

        minimized = minimize_patch(patch, is_plausible)
        assert is_plausible(minimized)
        assert all(n > 0 for n in probes)  # the empty patch is never probed
