"""Evaluation-backend tests: splice correctness, serial/pool batch parity,
and cross-backend determinism of whole repair runs.

The parallel backend must be an implementation detail: same scenario, same
seed, same outcome — whether candidates are scored in-process or by a pool
of worker processes.  Simulation *counts* may differ (pool results carry no
traces, so the engine occasionally re-simulates a parent for localization);
everything the search decides on must not.
"""

import pytest

from repro.core import TEST_CONFIG, CirFixEngine, RepairProblem
from repro.core.backend import (
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
    splice_testbench,
)
from repro.core.oracle import combine_sources, ensure_instrumented, generate_oracle
from repro.core.repair import repair
from repro.hdl import generate, parse

GOLDEN_FF = """
module tff(clk, rstn, t, q);
  input clk, rstn, t;
  output q;
  reg q;
  always @(posedge clk) begin
    if (!rstn) q <= 1'b0;
    else begin
      if (t) q <= !q;
      else q <= q;
    end
  end
endmodule
"""

FAULTY_FF = GOLDEN_FF.replace("if (t) q <= !q;", "if (!t) q <= !q;")

TESTBENCH = """
module tb;
  reg clk, rstn, t;
  wire q;
  tff dut(.clk(clk), .rstn(rstn), .t(t), .q(q));
  always #5 clk = !clk;
  initial begin
    clk = 0; rstn = 0; t = 0;
    @(negedge clk);
    rstn = 1; t = 1;
    repeat (4) begin @(negedge clk); end
    t = 0;
    repeat (3) begin @(negedge clk); end
    #5 $finish;
  end
endmodule
"""

BROKEN_TEXT = "module tff(clk); input clk; always @(posedge clk) begin\n"


@pytest.fixture(scope="module")
def problem():
    golden = parse(GOLDEN_FF)
    bench = ensure_instrumented(parse(TESTBENCH), golden)
    oracle = generate_oracle(golden, bench)
    return RepairProblem(parse(FAULTY_FF), bench, oracle, "ff_cond")


class TestSplice:
    def test_splice_matches_combined_parse(self, problem):
        spliced = splice_testbench(parse(FAULTY_FF), problem.testbench)
        combined = combine_sources(parse(FAULTY_FF), problem.testbench)
        assert generate(spliced) == generate(combined)

    def test_splice_does_not_mutate_testbench(self, problem):
        before = generate(problem.testbench)
        splice_testbench(parse(FAULTY_FF), problem.testbench)
        splice_testbench(parse(GOLDEN_FF), problem.testbench)
        assert generate(problem.testbench) == before

    def test_spliced_node_ids_unique(self, problem):
        spliced = splice_testbench(parse(FAULTY_FF), problem.testbench)
        ids = [n.node_id for n in spliced.walk()]
        assert len(ids) == len(set(ids))


class TestBatchParity:
    def test_serial_and_pool_agree(self, problem):
        texts = [generate(problem.design), GOLDEN_FF, BROKEN_TEXT, FAULTY_FF]
        serial = SerialBackend.for_problem(problem, TEST_CONFIG)
        pool = ProcessPoolBackend.for_problem(problem, TEST_CONFIG, workers=2)
        try:
            serial_results = serial.evaluate_batch(texts)
            pool_results = pool.evaluate_batch(texts)
        finally:
            serial.close()
            pool.close()
        assert len(serial_results) == len(pool_results) == len(texts)
        for s, p in zip(serial_results, pool_results):
            assert s.compiled == p.compiled
            assert s.fitness == p.fitness
            assert s.summary == p.summary
            assert p.trace is None  # pool results are trace-stripped

    def test_batch_flags_uncompilable(self, problem):
        backend = SerialBackend.for_problem(problem, TEST_CONFIG)
        (result,) = backend.evaluate_batch([BROKEN_TEXT])
        assert not result.compiled
        assert result.fitness == 0.0

    def test_make_backend_serial_for_one_worker(self, problem):
        backend = make_backend(problem, TEST_CONFIG)
        try:
            assert isinstance(backend, SerialBackend)
        finally:
            backend.close()
        pool = make_backend(problem, TEST_CONFIG.scaled(workers=2))
        try:
            assert isinstance(pool, ProcessPoolBackend)
        finally:
            pool.close()

    def test_make_backend_unknown_name_lists_valid_backends(self, problem):
        with pytest.raises(ValueError) as excinfo:
            make_backend(problem, TEST_CONFIG.scaled(backend="gpu"))
        message = str(excinfo.value)
        assert "'gpu'" in message
        for name in ("auto", "serial", "process"):
            assert name in message

    def test_repair_unknown_backend_lists_valid_backends(self, problem):
        with pytest.raises(ValueError, match="valid backends: auto, serial, process"):
            repair(problem, TEST_CONFIG.scaled(backend="cluster"))


class TestCrossBackendDeterminism:
    def _outcome(self, problem, backend):
        config = TEST_CONFIG.scaled(max_generations=4)
        engine = CirFixEngine(problem, config, seed=0, backend=backend)
        return engine.run()

    def test_engine_outcome_identical(self, problem):
        serial = self._outcome(problem, None)
        pool_backend = ProcessPoolBackend.for_problem(
            problem, TEST_CONFIG.scaled(max_generations=4), workers=4
        )
        try:
            pooled = self._outcome(problem, pool_backend)
        finally:
            pool_backend.close()
        assert serial.plausible == pooled.plausible
        assert serial.fitness == pooled.fitness
        assert serial.generations == pooled.generations
        assert serial.best_fitness_history == pooled.best_fitness_history
        assert serial.patch.describe() == pooled.patch.describe()
        assert serial.repaired_source == pooled.repaired_source

    def test_repair_parallel_trials_match_serial(self, problem):
        config = TEST_CONFIG.scaled(max_generations=3)
        serial = repair(problem, config, seeds=(0, 1))
        pooled = repair(problem, config.scaled(workers=2), seeds=(0, 1))
        assert serial.plausible == pooled.plausible
        assert serial.fitness == pooled.fitness
        assert serial.seed == pooled.seed
        assert serial.patch.describe() == pooled.patch.describe()
        assert serial.repaired_source == pooled.repaired_source
