"""Evaluation-backend tests: splice correctness, serial/pool batch parity,
supervised fault recovery, and cross-backend determinism of whole repair
runs.

The parallel backend must be an implementation detail: same scenario, same
seed, same outcome — whether candidates are scored in-process or by a pool
of worker processes.  Simulation *counts* may differ (pool results carry no
traces, so the engine occasionally re-simulates a parent for localization);
everything the search decides on must not.  And under deliberately planted
faults (hangs, hard exits, memory balloons — the chaos plan), the pool must
quarantine exactly the poisoned candidates and keep going.
"""

import logging
import re

import pytest

from repro.core import TEST_CONFIG, CirFixEngine, RepairProblem
from repro.core.backend import (
    EvalFailure,
    ProcessPoolBackend,
    SerialBackend,
    evaluate_design_text,
    make_backend,
    parse_chaos_spec,
    splice_testbench,
)
from repro.core.oracle import combine_sources, ensure_instrumented, generate_oracle
from repro.core.repair import repair
from repro.fuzz.faults import plant_eval_chaos
from repro.hdl import generate, parse

GOLDEN_FF = """
module tff(clk, rstn, t, q);
  input clk, rstn, t;
  output q;
  reg q;
  always @(posedge clk) begin
    if (!rstn) q <= 1'b0;
    else begin
      if (t) q <= !q;
      else q <= q;
    end
  end
endmodule
"""

FAULTY_FF = GOLDEN_FF.replace("if (t) q <= !q;", "if (!t) q <= !q;")

TESTBENCH = """
module tb;
  reg clk, rstn, t;
  wire q;
  tff dut(.clk(clk), .rstn(rstn), .t(t), .q(q));
  always #5 clk = !clk;
  initial begin
    clk = 0; rstn = 0; t = 0;
    @(negedge clk);
    rstn = 1; t = 1;
    repeat (4) begin @(negedge clk); end
    t = 0;
    repeat (3) begin @(negedge clk); end
    #5 $finish;
  end
endmodule
"""

BROKEN_TEXT = "module tff(clk); input clk; always @(posedge clk) begin\n"


@pytest.fixture(scope="module")
def problem():
    golden = parse(GOLDEN_FF)
    bench = ensure_instrumented(parse(TESTBENCH), golden)
    oracle = generate_oracle(golden, bench)
    return RepairProblem(parse(FAULTY_FF), bench, oracle, "ff_cond")


class TestSplice:
    def test_splice_matches_combined_parse(self, problem):
        spliced = splice_testbench(parse(FAULTY_FF), problem.testbench)
        combined = combine_sources(parse(FAULTY_FF), problem.testbench)
        assert generate(spliced) == generate(combined)

    def test_splice_does_not_mutate_testbench(self, problem):
        before = generate(problem.testbench)
        splice_testbench(parse(FAULTY_FF), problem.testbench)
        splice_testbench(parse(GOLDEN_FF), problem.testbench)
        assert generate(problem.testbench) == before

    def test_spliced_node_ids_unique(self, problem):
        spliced = splice_testbench(parse(FAULTY_FF), problem.testbench)
        ids = [n.node_id for n in spliced.walk()]
        assert len(ids) == len(set(ids))


class TestBatchParity:
    def test_serial_and_pool_agree(self, problem):
        texts = [generate(problem.design), GOLDEN_FF, BROKEN_TEXT, FAULTY_FF]
        serial = SerialBackend.for_problem(problem, TEST_CONFIG)
        pool = ProcessPoolBackend.for_problem(problem, TEST_CONFIG, workers=2)
        try:
            serial_results = serial.evaluate_batch(texts)
            pool_results = pool.evaluate_batch(texts)
        finally:
            serial.close()
            pool.close()
        assert len(serial_results) == len(pool_results) == len(texts)
        for s, p in zip(serial_results, pool_results):
            assert s.compiled == p.compiled
            assert s.fitness == p.fitness
            assert s.summary == p.summary
            assert p.trace is None  # pool results are trace-stripped

    def test_batch_flags_uncompilable(self, problem):
        backend = SerialBackend.for_problem(problem, TEST_CONFIG)
        (result,) = backend.evaluate_batch([BROKEN_TEXT])
        assert not result.compiled
        assert result.fitness == 0.0

    def test_make_backend_serial_for_one_worker(self, problem):
        backend = make_backend(problem, TEST_CONFIG)
        try:
            assert isinstance(backend, SerialBackend)
        finally:
            backend.close()
        pool = make_backend(problem, TEST_CONFIG.scaled(workers=2))
        try:
            assert isinstance(pool, ProcessPoolBackend)
        finally:
            pool.close()

    def test_make_backend_unknown_name_lists_valid_backends(self, problem):
        with pytest.raises(ValueError) as excinfo:
            make_backend(problem, TEST_CONFIG.scaled(backend="gpu"))
        message = str(excinfo.value)
        assert "'gpu'" in message
        for name in ("auto", "serial", "process"):
            assert name in message

    def test_repair_unknown_backend_lists_valid_backends(self, problem):
        with pytest.raises(ValueError, match="valid backends: auto, serial, process"):
            repair(problem, TEST_CONFIG.scaled(backend="cluster"))


#: Supervision-friendly config: short deadline, capped worker memory.
SUPERVISED = TEST_CONFIG.scaled(
    eval_deadline_seconds=5.0, eval_max_retries=0, worker_mem_mb=512
)


class TestChaosSpec:
    def test_parse_spec(self):
        assert parse_chaos_spec("hang@3, exit@7:once") == {
            3: ("hang", False),
            7: ("exit", True),
        }

    def test_parse_spec_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="bad chaos spec"):
            parse_chaos_spec("segfault@1")

    def test_parse_spec_rejects_missing_ordinal(self):
        with pytest.raises(ValueError, match="bad chaos spec"):
            parse_chaos_spec("hang")

    @pytest.mark.parametrize(
        "entry",
        [
            "hang@",  # empty ordinal
            "exit@5:twice",  # unknown suffix (only :once is valid)
            "hang@1_0",  # int() would silently read 10
            "hang@-1",  # negative ordinals are not dispatch positions
            "hang@ 3",  # int() would silently strip the space
            "exit@+2",  # explicit sign is not a decimal digit
            "balloon@2.0",  # not an integer
        ],
    )
    def test_parse_spec_rejects_malformed_ordinal(self, entry):
        """Malformed ordinals raise ValueError naming the offending entry."""
        with pytest.raises(ValueError, match=re.escape(repr(entry))):
            parse_chaos_spec(f"hang@1,{entry}")

    def test_parse_spec_accepts_plain_decimal_ordinals_only(self):
        assert parse_chaos_spec("balloon@10") == {10: ("balloon", False)}

    def test_plant_eval_chaos_rejects_malformed_spec(self):
        """The context manager validates eagerly, before planting anything."""
        with pytest.raises(ValueError, match=re.escape(repr("hang@"))):
            with plant_eval_chaos("hang@"):
                pass  # pragma: no cover - must not be reached
        with pytest.raises(ValueError, match=re.escape(repr("exit@5:twice"))):
            with plant_eval_chaos("exit@5:twice"):
                pass  # pragma: no cover - must not be reached

    def test_env_spec_malformed_is_ignored(self, problem, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_EVAL_CHAOS", "not a spec")
        with caplog.at_level(logging.WARNING, logger="repro.repair"):
            with ProcessPoolBackend.for_problem(problem, SUPERVISED, workers=1) as pool:
                assert pool._chaos_plan == {}
        assert any("REPRO_EVAL_CHAOS" in r.message for r in caplog.records)

    def test_env_spec_plants_faults(self, problem, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_CHAOS", "exit@0")
        with ProcessPoolBackend.for_problem(problem, SUPERVISED, workers=1) as pool:
            (result,) = pool.evaluate_batch([GOLDEN_FF])
        assert result.failure == EvalFailure("crash", 1)


class TestSupervisedPool:
    def test_hang_quarantined_as_timeout(self, problem):
        config = SUPERVISED.scaled(eval_deadline_seconds=1.0)
        with plant_eval_chaos("hang@0"):
            with ProcessPoolBackend.for_problem(problem, config, workers=2) as pool:
                results = pool.evaluate_batch([BROKEN_TEXT, GOLDEN_FF, FAULTY_FF])
        assert results[0].failure == EvalFailure("timeout", 1)
        assert results[0].fitness == 0.0 and not results[0].compiled
        # The rest of the batch is unaffected by the poisoned slot.
        assert results[1].compiled and results[1].failure is None
        assert results[2].compiled and results[2].failure is None

    def test_hard_exit_retried_then_quarantined(self, problem):
        config = SUPERVISED.scaled(eval_max_retries=1)
        with plant_eval_chaos("exit@1"):
            with ProcessPoolBackend.for_problem(problem, config, workers=2) as pool:
                results = pool.evaluate_batch([GOLDEN_FF, FAULTY_FF])
                incidents = pool.take_incidents()
        assert results[0].failure is None
        assert results[1].failure == EvalFailure("crash", 2)
        kinds = [(i.kind, i.quarantined) for i in incidents]
        assert kinds == [("crash", False), ("crash", True)]
        assert incidents[0].exitcode == 43  # the planted os._exit(43)

    def test_balloon_quarantined_as_oom(self, problem):
        # A small RLIMIT_AS cap so the balloon trips it quickly, and a
        # roomy deadline so slow hosts classify this as oom, not timeout.
        config = SUPERVISED.scaled(eval_deadline_seconds=60.0, worker_mem_mb=192)
        with plant_eval_chaos("balloon@0"):
            with ProcessPoolBackend.for_problem(problem, config, workers=2) as pool:
                results = pool.evaluate_batch([GOLDEN_FF, FAULTY_FF])
        assert results[0].failure == EvalFailure("oom", 1)
        assert results[1].failure is None and results[1].compiled

    def test_once_fault_recovers_on_retry(self, problem):
        config = SUPERVISED.scaled(eval_max_retries=1)
        with SerialBackend.for_problem(problem, config) as serial:
            (expected,) = serial.evaluate_batch([GOLDEN_FF])
        with plant_eval_chaos("exit@0:once"):
            with ProcessPoolBackend.for_problem(problem, config, workers=2) as pool:
                (result,) = pool.evaluate_batch([GOLDEN_FF])
                incidents = pool.take_incidents()
        # First attempt died, the requeued retry produced the real score.
        assert result.failure is None
        assert result.fitness == expected.fitness
        assert result.summary == expected.summary
        assert [(i.kind, i.quarantined) for i in incidents] == [("crash", False)]

    def test_pool_keeps_working_after_respawn(self, problem):
        with plant_eval_chaos("exit@0"):
            with ProcessPoolBackend.for_problem(problem, SUPERVISED, workers=2) as pool:
                first = pool.evaluate_batch([GOLDEN_FF, FAULTY_FF])
                assert first[0].failure is not None
                # The respawned worker serves later batches normally.
                second = pool.evaluate_batch([GOLDEN_FF, BROKEN_TEXT, FAULTY_FF])
        assert [r.failure for r in second] == [None, None, None]
        assert second[0].compiled and not second[1].compiled

    def test_take_incidents_drains(self, problem):
        with plant_eval_chaos("exit@0"):
            with ProcessPoolBackend.for_problem(problem, SUPERVISED, workers=2) as pool:
                pool.evaluate_batch([GOLDEN_FF])
                assert len(pool.take_incidents()) == 1
                assert pool.take_incidents() == []

    def test_no_chaos_no_incidents_bitwise_parity(self, problem):
        texts = [generate(problem.design), GOLDEN_FF, BROKEN_TEXT, FAULTY_FF]
        with SerialBackend.for_problem(problem, SUPERVISED) as serial:
            expected = serial.evaluate_batch(texts)
        with ProcessPoolBackend.for_problem(problem, SUPERVISED, workers=2) as pool:
            results = pool.evaluate_batch(texts)
            assert pool.take_incidents() == []
        for s, p in zip(expected, results):
            assert (s.fitness, s.compiled, s.summary, s.breakdown) == (
                p.fitness, p.compiled, p.summary, p.breakdown
            )
            assert p.failure is None

    def test_empty_batch(self, problem):
        with ProcessPoolBackend.for_problem(problem, SUPERVISED, workers=2) as pool:
            assert pool.evaluate_batch([]) == []


class TestBackendLifecycle:
    def test_serial_context_manager(self, problem):
        with SerialBackend.for_problem(problem, TEST_CONFIG) as backend:
            (result,) = backend.evaluate_batch([GOLDEN_FF])
        assert result.compiled
        assert backend.take_incidents() == []

    def test_pool_context_manager_reaps_workers(self, problem):
        with ProcessPoolBackend.for_problem(problem, TEST_CONFIG, workers=2) as pool:
            processes = [worker.process for worker in pool._workers]
            assert pool.evaluate_batch([GOLDEN_FF])[0].compiled
        for process in processes:
            assert not process.is_alive()

    def test_pool_close_idempotent_and_use_after_close(self, problem):
        pool = ProcessPoolBackend.for_problem(problem, TEST_CONFIG, workers=1)
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError, match="after close"):
            pool.evaluate_batch([GOLDEN_FF])


class TestNeverRaises:
    def test_fitness_crash_scores_zero(self, problem, monkeypatch):
        import repro.core.backend as backend_mod

        def boom(trace, oracle, phi):
            raise RuntimeError("fitness scoring blew up")

        monkeypatch.setattr(backend_mod, "evaluate_fitness", boom)
        result = evaluate_design_text(
            GOLDEN_FF, problem.testbench, problem.oracle, TEST_CONFIG
        )
        assert result.compiled  # the simulation itself succeeded
        assert result.fitness == 0.0
        assert result.breakdown is None and result.summary is None
        assert result.sim_steps > 0  # sim counters survive the guard

    def test_trace_decode_crash_scores_zero(self, problem, monkeypatch):
        import repro.core.backend as backend_mod

        def boom(records):
            raise ValueError("degenerate recorded value")

        monkeypatch.setattr(backend_mod.SimulationTrace, "from_records", boom)
        result = evaluate_design_text(
            GOLDEN_FF, problem.testbench, problem.oracle, TEST_CONFIG
        )
        assert result.compiled and result.fitness == 0.0

    def test_parse_memory_error_scores_zero(self, problem, monkeypatch):
        import repro.core.backend as backend_mod

        def boom(text):
            raise MemoryError

        monkeypatch.setattr(backend_mod, "parse", boom)
        result = evaluate_design_text(
            GOLDEN_FF, problem.testbench, problem.oracle, TEST_CONFIG
        )
        assert not result.compiled
        assert result.fitness == 0.0


class TestMakeBackendDegraded:
    def test_daemonic_process_falls_back_to_serial(self, problem, monkeypatch, caplog):
        import repro.core.backend as backend_mod

        class FakeDaemon:
            daemon = True

        monkeypatch.setattr(
            backend_mod.multiprocessing, "current_process", lambda: FakeDaemon()
        )
        with caplog.at_level(logging.WARNING, logger="repro.repair"):
            with make_backend(problem, TEST_CONFIG.scaled(workers=2)) as backend:
                assert isinstance(backend, SerialBackend)
        assert any("worker process" in r.message for r in caplog.records)

    def test_pool_creation_failure_falls_back_to_serial(
        self, problem, monkeypatch, caplog
    ):
        import repro.core.backend as backend_mod

        def boom(problem, config, workers=None):
            raise OSError("cannot fork")

        monkeypatch.setattr(
            backend_mod.ProcessPoolBackend, "for_problem", staticmethod(boom)
        )
        with caplog.at_level(logging.WARNING, logger="repro.repair"):
            with make_backend(problem, TEST_CONFIG.scaled(workers=2)) as backend:
                assert isinstance(backend, SerialBackend)
                assert backend.evaluate_batch([GOLDEN_FF])[0].compiled
        assert any("falling back to serial" in r.message for r in caplog.records)


class TestCrossBackendDeterminism:
    def _outcome(self, problem, backend):
        config = TEST_CONFIG.scaled(max_generations=4)
        engine = CirFixEngine(problem, config, seed=0, backend=backend)
        return engine.run()

    def test_engine_outcome_identical(self, problem):
        serial = self._outcome(problem, None)
        pool_backend = ProcessPoolBackend.for_problem(
            problem, TEST_CONFIG.scaled(max_generations=4), workers=4
        )
        try:
            pooled = self._outcome(problem, pool_backend)
        finally:
            pool_backend.close()
        assert serial.plausible == pooled.plausible
        assert serial.fitness == pooled.fitness
        assert serial.generations == pooled.generations
        assert serial.best_fitness_history == pooled.best_fitness_history
        assert serial.patch.describe() == pooled.patch.describe()
        assert serial.repaired_source == pooled.repaired_source

    def test_repair_parallel_trials_match_serial(self, problem):
        config = TEST_CONFIG.scaled(max_generations=3)
        serial = repair(problem, config, seeds=(0, 1))
        pooled = repair(problem, config.scaled(workers=2), seeds=(0, 1))
        assert serial.plausible == pooled.plausible
        assert serial.fitness == pooled.fitness
        assert serial.seed == pooled.seed
        assert serial.patch.describe() == pooled.patch.describe()
        assert serial.repaired_source == pooled.repaired_source
