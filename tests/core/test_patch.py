"""Patch representation tests: application, staleness, fresh-id stability."""

from repro.core.patch import Edit, Patch
from repro.hdl import ast, generate, parse

SRC = """
module m;
  reg [3:0] a;
  reg [3:0] b;
  always @(posedge clk) begin
    a <= 4'd1;
    b <= 4'd2;
  end
endmodule
"""


def base():
    return parse(SRC)


def nba(tree, index):
    return [n for n in tree.walk() if isinstance(n, ast.NonBlockingAssign)][index]


class TestApply:
    def test_empty_patch_is_identity(self):
        tree = base()
        assert generate(Patch.empty().apply(tree)) == generate(tree)

    def test_apply_does_not_mutate_base(self):
        tree = base()
        target = nba(tree, 0)
        Patch([Edit("delete", target.node_id)]).apply(tree)
        assert tree.find(target.node_id) is not None

    def test_delete_statement_becomes_null(self):
        tree = base()
        target = nba(tree, 0)
        patched = Patch([Edit("delete", target.node_id)]).apply(tree)
        assert "a <= 4'd1;" not in generate(patched)

    def test_replace(self):
        tree = base()
        target = nba(tree, 0)
        donor = nba(tree, 1)
        patched = Patch([Edit("replace", target.node_id, donor.clone())]).apply(tree)
        assert generate(patched).count("b <= 4'd2;") == 2

    def test_insert_after(self):
        tree = base()
        anchor = nba(tree, 1)
        donor = nba(tree, 0)
        patched = Patch([Edit("insert_after", anchor.node_id, donor.clone())]).apply(tree)
        text = generate(patched)
        assert text.count("a <= 4'd1;") == 2
        assert text.index("b <= 4'd2;") < text.rindex("a <= 4'd1;")

    def test_template_edit(self):
        tree = base()
        number = next(
            n for n in tree.walk() if isinstance(n, ast.Number) and n.text == "4'd1"
        )
        patched = Patch(
            [Edit("template", number.node_id, template="increment_by_one")]
        ).apply(tree)
        assert "4'd2" in generate(patched)

    def test_stale_edit_skipped(self):
        tree = base()
        target = nba(tree, 0)
        patch = Patch(
            [
                Edit("delete", target.node_id),
                Edit("replace", target.node_id, nba(tree, 1).clone()),  # stale
            ]
        )
        patched = patch.apply(tree)
        assert "a <= 4'd1;" not in generate(patched)

    def test_unknown_target_skipped(self):
        tree = base()
        patched = Patch([Edit("delete", 10**9)]).apply(tree)
        assert generate(patched) == generate(tree)


class TestIdStability:
    def test_existing_ids_preserved(self):
        tree = base()
        target = nba(tree, 0)
        donor = nba(tree, 1)
        patched = Patch([Edit("insert_after", target.node_id, donor.clone())]).apply(tree)
        assert patched.find(target.node_id) is not None
        assert patched.find(donor.node_id) is not None

    def test_inserted_nodes_get_fresh_ids(self):
        tree = base()
        max_id = max(n.node_id for n in tree.walk())
        target = nba(tree, 0)
        patched = Patch(
            [Edit("insert_after", target.node_id, nba(tree, 1).clone())]
        ).apply(tree)
        fresh = [n.node_id for n in patched.walk() if n.node_id > max_id]
        assert fresh  # the inserted copy
        assert len(set(fresh)) == len(fresh)  # no collisions

    def test_two_applications_identical(self):
        tree = base()
        target = nba(tree, 0)
        patch = Patch([Edit("insert_after", target.node_id, nba(tree, 1).clone())])
        first = patch.apply(tree)
        second = patch.apply(tree)
        assert generate(first) == generate(second)
        assert [n.node_id for n in first.walk()] == [n.node_id for n in second.walk()]

    def test_edit_can_target_earlier_insertion(self):
        tree = base()
        target = nba(tree, 0)
        patch1 = Patch([Edit("insert_after", target.node_id, nba(tree, 1).clone())])
        tree1 = patch1.apply(tree)
        inserted = [
            n
            for n in tree1.walk()
            if isinstance(n, ast.Number) and n.node_id > 10_000 and n.text == "4'd2"
        ][0]
        patch2 = patch1.extended(
            Edit("template", inserted.node_id, template="increment_by_one")
        )
        assert "4'd3" in generate(patch2.apply(tree))


class TestValueSemantics:
    def test_extended_returns_new_patch(self):
        p1 = Patch.empty()
        p2 = p1.extended(Edit("delete", 1))
        assert len(p1) == 0
        assert len(p2) == 1

    def test_subset(self):
        patch = Patch([Edit("delete", 1), Edit("delete", 2), Edit("delete", 3)])
        assert [e.target_id for e in patch.subset([0, 2]).edits] == [1, 3]

    def test_describe(self):
        assert Patch.empty().describe() == "<original>"
        patch = Patch([Edit("template", 5, template="negate_conditional")])
        assert "negate_conditional" in patch.describe()
