"""Extended (future-work) template tests."""

from repro.core.patch import Edit, Patch
from repro.core.templates_ext import (
    EXTENDED_TEMPLATES,
    applicable_extended,
    apply_extended,
    extra_candidates,
)
from repro.hdl import ast, generate, parse

SRC = """
module m;
  reg [7:0] counter;
  reg flag;
  always @(posedge clk) begin
    if (counter == 8'd200) begin
      flag <= 1'b1;
    end
    else begin
      flag <= 1'b0;
    end
    counter <= counter + 1;
  end
endmodule
"""


def tree():
    return parse(SRC)


def find(t, node_type, predicate=lambda n: True):
    return next(n for n in t.walk() if isinstance(n, node_type) and predicate(n))


class TestApplicability:
    def test_four_extension_templates(self):
        assert len(EXTENDED_TEMPLATES) == 4

    def test_swap_needs_else(self):
        t = tree()
        if_node = find(t, ast.If)
        assert "swap_if_branches" in applicable_extended(if_node)
        t2 = parse("module m; reg r; always @(*) if (r) r = 0; endmodule")
        lone_if = find(t2, ast.If)
        assert "swap_if_branches" not in applicable_extended(lone_if)

    def test_widen_needs_vector_decl(self):
        t = tree()
        vector = find(t, ast.Decl, lambda d: d.name == "counter")
        scalar = find(t, ast.Decl, lambda d: d.name == "flag")
        assert "widen_register" in applicable_extended(vector)
        assert "widen_register" not in applicable_extended(scalar)

    def test_negate_equality_on_comparison(self):
        t = tree()
        cmp_node = find(t, ast.BinaryOp, lambda n: n.op == "==")
        assert "negate_equality" in applicable_extended(cmp_node)


class TestApplication:
    def test_swap_if_branches(self):
        t = tree()
        if_node = find(t, ast.If)
        assert apply_extended("swap_if_branches", t, if_node.node_id, 90_000)
        text = generate(t)
        assert text.index("flag <= 1'b0;") < text.index("flag <= 1'b1;")

    def test_widen_register_doubles_width(self):
        t = tree()
        decl = find(t, ast.Decl, lambda d: d.name == "counter")
        assert apply_extended("widen_register", t, decl.node_id, 90_000)
        assert "reg [15:0] counter;" in generate(t)

    def test_zero_assignment_duplicates_with_zero(self):
        t = tree()
        nba = find(t, ast.NonBlockingAssign, lambda n: isinstance(n.rhs, ast.BinaryOp))
        assert apply_extended("zero_assignment", t, nba.node_id, 90_000)
        assert "counter <= 0;" in generate(t)

    def test_negate_equality_flips(self):
        t = tree()
        cmp_node = find(t, ast.BinaryOp, lambda n: n.op == "==")
        assert apply_extended("negate_equality", t, cmp_node.node_id, 90_000)
        assert "!=" in generate(t)

    def test_dispatch_through_core_apply_template(self):
        from repro.core.templates import apply_template

        t = tree()
        if_node = find(t, ast.If)
        assert apply_template("swap_if_branches", t, if_node.node_id, 90_000)

    def test_patch_edit_integration(self):
        t = tree()
        decl = find(t, ast.Decl, lambda d: d.name == "counter")
        patch = Patch([Edit("template", decl.node_id, template="widen_register")])
        assert "[15:0]" in generate(patch.apply(t))

    def test_results_reparse(self):
        for name in EXTENDED_TEMPLATES:
            t = tree()
            for node in list(t.walk()):
                if name in applicable_extended(node) and node.node_id:
                    assert apply_extended(name, t, node.node_id, 90_000)
                    parse(generate(t))
                    break


class TestExtraCandidates:
    def test_decl_of_implicated_identifier_targeted(self):
        t = tree()
        # Implicate the counter increment assignment.
        nba = find(t, ast.NonBlockingAssign, lambda n: isinstance(n.rhs, ast.BinaryOp))
        fault_ids = {n.node_id for n in nba.walk()}
        candidates = extra_candidates(t, fault_ids)
        decl = find(t, ast.Decl, lambda d: d.name == "counter")
        assert (decl.node_id, "widen_register") in candidates

    def test_unrelated_decls_not_targeted(self):
        t = tree()
        candidates = extra_candidates(t, set())
        assert candidates == []
