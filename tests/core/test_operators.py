"""GP operator tests: mutation sub-operators, templates, crossover."""

import random

from repro.core.faultloc import all_statement_ids
from repro.core.operators import apply_fix_pattern, crossover, mutate
from repro.core.patch import Edit, Patch
from repro.hdl import ast, generate, parse

SRC = """
module m;
  reg [3:0] a;
  reg [3:0] b;
  always @(posedge clk) begin
    if (a == 4'd3) begin
      b <= 4'd1;
    end
    a <= a + 1;
  end
  initial begin
    a = 0;
    b = 0;
  end
endmodule
"""


def setup():
    tree = parse(SRC)
    return tree, all_statement_ids(tree)


class TestMutate:
    def test_delete_branch(self):
        tree, faults = setup()
        rng = random.Random(0)
        child = mutate(Patch.empty(), tree, faults, rng, delete_threshold=1.0)
        assert len(child) == 1
        assert child.edits[0].kind == "delete"

    def test_insert_branch(self):
        tree, faults = setup()
        rng = random.Random(0)
        child = mutate(
            Patch.empty(), tree, faults, rng, delete_threshold=0.0, insert_threshold=1.0
        )
        assert child.edits[0].kind == "insert_after"

    def test_replace_branch(self):
        tree, faults = setup()
        rng = random.Random(0)
        child = mutate(
            Patch.empty(), tree, faults, rng, delete_threshold=0.0, insert_threshold=0.0
        )
        assert child.edits and child.edits[0].kind == "replace"

    def test_mutation_result_parses(self):
        tree, faults = setup()
        rng = random.Random(7)
        for _ in range(30):
            child = mutate(Patch.empty(), tree, faults, rng)
            generate(child.apply(tree))  # must render

    def test_no_targets_returns_parent(self):
        tree, _ = setup()
        rng = random.Random(0)
        parent = Patch.empty()
        child = mutate(parent, tree, set(), rng, delete_threshold=1.0)
        assert child is parent

    def test_delete_targets_only_fault_space(self):
        tree, _ = setup()
        if_node = next(n for n in tree.walk() if isinstance(n, ast.If))
        faults = {if_node.node_id}
        rng = random.Random(0)
        for _ in range(10):
            child = mutate(Patch.empty(), tree, faults, rng, delete_threshold=1.0)
            assert child.edits[0].target_id == if_node.node_id


class TestFixPattern:
    def test_applies_a_template_edit(self):
        tree, faults = setup()
        rng = random.Random(1)
        child = apply_fix_pattern(Patch.empty(), tree, faults, rng)
        assert len(child) == 1
        assert child.edits[0].kind == "template"

    def test_sensitivity_targets_offered_for_faulty_always(self):
        tree, _ = setup()
        nba = next(n for n in tree.walk() if isinstance(n, ast.NonBlockingAssign))
        rng = random.Random(3)
        seen_kinds = set()
        for _ in range(60):
            child = apply_fix_pattern(Patch.empty(), tree, {nba.node_id}, rng)
            if child.edits:
                seen_kinds.add(child.edits[0].template)
        assert any(t and t.startswith("sens_") for t in seen_kinds)

    def test_no_candidates_returns_parent(self):
        tree, _ = setup()
        rng = random.Random(0)
        parent = Patch.empty()
        # Fault set with only a Block node: no applicable templates and no
        # always block containing it... use an empty fault set on a
        # template-free module.
        bare = parse("module m; wire w; assign w = 1'b0; endmodule")
        child = apply_fix_pattern(parent, bare, set(), rng)
        assert child is parent


class TestCrossover:
    def test_offspring_carry_both_parents(self):
        rng = random.Random(0)
        p1 = Patch([Edit("delete", 1), Edit("delete", 2)])
        p2 = Patch([Edit("delete", 10), Edit("delete", 20)])
        seen = set()
        for _ in range(40):
            c1, c2 = crossover(p1, p2, rng)
            seen.add(tuple(e.target_id for e in c1.edits))
            seen.add(tuple(e.target_id for e in c2.edits))
        # Some offspring must mix genetic material from both parents.
        assert any(
            any(t < 10 for t in combo) and any(t >= 10 for t in combo)
            for combo in seen
            if combo
        )

    def test_total_edit_count_conserved(self):
        rng = random.Random(5)
        p1 = Patch([Edit("delete", i) for i in range(3)])
        p2 = Patch([Edit("delete", i + 100) for i in range(4)])
        c1, c2 = crossover(p1, p2, rng)
        assert len(c1) + len(c2) == len(p1) + len(p2)

    def test_empty_parents(self):
        rng = random.Random(0)
        c1, c2 = crossover(Patch.empty(), Patch.empty(), rng)
        assert len(c1) == 0 and len(c2) == 0

    def test_deterministic_under_seed(self):
        p1 = Patch([Edit("delete", i) for i in range(5)])
        p2 = Patch([Edit("delete", i + 50) for i in range(5)])
        a = crossover(p1, p2, random.Random(42))
        b = crossover(p1, p2, random.Random(42))
        assert [e.target_id for e in a[0].edits] == [e.target_id for e in b[0].edits]
