"""Fitness function tests (paper §3.2), including property-based bounds."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.fitness import evaluate_fitness, fitness_score
from repro.instrument.trace import SimulationTrace
from repro.sim.logic import Value


def trace(rows):
    return SimulationTrace(
        [(t, {k: Value.from_string(v) for k, v in values.items()}) for t, values in rows]
    )


class TestScoring:
    def test_perfect_match_is_one(self):
        oracle = trace([(0, {"a": "1010"}), (10, {"a": "1111"})])
        assert fitness_score(oracle, oracle) == 1.0

    def test_total_mismatch_is_zero(self):
        oracle = trace([(0, {"a": "1111"})])
        actual = trace([(0, {"a": "0000"})])
        assert fitness_score(actual, oracle) == 0.0

    def test_half_bits_wrong(self):
        oracle = trace([(0, {"a": "1100"})])
        actual = trace([(0, {"a": "1111"})])
        # sum = 2 - 2 = 0, total = 4 → 0.
        assert fitness_score(actual, oracle) == 0.0

    def test_one_bit_wrong_of_four(self):
        oracle = trace([(0, {"a": "1100"})])
        actual = trace([(0, {"a": "1101"})])
        # sum = 3 - 1 = 2, total = 4.
        assert fitness_score(actual, oracle) == 0.5

    def test_xx_match_rewards_phi(self):
        oracle = trace([(0, {"a": "x1"})])
        actual = trace([(0, {"a": "x1"})])
        breakdown = evaluate_fitness(actual, oracle, phi=2.0)
        assert breakdown.raw_sum == 3.0  # φ + 1
        assert breakdown.total == 3.0
        assert breakdown.fitness == 1.0

    def test_x_mismatch_costs_phi(self):
        oracle = trace([(0, {"a": "01"})])
        actual = trace([(0, {"a": "x1"})])
        breakdown = evaluate_fitness(actual, oracle, phi=2.0)
        # bit1: (0,x) → -φ with weight φ; bit0: (1,1) → +1.
        assert breakdown.raw_sum == -1.0
        assert breakdown.total == 3.0
        assert breakdown.fitness == 0.0  # clamped at 0

    def test_zz_match(self):
        oracle = trace([(0, {"a": "z"})])
        actual = trace([(0, {"a": "z"})])
        assert fitness_score(actual, oracle) == 1.0

    def test_xz_pair_is_mismatch(self):
        oracle = trace([(0, {"a": "x"})])
        actual = trace([(0, {"a": "z"})])
        assert fitness_score(actual, oracle) == 0.0

    def test_missing_timestamp_scored_as_all_x(self):
        oracle = trace([(0, {"a": "11"}), (10, {"a": "11"})])
        actual = trace([(0, {"a": "11"})])
        breakdown = evaluate_fitness(actual, oracle, phi=2.0)
        # t=0: +2; t=10: two (1,x) pairs → -4 with weight 4.
        assert breakdown.raw_sum == -2.0
        assert breakdown.total == 6.0

    def test_missing_var_scored_as_x(self):
        oracle = trace([(0, {"a": "1", "b": "0"})])
        actual = trace([(0, {"a": "1"})])
        assert evaluate_fitness(actual, oracle).mismatches == 1

    def test_oracle_defines_the_timestamps(self):
        # Extra rows in the candidate trace are ignored.
        oracle = trace([(0, {"a": "1"})])
        actual = trace([(0, {"a": "1"}), (10, {"a": "0"}), (20, {"a": "x"})])
        assert fitness_score(actual, oracle) == 1.0

    def test_empty_oracle_gives_zero(self):
        oracle = SimulationTrace()
        actual = trace([(0, {"a": "1"})])
        assert fitness_score(actual, oracle) == 0.0

    def test_width_resize_before_compare(self):
        oracle = trace([(0, {"a": "0001"})])
        actual = SimulationTrace([(0, {"a": Value.from_int(1, 1)})])
        assert fitness_score(actual, oracle) == 1.0


class TestPhiWeight:
    def test_phi_increases_x_penalty(self):
        oracle = trace([(0, {"a": "0000"})])
        actual = trace([(0, {"a": "xx00"})])
        low = evaluate_fitness(actual, oracle, phi=1.0)
        high = evaluate_fitness(actual, oracle, phi=3.0)
        assert high.fitness <= low.fitness

    def test_phi_one_equates_x_and_wrong_bit(self):
        oracle = trace([(0, {"a": "00"})])
        x_actual = trace([(0, {"a": "x0"})])
        wrong_actual = trace([(0, {"a": "10"})])
        assert fitness_score(x_actual, oracle, phi=1.0) == fitness_score(
            wrong_actual, oracle, phi=1.0
        )


class TestProperties:
    values = st.text(alphabet="01xz", min_size=1, max_size=8)

    @given(st.lists(st.tuples(values, values), min_size=1, max_size=10))
    def test_fitness_bounded(self, pairs):
        oracle = trace([(i, {"a": exp}) for i, (exp, _) in enumerate(pairs)])
        actual = SimulationTrace(
            [
                (i, {"a": Value.from_string(act).resized(len(exp))})
                for i, (exp, act) in enumerate(pairs)
            ]
        )
        score = fitness_score(actual, oracle)
        assert 0.0 <= score <= 1.0

    @given(st.lists(values, min_size=1, max_size=10))
    def test_self_comparison_is_always_one(self, bits):
        oracle = trace([(i, {"a": b}) for i, b in enumerate(bits)])
        assert fitness_score(oracle, oracle) == 1.0

    @given(st.lists(st.tuples(values, values), min_size=1, max_size=6))
    def test_breakdown_totals_consistent(self, pairs):
        oracle = trace([(i, {"a": exp}) for i, (exp, _) in enumerate(pairs)])
        actual = SimulationTrace(
            [
                (i, {"a": Value.from_string(act).resized(len(exp))})
                for i, (exp, act) in enumerate(pairs)
            ]
        )
        b = evaluate_fitness(actual, oracle)
        assert b.matches + b.mismatches == sum(len(exp) for exp, _ in pairs)
        assert abs(b.raw_sum) <= b.total
