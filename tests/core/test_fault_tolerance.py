"""End-to-end fault-tolerance acceptance tests (ISSUE 5).

A full repair run with deliberately planted poison mutants — one that
hangs, one that hard-exits its worker, one that balloons memory — must
terminate, quarantine exactly the planted candidates as deterministic
:class:`~repro.core.backend.EvalFailure` results with the right kinds,
and still find the repair.  The telemetry layer must agree with the
engine's own counters at every level (outcome, metrics, events).
"""

import pytest

from repro.core import TEST_CONFIG, CirFixEngine, RepairProblem
from repro.core.backend import ProcessPoolBackend
from repro.core.oracle import ensure_instrumented, generate_oracle
from repro.fuzz.faults import plant_eval_chaos
from repro.hdl import parse
from repro.obs import MetricsObserver, RecordingObserver

GOLDEN_FF = """
module tff(clk, rstn, t, q);
  input clk, rstn, t;
  output q;
  reg q;
  always @(posedge clk) begin
    if (!rstn) q <= 1'b0;
    else begin
      if (t) q <= !q;
      else q <= q;
    end
  end
endmodule
"""

FAULTY_FF = GOLDEN_FF.replace("if (t) q <= !q;", "if (!t) q <= !q;")

TESTBENCH = """
module tb;
  reg clk, rstn, t;
  wire q;
  tff dut(.clk(clk), .rstn(rstn), .t(t), .q(q));
  always #5 clk = !clk;
  initial begin
    clk = 0; rstn = 0; t = 0;
    @(negedge clk);
    rstn = 1; t = 1;
    repeat (4) begin @(negedge clk); end
    t = 0;
    repeat (3) begin @(negedge clk); end
    #5 $finish;
  end
endmodule
"""


@pytest.fixture(scope="module")
def problem():
    golden = parse(GOLDEN_FF)
    bench = ensure_instrumented(parse(TESTBENCH), golden)
    oracle = generate_oracle(golden, bench)
    return RepairProblem(parse(FAULTY_FF), bench, oracle, "ff_cond")


#: Short-but-roomy supervision budget: the deadline must outlast the
#: memory balloon's climb to its 128 MiB cap on slow hosts, while the
#: planted hang burns exactly one deadline.  The ordinals (0, 1, 2) are
#: early in the deterministic dispatch schedule; the winning repair for
#: this scenario appears much later (ordinal 17 of 18 under seed 0), so
#: poisoning them never quarantines the repair itself.
CHAOS_SPEC = "hang@0,exit@1,balloon@2"
CHAOS_CONFIG = TEST_CONFIG.scaled(
    max_generations=4,
    eval_deadline_seconds=8.0,
    eval_max_retries=0,
    worker_mem_mb=128,
)


def test_repair_survives_planted_poison_mutants(problem):
    metrics = MetricsObserver()
    recorder = RecordingObserver()
    with plant_eval_chaos(CHAOS_SPEC):
        with ProcessPoolBackend.for_problem(problem, CHAOS_CONFIG, workers=2) as pool:
            outcome = CirFixEngine(
                problem, CHAOS_CONFIG, seed=0,
                backend=pool, observers=[metrics, recorder],
            ).run()

    # The run terminated and still repaired the defect.
    assert outcome.plausible
    assert outcome.repaired_source is not None

    # Exactly the three planted candidates were quarantined, each under
    # its own failure kind.
    assert outcome.quarantined == 3
    engine_kinds = {"timeout": 1, "crash": 1, "oom": 1}
    assert metrics.candidates_quarantined == 3
    assert metrics.quarantined_by_kind == engine_kinds

    # Per-incident events came through with the right shapes.
    timed_out = [e for e in recorder.events if e.type == "candidate_timed_out"]
    crashed = [e for e in recorder.events if e.type == "worker_crashed"]
    assert len(timed_out) == 1
    assert timed_out[0].quarantined
    assert timed_out[0].deadline_seconds == CHAOS_CONFIG.eval_deadline_seconds
    assert sorted(e.kind for e in crashed) == ["crash", "oom"]
    assert all(e.quarantined for e in crashed)
    # eval_max_retries=0 means no requeues, so no chunk_retried events.
    assert not [e for e in recorder.events if e.type == "chunk_retried"]

    # The trial summary event mirrors the outcome's quarantine counter.
    (trial,) = [e for e in recorder.events if e.type == "trial_completed"]
    assert trial.quarantined == outcome.quarantined
    assert metrics.candidates == outcome.eval_sims


def test_requeued_chunk_emits_chunk_retried(problem):
    config = CHAOS_CONFIG.scaled(eval_max_retries=1)
    metrics = MetricsObserver()
    recorder = RecordingObserver()
    with plant_eval_chaos("exit@1:once"):
        with ProcessPoolBackend.for_problem(problem, config, workers=2) as pool:
            outcome = CirFixEngine(
                problem, config, seed=0, backend=pool,
                observers=[metrics, recorder],
            ).run()

    # The :once fault killed one worker, the retry recovered the real
    # score: nothing was quarantined and the search is unharmed.
    assert outcome.plausible
    assert outcome.quarantined == 0
    assert metrics.candidates_quarantined == 0
    crashed = [e for e in recorder.events if e.type == "worker_crashed"]
    assert [e.quarantined for e in crashed] == [False]
    retried = [e for e in recorder.events if e.type == "chunk_retried"]
    assert len(retried) == 1
    assert retried[0].requeued == 1
    assert metrics.chunks_retried == 1
    assert metrics.candidates_requeued == 1
    assert metrics.worker_failures == {"crash": 1}


def test_chaos_run_matches_clean_run_outside_poisoned_slots(problem):
    """With retries covering every planted fault, the outcome is
    bit-identical to a clean run — recovery is invisible to the search."""
    config = CHAOS_CONFIG.scaled(eval_max_retries=1)
    with ProcessPoolBackend.for_problem(problem, config, workers=2) as pool:
        clean = CirFixEngine(problem, config, seed=0, backend=pool).run()
    with plant_eval_chaos("exit@0:once,exit@3:once"):
        with ProcessPoolBackend.for_problem(problem, config, workers=2) as pool:
            chaotic = CirFixEngine(problem, config, seed=0, backend=pool).run()
    assert chaotic.plausible == clean.plausible
    assert chaotic.fitness == clean.fitness
    assert chaotic.repaired_source == clean.repaired_source
    assert chaotic.best_fitness_history == clean.best_fitness_history
    assert chaotic.quarantined == clean.quarantined == 0
