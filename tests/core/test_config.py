"""RepairConfig tests."""

import dataclasses

import pytest

from repro.core.config import TEST_CONFIG, ConfigError, RepairConfig


class TestDefaults:
    def test_paper_parameters(self):
        config = RepairConfig()
        assert config.population_size == 5000
        assert config.max_generations == 8
        assert config.rt_threshold == 0.2
        assert config.mut_threshold == 0.7
        assert config.delete_threshold == 0.3
        assert config.insert_threshold == 0.3
        assert config.tournament_size == 5
        assert config.elitism_fraction == 0.05
        assert config.phi == 2.0
        assert config.max_wall_seconds == 12 * 3600.0

    def test_extensions_off_by_default(self):
        assert RepairConfig().extended_templates is False

    def test_supervision_defaults(self):
        """The deadline defaults on (generously), sandboxing defaults off,
        so ``max_sim_steps`` stays the canonical per-candidate cutoff."""
        config = RepairConfig()
        assert config.eval_deadline_seconds == 600.0
        assert config.eval_max_retries == 1
        assert config.worker_mem_mb == 0

    def test_deadline_can_be_disabled(self):
        assert RepairConfig(eval_deadline_seconds=0.0).validate()
        assert RepairConfig(eval_max_retries=0).validate()

    def test_frozen(self):
        config = RepairConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.phi = 3.0  # type: ignore[misc]


class TestScaled:
    def test_scaled_overrides_only_named(self):
        config = RepairConfig().scaled(population_size=10, phi=1.0)
        assert config.population_size == 10
        assert config.phi == 1.0
        assert config.max_generations == 8

    def test_scaled_returns_new_object(self):
        base = RepairConfig()
        assert base.scaled(phi=3.0) is not base
        assert base.phi == 2.0

    def test_test_config_is_small(self):
        assert TEST_CONFIG.population_size < 100
        assert TEST_CONFIG.max_wall_seconds < 600


class TestValidate:
    def test_default_config_validates(self):
        config = RepairConfig()
        assert config.validate() is config

    @pytest.mark.parametrize(
        "overrides,fragment",
        [
            ({"population_size": 0}, "population_size"),
            ({"rt_threshold": 1.5}, "rt_threshold"),
            ({"elitism_fraction": -0.1}, "elitism_fraction"),
            ({"tournament_size": 0}, "tournament_size"),
            ({"phi": -1.0}, "phi"),
            ({"max_wall_seconds": 0.0}, "max_wall_seconds"),
            ({"max_fitness_evals": 0}, "max_fitness_evals"),
            ({"max_sim_steps": 0}, "max_sim_steps"),
            ({"minimize_budget": -1}, "minimize_budget"),
            ({"workers": 0}, "workers"),
            ({"backend": "gpu"}, "backend"),
            ({"eval_chunk_size": 0}, "eval_chunk_size"),
            ({"eval_deadline_seconds": -1.0}, "eval_deadline_seconds"),
            ({"eval_max_retries": -1}, "eval_max_retries"),
            ({"worker_mem_mb": -1}, "worker_mem_mb"),
        ],
    )
    def test_out_of_range_rejected(self, overrides, fragment):
        config = RepairConfig().scaled(**overrides)
        with pytest.raises(ConfigError, match=fragment):
            config.validate()

    def test_error_names_the_source(self):
        with pytest.raises(ConfigError, match="^my.conf:"):
            RepairConfig().scaled(workers=0).validate("my.conf")


class TestFromMapping:
    def test_coerces_string_values(self):
        config = RepairConfig.from_mapping(
            {
                "population_size": "300",
                "phi": "1.5",
                "backend": "serial",
                "extended_templates": "yes",
                "max_fitness_evals": "none",
            }
        )
        assert config.population_size == 300
        assert config.phi == 1.5
        assert config.backend == "serial"
        assert config.extended_templates is True
        assert config.max_fitness_evals is None

    def test_unknown_key_fails_fast_naming_the_key(self):
        with pytest.raises(ConfigError, match="poplation_size"):
            RepairConfig.from_mapping({"poplation_size": "300"})
        # The message also lists valid keys.
        with pytest.raises(ConfigError, match="population_size"):
            RepairConfig.from_mapping({"poplation_size": "300"})

    def test_bad_value_names_the_key(self):
        with pytest.raises(ConfigError, match="population_size"):
            RepairConfig.from_mapping({"population_size": "lots"})
        with pytest.raises(ConfigError, match="extended_templates"):
            RepairConfig.from_mapping({"extended_templates": "maybe"})

    def test_applies_on_top_of_base(self):
        base = RepairConfig(population_size=42)
        config = RepairConfig.from_mapping({"phi": 3.0}, base=base)
        assert config.population_size == 42
        assert config.phi == 3.0

    def test_validates_result(self):
        with pytest.raises(ConfigError, match="workers"):
            RepairConfig.from_mapping({"workers": "0"})


class TestFromFile:
    def _write(self, tmp_path, body):
        path = tmp_path / "repair.conf"
        path.write_text(body)
        return path

    def test_reads_gp_section_and_seeds(self, tmp_path):
        path = self._write(
            tmp_path,
            "[gp]\n"
            "population_size = 64  ; inline comment\n"
            "backend = process\n"
            "workers = 2\n"
            "seeds = 3, 4 ,5\n",
        )
        config, seeds = RepairConfig.from_file(path)
        assert config.population_size == 64
        assert config.backend == "process"
        assert config.workers == 2
        assert seeds == (3, 4, 5)

    def test_missing_section_returns_base(self, tmp_path):
        path = self._write(tmp_path, "[project]\nsource = x.v\n")
        base = RepairConfig(population_size=7)
        config, seeds = RepairConfig.from_file(path, base=base)
        assert config is base
        assert seeds is None

    def test_no_seeds_key_returns_none(self, tmp_path):
        path = self._write(tmp_path, "[gp]\npopulation_size = 8\n")
        _config, seeds = RepairConfig.from_file(path)
        assert seeds is None

    def test_unknown_key_names_file_and_section(self, tmp_path):
        path = self._write(tmp_path, "[gp]\npoplation_size = 8\n")
        with pytest.raises(ConfigError, match=r"repair\.conf \[gp\].*poplation_size"):
            RepairConfig.from_file(path)

    def test_unreadable_file_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            RepairConfig.from_file(tmp_path / "missing.conf")


class TestFromCliArgs:
    def test_namespace_with_aliases(self):
        import argparse

        args = argparse.Namespace(
            population=99, budget=30.0, workers=None, backend="serial",
            seeds=[0], conf=None,
        )
        config = RepairConfig.from_cli_args(args)
        assert config.population_size == 99
        assert config.max_wall_seconds == 30.0
        assert config.backend == "serial"
        # Unrecognised argparse attributes (seeds, conf) are ignored.

    def test_none_values_skipped(self):
        base = RepairConfig(population_size=5)
        config = RepairConfig.from_cli_args({"population": None}, base=base)
        assert config.population_size == 5

    def test_workers_clamped_to_one(self):
        config = RepairConfig.from_cli_args({"workers": -4})
        assert config.workers == 1

    def test_validation_applies(self):
        with pytest.raises(ConfigError, match="command line"):
            RepairConfig.from_cli_args({"population": 0})

    def test_supervision_flags_reach_config(self):
        """--eval-deadline / --worker-mem-mb land on their config fields
        (argparse dests match the field names, so no alias is needed)."""
        config = RepairConfig.from_cli_args(
            {"eval_deadline_seconds": 2.5, "eval_max_retries": 0, "worker_mem_mb": 256}
        )
        assert config.eval_deadline_seconds == 2.5
        assert config.eval_max_retries == 0
        assert config.worker_mem_mb == 256
