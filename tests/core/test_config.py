"""RepairConfig tests."""

import dataclasses

import pytest

from repro.core.config import TEST_CONFIG, RepairConfig


class TestDefaults:
    def test_paper_parameters(self):
        config = RepairConfig()
        assert config.population_size == 5000
        assert config.max_generations == 8
        assert config.rt_threshold == 0.2
        assert config.mut_threshold == 0.7
        assert config.delete_threshold == 0.3
        assert config.insert_threshold == 0.3
        assert config.tournament_size == 5
        assert config.elitism_fraction == 0.05
        assert config.phi == 2.0
        assert config.max_wall_seconds == 12 * 3600.0

    def test_extensions_off_by_default(self):
        assert RepairConfig().extended_templates is False

    def test_frozen(self):
        config = RepairConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.phi = 3.0  # type: ignore[misc]


class TestScaled:
    def test_scaled_overrides_only_named(self):
        config = RepairConfig().scaled(population_size=10, phi=1.0)
        assert config.population_size == 10
        assert config.phi == 1.0
        assert config.max_generations == 8

    def test_scaled_returns_new_object(self):
        base = RepairConfig()
        assert base.scaled(phi=3.0) is not base
        assert base.phi == 2.0

    def test_test_config_is_small(self):
        assert TEST_CONFIG.population_size < 100
        assert TEST_CONFIG.max_wall_seconds < 600
