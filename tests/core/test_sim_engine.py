"""The compiled-simulation fast path seen from the repair engine.

Covers the ``sim_engine`` config switch, the backend-level
:class:`~repro.core.backend.EvalCache`, the adaptive chunk sizing, and
the headline guarantee: a fixed-seed repair under ``sim_engine =
"compiled"`` produces a bit-identical outcome to the interpreter.
"""

import dataclasses

import pytest

from repro.benchsuite import load_scenario
from repro.core.backend import EvalCache, SerialBackend, make_backend
from repro.core.config import ConfigError, RepairConfig
from repro.core.repair import CirFixEngine, adaptive_chunk_size
from repro.experiments.common import SMOKE


class TestConfig:
    def test_sim_engine_default_and_choices(self):
        assert RepairConfig().sim_engine == "interp"
        assert RepairConfig(sim_engine="compiled").sim_engine == "compiled"

    def test_sim_engine_rejects_unknown(self):
        with pytest.raises(ConfigError, match="sim_engine"):
            RepairConfig(sim_engine="jit").validate()

    def test_eval_cache_size_rejects_negative(self):
        with pytest.raises(ConfigError, match="eval_cache_size"):
            RepairConfig(eval_cache_size=-1).validate()

    def test_eval_cache_size_zero_is_valid(self):
        assert RepairConfig(eval_cache_size=0).validate().eval_cache_size == 0


class TestAdaptiveChunkSize:
    def test_small_batches_use_the_floor(self):
        assert adaptive_chunk_size(1, 8) == 8
        assert adaptive_chunk_size(8, 8) == 8

    def test_exact_multiples_are_unchanged(self):
        assert adaptive_chunk_size(24, 8) == 8
        assert adaptive_chunk_size(16, 8) == 8

    def test_runt_chunks_are_absorbed(self):
        # 25 pending at floor 8 would be 8+8+8+1; adaptive gives 9+9+7.
        assert adaptive_chunk_size(25, 8) == 9
        # 15 at floor 8: one chunk instead of 8+7.
        assert adaptive_chunk_size(15, 8) == 15

    def test_never_drops_candidates(self):
        for batch in range(1, 200):
            for floor in (1, 4, 8, 16):
                size = adaptive_chunk_size(batch, floor)
                chunks = -(-batch // size)
                assert chunks * size >= batch
                # No chunk is larger than ~2x the floor once batches are
                # big enough to split.
                if batch > 2 * floor:
                    assert size < 2 * floor + floor

    def test_degenerate_floor(self):
        assert adaptive_chunk_size(10, 0) == 1
        assert adaptive_chunk_size(0, 8) == 8


class TestEvalCache:
    def _result(self, fitness=0.5):
        from repro.core.backend import CandidateResult

        return CandidateResult(fitness, None, True, None, None)

    def test_hit_replays_the_stored_result(self):
        cache = EvalCache(4)
        result = self._result()
        cache.put("module a; endmodule", result)
        assert cache.get("module a; endmodule") is result
        assert cache.info() == {
            "hits": 1, "misses": 0, "store_hits": 0, "size": 1, "capacity": 4,
        }

    def test_miss_counts(self):
        cache = EvalCache(4)
        assert cache.get("nope") is None
        assert cache.info()["misses"] == 1

    def test_zero_capacity_disables(self):
        cache = EvalCache(0)
        cache.put("text", self._result())
        assert cache.get("text") is None
        assert cache.info() == {
            "hits": 0, "misses": 0, "store_hits": 0, "size": 0, "capacity": 0,
        }

    def test_lru_eviction(self):
        cache = EvalCache(2)
        cache.put("a", self._result(0.1))
        cache.put("b", self._result(0.2))
        assert cache.get("a") is not None  # refresh a
        cache.put("c", self._result(0.3))  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None

    def test_quarantined_results_are_never_cached(self):
        from repro.core.backend import _quarantine_result

        cache = EvalCache(4)
        cache.put("text", _quarantine_result("timeout", 3))
        assert cache.get("text") is None


class TestSerialBackendCache:
    def _backend(self, engine="interp", cache_size=256):
        scenario = load_scenario("counter_reset")
        config = dataclasses.replace(
            scenario.suggested_config(SMOKE),
            sim_engine=engine,
            eval_cache_size=cache_size,
        )
        return SerialBackend.for_problem(scenario.problem(), config)

    @pytest.mark.parametrize("engine", ["interp", "compiled"])
    def test_repeat_batch_hits_the_cache(self, engine):
        backend = self._backend(engine)
        scenario = load_scenario("counter_reset")
        texts = [scenario.faulty_design_text]
        first = backend.evaluate_batch(texts)
        second = backend.evaluate_batch(texts)
        assert backend.cache.info()["hits"] == 1
        # The replayed result is the recorded one — telemetry included.
        assert second[0] is first[0]

    def test_cache_disabled_reevaluates(self):
        backend = self._backend(cache_size=0)
        scenario = load_scenario("counter_reset")
        texts = [scenario.faulty_design_text]
        first = backend.evaluate_batch(texts)
        second = backend.evaluate_batch(texts)
        assert backend.cache.info()["hits"] == 0
        assert second[0] is not first[0]
        assert second[0].fitness == first[0].fitness


def _outcome_key(outcome):
    """Everything except wall-clock (AST nodes compare by identity, so
    the patch is compared in its structural repr form)."""
    return (
        outcome.plausible,
        outcome.fitness,
        outcome.generations,
        outcome.fitness_evals,
        outcome.eval_sims,
        outcome.simulations,
        outcome.seed,
        tuple(outcome.best_fitness_history),
        repr(outcome.patch),
        outcome.repaired_source,
    )


class TestEngineOutcomeParity:
    def test_smoke_repair_is_bit_identical_across_engines(self):
        outcomes = {}
        for engine in ("interp", "compiled"):
            scenario = load_scenario("counter_reset")
            config = dataclasses.replace(
                scenario.suggested_config(SMOKE), sim_engine=engine
            )
            problem = scenario.problem()
            backend = make_backend(problem, config)
            try:
                outcomes[engine] = CirFixEngine(
                    problem, config, 0, backend=backend
                ).run()
            finally:
                backend.close()
        assert _outcome_key(outcomes["interp"]) == _outcome_key(
            outcomes["compiled"]
        )
        assert outcomes["compiled"].plausible
