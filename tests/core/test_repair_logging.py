"""Engine progress logging tests (the artifact's repair_logs feature)."""

import logging

from repro.core import TEST_CONFIG, CirFixEngine, RepairProblem
from repro.core.oracle import ensure_instrumented, generate_oracle
from repro.hdl import parse

GOLDEN = """
module notch(clk, d, q);
  input clk, d;
  output q;
  reg q;
  always @(posedge clk) q <= !d;
endmodule
"""

FAULTY = GOLDEN.replace("q <= !d;", "q <= d;")

TESTBENCH = """
module tb;
  reg clk, d;
  wire q;
  notch dut(.clk(clk), .d(d), .q(q));
  always #5 clk = !clk;
  initial begin
    clk = 0; d = 0;
    repeat (3) begin @(negedge clk); d = !d; end
    repeat (2) begin @(negedge clk); end
    $finish;
  end
endmodule
"""


def make_problem():
    golden = parse(GOLDEN)
    bench = ensure_instrumented(parse(TESTBENCH), golden)
    return RepairProblem(parse(FAULTY), bench, generate_oracle(golden, bench), "notch")


class TestLogging:
    def test_progress_logged_at_info(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.repair"):
            CirFixEngine(make_problem(), TEST_CONFIG, seed=0).run()
        text = caplog.text
        assert "start: fitness=" in text
        assert "[notch seed=0]" in text

    def test_minimization_logged_on_success(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.repair"):
            outcome = CirFixEngine(make_problem(), TEST_CONFIG, seed=0).run()
        if outcome.plausible:
            assert "minimized to" in caplog.text

    def test_silent_by_default(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.repair"):
            CirFixEngine(make_problem(), TEST_CONFIG, seed=1).run()
        assert "start: fitness" not in caplog.text
