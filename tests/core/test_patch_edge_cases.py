"""Patch edge cases: deletes of non-statements, malformed edits, deep
edit chains."""

import pytest

from repro.core.patch import Edit, Patch
from repro.hdl import ast, generate, parse

SRC = """
module m;
  reg [3:0] a;
  wire w;
  assign w = a[0];
  always @(posedge clk) begin
    if (a == 4'd2) begin
      a <= a + 1;
    end
  end
endmodule
"""


def base():
    return parse(SRC)


class TestDeleteVariants:
    def test_delete_expression_in_scalar_field_nulls_it(self):
        tree = base()
        if_node = next(n for n in tree.walk() if isinstance(n, ast.If))
        patched = Patch([Edit("delete", if_node.cond.node_id)]).apply(tree)
        # The condition slot is now empty; codegen must fail cleanly (the
        # engine scores such mutants as non-compiling).
        from repro.hdl.codegen import CodegenError

        with pytest.raises(CodegenError):
            generate(patched)

    def test_delete_module_item(self):
        tree = base()
        cont = next(n for n in tree.walk() if isinstance(n, ast.ContinuousAssign))
        patched = Patch([Edit("delete", cont.node_id)]).apply(tree)
        text = generate(patched)
        assert "assign" not in text

    def test_delete_whole_always(self):
        tree = base()
        always = next(n for n in tree.walk() if isinstance(n, ast.Always))
        patched = Patch([Edit("delete", always.node_id)]).apply(tree)
        assert "always" not in generate(patched)


class TestMalformedEdits:
    def test_replace_without_payload_is_noop(self):
        tree = base()
        target = next(n for n in tree.walk() if isinstance(n, ast.If))
        patched = Patch([Edit("replace", target.node_id, None)]).apply(tree)
        assert generate(patched) == generate(tree)

    def test_insert_without_payload_is_noop(self):
        tree = base()
        target = next(n for n in tree.walk() if isinstance(n, ast.NonBlockingAssign))
        patched = Patch([Edit("insert_after", target.node_id, None)]).apply(tree)
        assert generate(patched) == generate(tree)

    def test_template_without_name_is_noop(self):
        tree = base()
        target = next(n for n in tree.walk() if isinstance(n, ast.If))
        patched = Patch([Edit("template", target.node_id, template=None)]).apply(tree)
        assert generate(patched) == generate(tree)

    def test_unknown_template_name_is_noop(self):
        tree = base()
        target = next(n for n in tree.walk() if isinstance(n, ast.If))
        patched = Patch(
            [Edit("template", target.node_id, template="no_such_template")]
        ).apply(tree)
        assert generate(patched) == generate(tree)

    def test_unknown_edit_kind_raises(self):
        tree = base()
        target = next(n for n in tree.walk() if isinstance(n, ast.If))
        with pytest.raises(ValueError):
            Patch([Edit("transmogrify", target.node_id)]).apply(tree)


class TestDeepChains:
    def test_ten_edit_chain_applies(self):
        tree = base()
        nba = next(n for n in tree.walk() if isinstance(n, ast.NonBlockingAssign))
        patch = Patch.empty()
        anchor_id = nba.node_id
        for _ in range(10):
            patch = patch.extended(Edit("insert_after", anchor_id, nba.clone()))
        patched = patch.apply(tree)
        assert generate(patched).count("a <= (a + 1);") == 11

    def test_chain_with_interleaved_deletes(self):
        tree = base()
        nba = next(n for n in tree.walk() if isinstance(n, ast.NonBlockingAssign))
        patch = Patch(
            [
                Edit("insert_after", nba.node_id, nba.clone()),
                Edit("delete", nba.node_id),
            ]
        )
        patched = patch.apply(tree)
        # Original deleted, inserted copy survives.
        assert generate(patched).count("a <= (a + 1);") == 1
