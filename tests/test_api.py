"""repro.api facade tests (scenario resolution, localize, simulate,
build_problem).  The heavyweight repair path is covered by
test_public_api.py and tests/obs/."""

import pytest

from repro.api import build_problem, localize, repair_scenario, simulate
from repro.core.repair import RepairProblem

DESIGN = """
module counter(clk, rst, out);
  input clk, rst;
  output [1:0] out;
  reg [1:0] out;
  always @(posedge clk) begin
    if (rst) out <= 0;
    else out <= out + 1;
  end
endmodule
"""

TESTBENCH = """
module tb;
  reg clk, rst;
  wire [1:0] out;
  counter dut(.clk(clk), .rst(rst), .out(out));
  always #5 clk = !clk;
  initial begin
    clk = 0; rst = 1;
    @(negedge clk);
    rst = 0;
    repeat (6) begin @(negedge clk); end
    $finish;
  end
endmodule
"""


class TestSimulate:
    def test_design_alone(self):
        result = simulate("module t; initial $finish; endmodule")
        assert result.finished
        assert result.events_executed >= 1

    def test_with_testbench_and_record(self):
        result = simulate(DESIGN, TESTBENCH, record=True)
        assert result.finished
        assert result.trace, "record=True should capture a trace"

    def test_without_record_no_trace(self):
        result = simulate(DESIGN, TESTBENCH)
        assert result.finished
        assert not result.trace


class TestLocalize:
    def test_scenario_id(self):
        loc = localize("dec_numeric")
        assert len(loc) > 0
        assert loc.mismatch

    def test_matching_design_yields_empty_localization(self):
        from repro.core.oracle import ensure_instrumented, generate_oracle
        from repro.hdl import parse

        golden = parse(DESIGN)
        bench = ensure_instrumented(parse(TESTBENCH), golden)
        oracle = generate_oracle(golden, bench)
        problem = RepairProblem(golden, bench, oracle)
        assert len(localize(problem)) == 0

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            localize("not_a_scenario")

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError, match="scenario"):
            repair_scenario(42)


class TestBuildProblem:
    def test_from_golden(self, tmp_path):
        faulty = DESIGN.replace("out <= out + 1", "out <= out + 2")
        (tmp_path / "faulty.v").write_text(faulty)
        (tmp_path / "tb.v").write_text(TESTBENCH)
        (tmp_path / "golden.v").write_text(DESIGN)
        problem = build_problem(
            tmp_path / "faulty.v", tmp_path / "tb.v", golden=tmp_path / "golden.v"
        )
        assert problem.name == "faulty"
        assert problem.oracle.rows

    def test_requires_an_oracle_source(self, tmp_path):
        (tmp_path / "faulty.v").write_text(DESIGN)
        (tmp_path / "tb.v").write_text(TESTBENCH)
        with pytest.raises(ValueError, match="golden design or an oracle CSV"):
            build_problem(tmp_path / "faulty.v", tmp_path / "tb.v")
