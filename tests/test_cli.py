"""CLI tests (the artifact-style repair.conf workflow)."""

import pytest

from repro.benchsuite import load_scenario
from repro.cli import main


@pytest.fixture(scope="module")
def ff_files(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("cli")
    scenario = load_scenario("ff_cond")
    (tmp / "faulty.v").write_text(scenario.faulty_design_text)
    (tmp / "golden.v").write_text(scenario.project.design_text)
    (tmp / "tb.v").write_text(scenario.project.testbench_text)
    return tmp


class TestRepairCommand:
    def test_conf_driven_repair(self, ff_files, capsys):
        conf = ff_files / "repair.conf"
        conf.write_text(
            "[project]\n"
            f"source = {ff_files}/faulty.v\n"
            f"testbench = {ff_files}/tb.v\n"
            f"golden = {ff_files}/golden.v\n"
            "[gp]\n"
            "population_size = 120\n"
            "max_generations = 4\n"
            "max_fitness_evals = 600\n"
            "max_wall_seconds = 60\n"
            "seeds = 0,1\n"
        )
        code = main(["repair", "--conf", str(conf), "--output", str(ff_files / "out.v")])
        assert code == 0
        assert (ff_files / "out.v").exists()
        out = capsys.readouterr().out
        assert "PLAUSIBLE" in out

    def test_positional_arguments(self, ff_files):
        code = main(
            [
                "repair",
                str(ff_files / "faulty.v"),
                str(ff_files / "tb.v"),
                "--golden",
                str(ff_files / "golden.v"),
                "--population",
                "120",
                "--budget",
                "60",
                "--seeds",
                "0",
                "--output",
                str(ff_files / "out2.v"),
            ]
        )
        assert code == 0

    def test_missing_oracle_errors(self, ff_files):
        with pytest.raises(SystemExit):
            main(["repair", str(ff_files / "faulty.v"), str(ff_files / "tb.v")])


class TestSimulateCommand:
    def test_simulate_with_record(self, ff_files, capsys):
        code = main(
            ["simulate", str(ff_files / "golden.v"), str(ff_files / "tb.v"), "--record"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("time,q")


class TestScenariosCommand:
    def test_lists_all_32(self, capsys):
        assert main(["scenarios"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 32
