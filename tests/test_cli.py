"""CLI tests (the artifact-style repair.conf workflow)."""

import pytest

from repro.benchsuite import load_scenario
from repro.cli import main


@pytest.fixture(scope="module")
def ff_files(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("cli")
    scenario = load_scenario("ff_cond")
    (tmp / "faulty.v").write_text(scenario.faulty_design_text)
    (tmp / "golden.v").write_text(scenario.project.design_text)
    (tmp / "tb.v").write_text(scenario.project.testbench_text)
    return tmp


class TestRepairCommand:
    def test_conf_driven_repair(self, ff_files, capsys):
        conf = ff_files / "repair.conf"
        conf.write_text(
            "[project]\n"
            f"source = {ff_files}/faulty.v\n"
            f"testbench = {ff_files}/tb.v\n"
            f"golden = {ff_files}/golden.v\n"
            "[gp]\n"
            "population_size = 120\n"
            "max_generations = 4\n"
            "max_fitness_evals = 600\n"
            "max_wall_seconds = 60\n"
            "seeds = 0,1\n"
        )
        code = main(["repair", "--conf", str(conf), "--output", str(ff_files / "out.v")])
        assert code == 0
        assert (ff_files / "out.v").exists()
        out = capsys.readouterr().out
        assert "PLAUSIBLE" in out

    def test_positional_arguments(self, ff_files):
        code = main(
            [
                "repair",
                str(ff_files / "faulty.v"),
                str(ff_files / "tb.v"),
                "--golden",
                str(ff_files / "golden.v"),
                "--population",
                "120",
                "--budget",
                "60",
                "--seeds",
                "0",
                "--eval-deadline",
                "600",
                "--worker-mem-mb",
                "0",
                "--output",
                str(ff_files / "out2.v"),
            ]
        )
        assert code == 0

    def test_missing_oracle_errors(self, ff_files):
        with pytest.raises(SystemExit):
            main(["repair", str(ff_files / "faulty.v"), str(ff_files / "tb.v")])


class TestSimulateCommand:
    def test_simulate_with_record(self, ff_files, capsys):
        code = main(
            ["simulate", str(ff_files / "golden.v"), str(ff_files / "tb.v"), "--record"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("time,q")


class TestScenariosCommand:
    def test_lists_all_32(self, capsys):
        assert main(["scenarios"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 32


class TestFuzzCommand:
    def test_clean_run_exits_zero(self, capsys):
        code = main(
            ["fuzz", "--seed", "0", "--count", "1", "--no-logic",
             "--cross-backend-every", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "violations: 0" in out
        assert "programs checked: 1" in out

    def test_planted_fault_exits_nonzero(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        code = main(
            ["fuzz", "--seed", "2", "--count", "1", "--no-logic",
             "--cross-backend-every", "0",
             "--inject-fault", "drop_ternary_parens",
             "--corpus-dir", str(corpus)]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "[roundtrip]" in out
        assert list(corpus.glob("*.v"))

    def test_unknown_fault_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main(["fuzz", "--count", "1", "--inject-fault", "bogus"])

    def test_trace_is_written(self, tmp_path, capsys):
        trace = tmp_path / "fuzz.jsonl"
        code = main(
            ["fuzz", "--seed", "0", "--count", "1", "--no-logic",
             "--cross-backend-every", "0", "--trace", str(trace)]
        )
        assert code == 0
        capsys.readouterr()
        lines = trace.read_text().strip().splitlines()
        assert any('"fuzz_run_completed"' in line for line in lines)


DIRTY_DESIGN = """
module m(input a, input b, output w, output reg q);
  assign w = a;
  assign w = b;
  always @(*) if (a) q = b;
endmodule
"""


class TestLintCommand:
    @pytest.fixture()
    def dirty_file(self, tmp_path):
        path = tmp_path / "dirty.v"
        path.write_text(DIRTY_DESIGN)
        return path

    def test_clean_file_exits_zero(self, ff_files, capsys):
        assert main(["lint", str(ff_files / "golden.v")]) == 0
        out = capsys.readouterr().out
        assert "0 findings" in out

    def test_findings_exit_one(self, dirty_file, capsys):
        assert main(["lint", str(dirty_file)]) == 1
        out = capsys.readouterr().out
        assert "[L001/multi-driver]" in out
        assert "[L004/inferred-latch]" in out

    def test_parse_error_exits_two(self, tmp_path, capsys):
        path = tmp_path / "broken.v"
        path.write_text("module broken(")
        assert main(["lint", str(path)]) == 2
        assert "broken.v" in capsys.readouterr().err

    def test_json_output_schema(self, dirty_file, capsys):
        import json

        assert main(["lint", "--json", str(dirty_file)]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["profile"] == {"L001": 1, "L004": 1}
        assert {d["code"] for d in data["diagnostics"]} == {"L001", "L004"}

    def test_rule_selection(self, dirty_file, capsys):
        assert main(["lint", "--rules", "multi-driver", str(dirty_file)]) == 1
        out = capsys.readouterr().out
        assert "L001" in out and "L004" not in out

    def test_unknown_rule_is_a_usage_error(self, dirty_file):
        with pytest.raises(SystemExit):
            main(["lint", "--rules", "L999", str(dirty_file)])

    def test_multiple_files_json(self, ff_files, dirty_file, capsys):
        import json

        code = main(
            ["lint", "--json", str(ff_files / "golden.v"), str(dirty_file)]
        )
        assert code == 1
        data = json.loads(capsys.readouterr().out)
        assert set(data["files"]) == {str(ff_files / "golden.v"), str(dirty_file)}
        assert data["files"][str(dirty_file)]["findings"] == 2

    def test_multiple_files_text_headers(self, ff_files, dirty_file, capsys):
        main(["lint", str(ff_files / "golden.v"), str(dirty_file)])
        out = capsys.readouterr().out
        assert f"== {ff_files / 'golden.v'} ==" in out
        assert f"== {dirty_file} ==" in out


class TestRepairLintGateFlags:
    def test_gate_flag_accepted(self, ff_files, capsys):
        code = main(
            [
                "repair",
                str(ff_files / "faulty.v"),
                str(ff_files / "tb.v"),
                "--golden",
                str(ff_files / "golden.v"),
                "--population",
                "120",
                "--budget",
                "60",
                "--seeds",
                "0",
                "--lint-gate",
                "--output",
                str(ff_files / "out3.v"),
            ]
        )
        assert code == 0
        assert "PLAUSIBLE" in capsys.readouterr().out

    def test_bad_gate_rules_usage_error(self, ff_files):
        with pytest.raises(SystemExit):
            main(
                ["repair", str(ff_files / "faulty.v"), str(ff_files / "tb.v"),
                 "--golden", str(ff_files / "golden.v"),
                 "--lint-gate", "--lint-gate-rules", "L999"]
            )
