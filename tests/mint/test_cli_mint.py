"""``repro mint`` / ``repro grade`` CLI: exit codes, artifacts,
determinism of the emitted summaries, and argument validation."""

import json

import pytest

from repro.cli import main


class TestMintCommand:
    def test_mint_prints_summary_and_exits_zero(self, capsys):
        assert main(["mint", "--seed", "0", "--count", "3", "--no-shrink"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("mint summary\n")
        assert "admitted:" in out

    def test_mint_out_writes_loadable_json(self, tmp_path, capsys):
        out_file = tmp_path / "minted.json"
        code = main(
            [
                "mint", "--seed", "0", "--count", "3", "--no-shrink",
                "--out", str(out_file),
            ]
        )
        assert code == 0
        capsys.readouterr()
        payload = json.loads(out_file.read_text())
        assert payload["seed"] == 0
        assert payload["requested"] == 3
        for scenario in payload["admitted"]:
            assert scenario["faulty_text"] != scenario["golden_text"]

    def test_mint_is_deterministic_across_invocations(self, capsys):
        main(["mint", "--seed", "2", "--count", "3", "--no-shrink"])
        first = capsys.readouterr().out
        main(["mint", "--seed", "2", "--count", "3", "--no-shrink"])
        second = capsys.readouterr().out
        assert first == second

    def test_mint_trace_is_written(self, tmp_path, capsys):
        trace = tmp_path / "mint.jsonl"
        main(
            [
                "mint", "--seed", "0", "--count", "2", "--no-shrink",
                "--trace", str(trace),
            ]
        )
        capsys.readouterr()
        kinds = {
            json.loads(line)["type"]
            for line in trace.read_text().splitlines()
        }
        assert "mint_run_completed" in kinds

    def test_mint_rejects_unknown_mutator(self, capsys):
        with pytest.raises(SystemExit, match="unknown mutators"):
            main(["mint", "--count", "1", "--mutators", "bogus"])

    def test_mint_mutator_filter_applies(self, capsys):
        code = main(
            [
                "mint", "--seed", "0", "--count", "4", "--no-shrink",
                "--mutators", "negate_condition",
            ]
        )
        out = capsys.readouterr().out
        if code == 0:
            assert "negate_condition" in out
            for other in ("off_by_one", "stuck_constant", "wrong_operator"):
                assert other not in out


class TestGradeCommand:
    def test_grade_summary_and_out_file(self, tmp_path, capsys):
        out_file = tmp_path / "summary.txt"
        code = main(
            [
                "grade", "--seed", "0", "--count", "3", "--max-scenarios", "1",
                "--out", str(out_file),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("minted grading summary\n")
        assert out_file.read_text() == out

    def test_grade_json_out(self, tmp_path, capsys):
        json_file = tmp_path / "summary.json"
        main(
            [
                "grade", "--seed", "0", "--count", "3", "--max-scenarios", "1",
                "--json-out", str(json_file),
            ]
        )
        capsys.readouterr()
        payload = json.loads(json_file.read_text())
        assert payload["engine"] == "cirfix"
        assert payload["scenarios"] == 1

    def test_grade_rejects_unknown_engine(self, capsys):
        # --engine choices come straight from the registry, so argparse
        # rejects unknown names before any work starts.
        with pytest.raises(SystemExit):
            main(["grade", "--count", "1", "--engine", "bogus"])
        err = capsys.readouterr().err
        assert "invalid choice: 'bogus'" in err
        assert "cirfix" in err and "synth" in err
