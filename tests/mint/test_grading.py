"""Grading harness: ground-truth matching, per-mutator aggregation,
byte-stable reports, engine validation, and telemetry emission."""

import json

import pytest

from repro.mint import (
    MintConfig,
    grade_scenarios,
    ground_truth_match,
    mint_scenarios,
)
from repro.obs import (
    MintedGradingCompleted,
    MintedScenarioGraded,
    MintRunCompleted,
    MintScenarioAdmitted,
)
from repro.obs.events import event_from_dict


@pytest.fixture(scope="module")
def minted():
    report = mint_scenarios(MintConfig(seed=0, count=5, shrink_rejected=False))
    assert report.admitted
    return report.admitted


@pytest.fixture(scope="module")
def graded(minted):
    return grade_scenarios(minted, seed=0, seeds=(0,))


class TestGroundTruthMatch:
    def test_matches_modulo_node_ids(self):
        text = "module t(o); output o; assign o = 1'd1; endmodule"
        assert ground_truth_match(text, text)
        assert ground_truth_match(text, "  " + text.replace("; ", ";\n"))

    def test_detects_differences(self):
        a = "module t(o); output o; assign o = 1'd1; endmodule"
        b = "module t(o); output o; assign o = 1'd0; endmodule"
        assert not ground_truth_match(a, b)

    def test_none_and_garbage_are_false(self):
        golden = "module t; endmodule"
        assert not ground_truth_match(None, golden)
        assert not ground_truth_match("not verilog $$$", golden)


class TestGrading:
    def test_one_grade_per_scenario(self, minted, graded):
        assert len(graded.results) == len(minted)
        assert [r.scenario_id for r in graded.results] == [
            s.scenario_id for s in minted
        ]

    def test_grades_are_monotone(self, graded):
        # ground-truth ⊆ correct ⊆ plausible, per scenario and in total.
        for r in graded.results:
            if r.ground_truth_match:
                assert r.plausible
            if r.correct:
                assert r.plausible
        n = len(graded.results)
        assert graded.ground_truth_matches <= n
        assert graded.correct <= graded.plausible <= n

    def test_by_mutator_totals_add_up(self, graded):
        totals = graded.by_mutator()
        assert sum(t for t, _, _, _ in totals.values()) == len(graded.results)
        assert sum(p for _, p, _, _ in totals.values()) == graded.plausible

    def test_eval_sims_are_positive(self, graded):
        for r in graded.results:
            assert r.eval_sims > 0

    def test_unknown_engine_fails_fast(self, minted):
        with pytest.raises(ValueError, match="unknown repair engine"):
            grade_scenarios(minted[:1], engine="bogus")


class TestReportStability:
    def test_same_inputs_same_bytes(self, minted, graded):
        again = grade_scenarios(minted, seed=0, seeds=(0,))
        assert again.to_text() == graded.to_text()
        assert again.to_json() == graded.to_json()

    def test_text_shape(self, graded):
        text = graded.to_text()
        assert text.startswith("minted grading summary\n")
        assert text.endswith("\n")
        assert "elapsed" not in text
        assert f"scenarios: {len(graded.results)}" in text

    def test_json_no_wall_clock(self, graded):
        payload = json.loads(graded.to_json())
        assert "elapsed_seconds" not in payload
        assert payload["scenarios"] == len(graded.results)
        assert payload["plausible"] == graded.plausible


class TestTelemetry:
    def test_mint_and_grade_emit_events(self, minted):
        events = []

        class Collector:
            def on_event(self, event):
                events.append(event)

            def close(self):
                pass

        mint_scenarios(
            MintConfig(seed=0, count=2, shrink_rejected=False),
            observers=[Collector()],
        )
        kinds = {type(e) for e in events}
        assert MintRunCompleted in kinds
        assert MintScenarioAdmitted in kinds

        events.clear()
        grade_scenarios(minted[:1], seeds=(0,), observers=[Collector()])
        kinds = {type(e) for e in events}
        assert MintedScenarioGraded in kinds
        assert MintedGradingCompleted in kinds

    def test_mint_events_round_trip_as_dicts(self, minted):
        events = []

        class Collector:
            def on_event(self, event):
                events.append(event)

            def close(self):
                pass

        grade_scenarios(minted[:1], seeds=(0,), observers=[Collector()])
        for event in events:
            clone = event_from_dict(event.to_dict())
            assert clone == event
