"""Mutator catalog contracts: deterministic sites, seeded replayable
applies, and every rewrite yields parseable Verilog that differs from
the golden text."""

import random

import pytest

from repro.hdl import ast, generate, parse
from repro.mint import MUTATORS

DESIGN = """
module m(clk, rst, sel, q, w);
  input clk, rst, sel;
  output reg [3:0] q;
  output [3:0] w;
  reg [3:0] shadow;
  assign w = sel ? (q & 4'b0011) : (q | 4'b1100);
  always @(posedge clk or posedge rst) begin
    if (rst) q <= 0;
    else if (q < 4'd9) q <= q + 1;
  end
  always @(posedge clk) begin
    shadow <= q;
  end
endmodule
"""


@pytest.fixture()
def source():
    return parse(DESIGN)


class TestCatalog:
    def test_all_six_families_registered(self):
        assert set(MUTATORS) == {
            "negate_condition",
            "off_by_one",
            "wrong_operator",
            "drop_sens_edge",
            "misassigned_signal",
            "stuck_constant",
        }

    def test_labels_and_categories(self):
        for mutator in MUTATORS.values():
            assert mutator.label
            assert mutator.category in (1, 2)
        assert MUTATORS["misassigned_signal"].category == 2
        assert MUTATORS["stuck_constant"].category == 2

    def test_every_mutator_finds_sites_on_the_probe_design(self, source):
        for name, mutator in MUTATORS.items():
            assert mutator.sites(source), f"{name} found no sites"


class TestDeterminism:
    def test_sites_are_deterministic_per_tree(self, source):
        for mutator in MUTATORS.values():
            assert mutator.sites(source) == mutator.sites(source)

    def test_seeded_apply_replays_identically(self, source):
        for name, mutator in MUTATORS.items():
            site = mutator.sites(source)[0]
            first = source.clone()
            second = source.clone()
            desc_a = mutator.apply(first, site, random.Random(5))
            desc_b = mutator.apply(second, site, random.Random(5))
            assert desc_a == desc_b, name
            if desc_a is not None:
                assert generate(first) == generate(second), name


class TestRewrites:
    def test_applied_mutants_parse_and_differ(self, source):
        golden_text = generate(source)
        for name, mutator in MUTATORS.items():
            mutated = False
            for site in mutator.sites(source):
                clone = source.clone()
                description = mutator.apply(clone, site, random.Random(0))
                if description is None:
                    continue
                buggy = generate(clone)
                assert buggy != golden_text, f"{name}@{site} was a no-op"
                parse(buggy)  # must still be legal Verilog
                mutated = True
                break
            assert mutated, f"{name} refused every site"

    def test_negate_condition_round_trips(self, source):
        mutator = MUTATORS["negate_condition"]
        site = mutator.sites(source)[0]
        clone = source.clone()
        description = mutator.apply(clone, site, random.Random(0))
        assert "negated" in description
        node = clone.find(site)
        assert isinstance(node.cond, ast.UnaryOp) and node.cond.op == "!"
        # Applying again at the same site removes the negation.
        description = mutator.apply(clone, site, random.Random(0))
        assert "removed the negation" in description

    def test_off_by_one_respects_width_mask(self):
        source = parse(
            "module t(o); output [3:0] o; assign o = 4'b1111; endmodule"
        )
        mutator = MUTATORS["off_by_one"]
        for site in mutator.sites(source):
            clone = source.clone()
            description = mutator.apply(clone, site, random.Random(1))
            if description is None:
                continue
            for node in clone.walk():
                if isinstance(node, ast.Number) and node.width is not None:
                    assert node.aval < (1 << node.width)

    def test_drop_sens_edge_flips_single_edge(self):
        source = parse(
            "module t(clk, q); input clk; output reg q;"
            " always @(posedge clk) q <= ~q; endmodule"
        )
        mutator = MUTATORS["drop_sens_edge"]
        sites = mutator.sites(source)
        assert len(sites) == 1
        clone = source.clone()
        description = mutator.apply(clone, sites[0], random.Random(0))
        assert description == "sensitivity edge flipped: posedge became negedge"
        assert "negedge clk" in generate(clone)

    def test_drop_sens_edge_drops_from_multi_item_list(self, source):
        mutator = MUTATORS["drop_sens_edge"]
        # The first always block has two edges; dropping leaves one.
        site = mutator.sites(source)[0]
        clone = source.clone()
        description = mutator.apply(clone, site, random.Random(0))
        assert description.startswith("dropped '")
        assert len(clone.find(site).senslist.items) == 1

    def test_stuck_constant_refuses_when_already_that_constant(self):
        # A constant-rhs assign is never a *site* (sites need an
        # identifier in the rhs), so drive apply() directly to pin the
        # no-op guard: stuck-at-1 on an already-constant-1 assign.
        source = parse("module t(o); output o; assign o = 1'd1; endmodule")
        mutator = MUTATORS["stuck_constant"]
        assign = next(
            n for n in source.walk() if isinstance(n, ast.ContinuousAssign)
        )

        class PickOne(random.Random):
            def choice(self, seq):
                return 1

        assert mutator.apply(source.clone(), assign.node_id, PickOne()) is None

    def test_misassigned_signal_never_creates_self_assignment(self, source):
        mutator = MUTATORS["misassigned_signal"]
        for seed in range(8):
            for site in mutator.sites(source):
                clone = source.clone()
                if mutator.apply(clone, site, random.Random(seed)) is None:
                    continue
                node = clone.find(site)
                lhs = node.lhs
                while isinstance(lhs, (ast.Index, ast.PartSelect)):
                    lhs = lhs.target
                rhs_names = {
                    n.name
                    for n in node.rhs.walk()
                    if isinstance(n, ast.Identifier)
                }
                if isinstance(lhs, ast.Identifier):
                    assert lhs.name not in rhs_names
