"""Factory contracts: deterministic minting, the ground-truth guarantee
(golden restores fitness 1.0 on every admitted scenario), observability
gating, rejection bookkeeping, and byte-stable reports."""

import json

import pytest

from repro.core.backend import evaluate_design_text
from repro.core.oracle import ensure_instrumented, generate_oracle
from repro.hdl import parse
from repro.mint import (
    MUTATORS,
    REJECT_REASONS,
    MintConfig,
    MintedScenario,
    mint_scenarios,
)
from repro.mint.factory import _BENCH_EVAL_CONFIG
from repro.fuzz.oracles import FUZZ_EVAL_CONFIG


@pytest.fixture(scope="module")
def report():
    """One shared mint run, big enough to exercise every code path."""
    return mint_scenarios(MintConfig(seed=0, count=12, shrink_budget=32))


class TestConfigValidation:
    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="count"):
            mint_scenarios(MintConfig(count=-1))

    def test_unknown_mutator_rejected(self):
        with pytest.raises(ValueError, match="unknown mutators"):
            mint_scenarios(MintConfig(mutators=("negate_condition", "bogus")))

    def test_unknown_source_rejected(self):
        with pytest.raises(ValueError, match="sources"):
            mint_scenarios(MintConfig(sources=("fuzz", "mars")))

    def test_bench_percent_range(self):
        with pytest.raises(ValueError, match="bench_percent"):
            mint_scenarios(MintConfig(bench_percent=101))

    def test_unknown_bench_project_rejected(self):
        with pytest.raises(ValueError, match="unknown bench projects"):
            mint_scenarios(MintConfig(bench_projects=("counter", "nope")))


class TestAdmission:
    def test_attempts_are_accounted_for(self, report):
        assert len(report.admitted) + len(report.rejected) == report.requested

    def test_admitted_defects_are_observable(self, report):
        for scenario in report.admitted:
            assert scenario.faulty_fitness < 1.0
            assert scenario.faulty_text != scenario.golden_text

    def test_rejection_reasons_are_registered(self, report):
        for rejected in report.rejected:
            assert rejected.reason in REJECT_REASONS

    def test_scenario_ids_embed_seed_index_mutator(self, report):
        for index, scenario in enumerate(report.admitted):
            assert scenario.scenario_id.startswith("minted_0_")
            assert scenario.scenario_id.endswith(scenario.mutator)
        assert len({s.scenario_id for s in report.admitted}) == len(report.admitted)

    def test_mutator_metadata_matches_catalog(self, report):
        for scenario in report.admitted:
            mutator = MUTATORS[scenario.mutator]
            assert scenario.label == mutator.label
            assert scenario.category == mutator.category


class TestGroundTruth:
    def test_golden_restores_fitness_on_every_admitted_scenario(self, report):
        """The minted guarantee: the ground-truth patch (the golden
        design) scores fitness 1.0 against the scenario's own oracle."""
        for scenario in report.admitted:
            golden = parse(scenario.golden_text)
            bench = ensure_instrumented(parse(scenario.testbench_text), golden)
            eval_config = (
                FUZZ_EVAL_CONFIG if scenario.source == "fuzz" else _BENCH_EVAL_CONFIG
            )
            oracle = generate_oracle(
                golden,
                bench,
                max_sim_time=eval_config.max_sim_time,
                max_sim_steps=eval_config.max_sim_steps,
            )
            result = evaluate_design_text(
                scenario.golden_text, bench, oracle, eval_config
            )
            assert result.compiled
            assert result.fitness >= 1.0, scenario.scenario_id


class TestDeterminism:
    def test_same_seed_same_report(self, report):
        again = mint_scenarios(MintConfig(seed=0, count=12, shrink_budget=32))
        assert again.to_text() == report.to_text()
        assert again.to_json() == report.to_json()

    def test_different_seed_different_scenarios(self, report):
        other = mint_scenarios(MintConfig(seed=1, count=12, shrink_budget=32))
        ours = {s.faulty_text for s in report.admitted}
        theirs = {s.faulty_text for s in other.admitted}
        assert ours != theirs

    def test_reports_never_leak_wall_clock(self, report):
        assert "elapsed" not in report.to_text()
        assert "elapsed" not in report.to_json()
        assert report.elapsed_seconds > 0  # tracked, just not serialized


class TestScenarioAdapter:
    def test_round_trips_through_dict(self, report):
        for scenario in report.admitted[:3]:
            clone = MintedScenario.from_dict(scenario.to_dict())
            assert clone == scenario

    def test_json_payload_reconstructs_scenarios(self, report):
        payload = json.loads(report.to_json())
        rebuilt = [MintedScenario.from_dict(d) for d in payload["admitted"]]
        assert rebuilt == report.admitted

    def test_to_scenario_preserves_texts_and_category(self, report):
        scenario = report.admitted[0]
        adapted = scenario.to_scenario()
        assert adapted.scenario_id == scenario.scenario_id
        assert adapted.faulty_design_text == scenario.faulty_text
        assert adapted.project.design_text == scenario.golden_text
        assert adapted.category == scenario.category


class TestSourcesKnob:
    def test_fuzz_only(self):
        report = mint_scenarios(
            MintConfig(seed=3, count=4, sources=("fuzz",), shrink_rejected=False)
        )
        assert {s.source for s in report.admitted} <= {"fuzz"}

    def test_bench_only(self):
        report = mint_scenarios(
            MintConfig(seed=3, count=4, sources=("bench",), shrink_rejected=False)
        )
        assert {s.source for s in report.admitted} <= {"bench"}
        for scenario in report.admitted:
            assert scenario.base in MintConfig().bench_projects
