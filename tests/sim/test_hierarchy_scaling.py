"""Hierarchy stress: deep and wide instance trees elaborate and simulate
correctly (the paper's large cores instantiate sub-modules; tate_pairing's
defects live in the instantiation layer)."""

from repro.hdl import parse
from repro.sim import Simulator

FULL_ADDER = """
module full_adder(a, b, cin, s, cout);
  input a, b, cin;
  output s, cout;
  assign s = a ^ b ^ cin;
  assign cout = (a & b) | (a & cin) | (b & cin);
endmodule
"""


def ripple_adder(width):
    """Generate an N-bit ripple-carry adder from full_adder instances."""
    lines = [
        FULL_ADDER,
        f"module ripple(x, y, sum);",
        f"  input [{width - 1}:0] x;",
        f"  input [{width - 1}:0] y;",
        f"  output [{width}:0] sum;",
        f"  wire [{width}:0] carry;",
        "  assign carry[0] = 1'b0;",
        f"  assign sum[{width}] = carry[{width}];",
    ]
    for i in range(width):
        lines.append(
            f"  full_adder fa{i}(.a(x[{i}]), .b(y[{i}]), .cin(carry[{i}]),"
            f" .s(sum[{i}]), .cout(carry[{i + 1}]));"
        )
    lines.append("endmodule")
    return "\n".join(lines)


class TestWideHierarchy:
    def test_16_bit_ripple_adder(self):
        source = ripple_adder(16) + """
        module tb;
          reg [15:0] x, y;
          wire [16:0] sum;
          ripple dut(.x(x), .y(y), .sum(sum));
          initial begin
            x = 16'd40000; y = 16'd30000;
            #2;
            $display("%0d", sum);
            x = 16'hFFFF; y = 16'h0001;
            #2;
            $display("%0d", sum);
            $finish;
          end
        endmodule
        """
        result = Simulator(parse(source)).run(100)
        assert result.finished
        assert result.output == ["70000", "65536"]

    def test_instance_count(self):
        source = ripple_adder(16) + "\nmodule tb; wire [16:0] s; reg [15:0] a, b; ripple d(.x(a), .y(b), .sum(s)); initial #1 $finish; endmodule"
        sim = Simulator(parse(source))
        dut = sim.top.children["d"]
        assert len(dut.children) == 16


class TestDeepHierarchy:
    def test_eight_level_nesting(self):
        """inv_0 wraps inv_1 wraps ... an actual inverter at the bottom."""
        parts = ["module inv_7(input i, output o); assign o = !i; endmodule"]
        for level in range(6, -1, -1):
            parts.append(
                f"module inv_{level}(input i, output o);"
                f" inv_{level + 1} inner(.i(i), .o(o)); endmodule"
            )
        parts.append(
            """
            module tb;
              reg v;
              wire out;
              inv_0 chain(.i(v), .o(out));
              initial begin
                v = 0;
                #2;
                if (out == 1'b1) $display("inverted");
                $finish;
              end
            endmodule
            """
        )
        result = Simulator(parse("\n".join(parts))).run(100)
        assert result.finished
        assert result.output == ["inverted"]

    def test_signal_path_through_depth(self):
        parts = ["module inv_3(input i, output o); assign o = !i; endmodule"]
        for level in (2, 1, 0):
            parts.append(
                f"module inv_{level}(input i, output o);"
                f" inv_{level + 1} inner(.i(i), .o(o)); endmodule"
            )
        parts.append(
            "module tb; reg v; wire o; inv_0 c(.i(v), .o(o));"
            " initial begin v = 1; #1 $finish; end endmodule"
        )
        sim = Simulator(parse("\n".join(parts)))
        sim.run(100)
        deep = sim.signal("c.inner.inner.inner.o")
        assert deep.value.to_int() == 0
