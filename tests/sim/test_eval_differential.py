"""Differential property tests: the 4-state evaluator vs a Python reference.

For expressions over fully-defined unsigned operands, Verilog semantics
reduce to modular integer arithmetic at the result width.  Hypothesis
generates random expression trees; we evaluate each both through the
simulator's evaluator and through a direct Python model, and the results
must agree bit-for-bit.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import parse
from repro.sim.eval import eval_expr
from repro.sim.logic import Value
from repro.sim.processes import Env
from repro.sim.simulator import Simulator

WIDTH = 8
MASK = (1 << WIDTH) - 1

SCRATCH = """
module scratch;
  reg [7:0] va;
  reg [7:0] vb;
  reg [7:0] vc;
endmodule
"""


def _env():
    sim = Simulator(parse(SCRATCH))
    sim.run(0)
    return sim, Env(sim, sim.top)


_SIM, _ENV = None, None


def env_with(values):
    global _SIM, _ENV
    if _ENV is None:
        _SIM, _ENV = _env()
    for name, value in values.items():
        _SIM.top.signals[name].value = Value.from_int(value, WIDTH)
    return _ENV


# ----------------------------------------------------------------------
# Expression model: (source fragment, reference function)
# ----------------------------------------------------------------------


def leaf_var(name):
    return (name, lambda vals: vals[name])


def leaf_const(value):
    return (f"8'd{value}", lambda vals: value & MASK)


def binop(op, ref):
    def build(left, right):
        ltext, lref = left
        rtext, rref = right
        return (f"({ltext} {op} {rtext})", lambda vals: ref(lref(vals), rref(vals)) & MASK)

    return build


_BINOPS = [
    binop("+", lambda a, b: a + b),
    binop("-", lambda a, b: a - b),
    binop("*", lambda a, b: a * b),
    binop("&", lambda a, b: a & b),
    binop("|", lambda a, b: a | b),
    binop("^", lambda a, b: a ^ b),
]


def unop_not(operand):
    text, ref = operand
    return (f"(~{text})", lambda vals: (~ref(vals)) & MASK)


def exprs(depth=3):
    leaves = st.one_of(
        st.sampled_from(["va", "vb", "vc"]).map(leaf_var),
        st.integers(min_value=0, max_value=MASK).map(leaf_const),
    )
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.tuples(st.sampled_from(_BINOPS), children, children).map(
                lambda t: t[0](t[1], t[2])
            ),
            children.map(unop_not),
        ),
        max_leaves=8,
    )


@given(
    expr=exprs(),
    va=st.integers(min_value=0, max_value=MASK),
    vb=st.integers(min_value=0, max_value=MASK),
    vc=st.integers(min_value=0, max_value=MASK),
)
@settings(max_examples=300, deadline=None)
def test_defined_expressions_match_python_reference(expr, va, vb, vc):
    text, ref = expr
    values = {"va": va, "vb": vb, "vc": vc}
    scope = env_with(values)
    from repro.hdl.lexer import tokenize
    from repro.hdl.parser import Parser

    tree = Parser(tokenize(text)).parse_expr()
    result = eval_expr(tree, scope, ctx_width=WIDTH)
    assert result.is_fully_defined
    assert result.aval & MASK == ref(values), text


@given(
    va=st.integers(min_value=0, max_value=MASK),
    vb=st.integers(min_value=0, max_value=MASK),
)
@settings(max_examples=100, deadline=None)
def test_comparison_agrees_with_python(va, vb):
    scope = env_with({"va": va, "vb": vb, "vc": 0})
    from repro.hdl.lexer import tokenize
    from repro.hdl.parser import Parser

    for op in ("==", "!=", "<", "<=", ">", ">="):
        tree = Parser(tokenize(f"va {op} vb")).parse_expr()
        result = eval_expr(tree, scope)
        expected = {
            "==": va == vb,
            "!=": va != vb,
            "<": va < vb,
            "<=": va <= vb,
            ">": va > vb,
            ">=": va >= vb,
        }[op]
        assert result.to_int() == int(expected), op


@given(
    va=st.integers(min_value=0, max_value=MASK),
    shift=st.integers(min_value=0, max_value=15),
)
@settings(max_examples=100, deadline=None)
def test_shifts_agree_with_python(va, shift):
    scope = env_with({"va": va, "vb": 0, "vc": 0})
    from repro.hdl.lexer import tokenize
    from repro.hdl.parser import Parser

    left = eval_expr(Parser(tokenize(f"va << {shift}")).parse_expr(), scope, ctx_width=WIDTH)
    right = eval_expr(Parser(tokenize(f"va >> {shift}")).parse_expr(), scope)
    assert left.aval == (va << shift) & MASK
    assert right.aval == va >> shift
