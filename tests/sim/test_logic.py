"""Four-state value tests, including property-based invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.logic import Value, truthiness


def bitstrings(max_width=16):
    return st.text(alphabet="01xz", min_size=1, max_size=max_width)


class TestConstruction:
    def test_from_int_masks_to_width(self):
        assert Value.from_int(0x1F, 4).aval == 0xF

    def test_from_int_negative_wraps(self):
        assert Value.from_int(-1, 4).aval == 0xF

    def test_unknown_all_x(self):
        v = Value.unknown(3)
        assert v.to_bit_string() == "xxx"

    def test_high_z(self):
        assert Value.high_z(2).to_bit_string() == "zz"

    def test_from_string_msb_first(self):
        v = Value.from_string("10xz")
        assert v.bit(3) == "1"
        assert v.bit(2) == "0"
        assert v.bit(1) == "x"
        assert v.bit(0) == "z"

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            Value(0, 0)

    def test_invalid_bit_char_rejected(self):
        with pytest.raises(ValueError):
            Value.from_string("10a")


class TestInspection:
    def test_fully_defined(self):
        assert Value.from_int(5, 4).is_fully_defined
        assert not Value.unknown(4).is_fully_defined

    def test_to_int_ignores_xz_bits(self):
        v = Value.from_string("1x1")
        assert v.to_int() == 0b101

    def test_signed_to_int(self):
        v = Value.from_int(0b1111, 4, signed=True)
        assert v.to_int() == -1

    def test_to_signed_int_always_twos_complement(self):
        assert Value.from_int(0b1000, 4).to_signed_int() == -8

    def test_out_of_range_bit_reads_x(self):
        assert Value.from_int(1, 2).bit(5) == "x"

    def test_decimal_string(self):
        assert Value.from_int(10, 8).to_decimal_string() == "10"
        assert Value.unknown(8).to_decimal_string() == "x"
        assert Value.high_z(8).to_decimal_string() == "z"
        assert Value.from_string("1x").to_decimal_string() == "X"

    def test_hex_string_per_nibble(self):
        assert Value.from_int(0xA5, 8).to_hex_string() == "a5"
        assert Value.from_string("xxxx0001").to_hex_string() == "x1"


class TestResize:
    def test_zero_extension(self):
        assert Value.from_int(0b11, 2).resized(4).to_bit_string() == "0011"

    def test_sign_extension(self):
        v = Value.from_int(0b10, 2, signed=True)
        assert v.resized(4).to_bit_string() == "1110"

    def test_x_extension(self):
        assert Value.from_string("x1").resized(4).to_bit_string() == "xxx1"

    def test_z_extension(self):
        assert Value.from_string("z0").resized(4).to_bit_string() == "zzz0"

    def test_truncation(self):
        assert Value.from_int(0b1101, 4).resized(2).to_bit_string() == "01"


class TestSelectsAndConcat:
    def test_select_range(self):
        v = Value.from_int(0b11010010, 8)
        assert v.select_range(7, 4).to_bit_string() == "1101"

    def test_select_range_out_of_bounds_pads_x(self):
        v = Value.from_int(0b11, 2)
        assert v.select_range(3, 0).to_bit_string() == "xx11"

    def test_with_bits(self):
        v = Value.from_int(0, 8).with_bits(5, 2, Value.from_int(0b1111, 4))
        assert v.to_bit_string() == "00111100"

    def test_concat(self):
        high = Value.from_int(0b10, 2)
        low = Value.from_int(0b01, 2)
        assert high.concat(low).to_bit_string() == "1001"

    def test_same_state_width_extension(self):
        assert Value.from_int(1, 1).same_state(Value.from_int(1, 8))
        assert not Value.unknown(1).same_state(Value.from_int(1, 1))


class TestTruthiness:
    def test_any_one_is_true(self):
        assert truthiness(Value.from_string("0x1")) == "true"

    def test_all_zero_is_false(self):
        assert truthiness(Value.from_int(0, 4)) == "false"

    def test_x_without_ones_is_x(self):
        assert truthiness(Value.from_string("0x0")) == "x"
        assert truthiness(Value.high_z(3)) == "x"


class TestProperties:
    @given(bitstrings())
    def test_string_roundtrip(self, bits):
        assert Value.from_string(bits).to_bit_string() == bits

    @given(bitstrings(), st.integers(min_value=1, max_value=24))
    def test_resize_preserves_low_bits(self, bits, width):
        v = Value.from_string(bits)
        resized = v.resized(width)
        for i in range(min(v.width, width)):
            assert resized.bit(i) == v.bit(i)

    @given(bitstrings(8), bitstrings(8))
    def test_concat_width_and_parts(self, a, b):
        va, vb = Value.from_string(a), Value.from_string(b)
        joined = va.concat(vb)
        assert joined.width == va.width + vb.width
        assert joined.to_bit_string() == a + b

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_int_roundtrip(self, value):
        assert Value.from_int(value, 16).to_int() == value

    @given(bitstrings())
    def test_hash_eq_consistency(self, bits):
        v1 = Value.from_string(bits)
        v2 = Value.from_string(bits)
        assert v1 == v2
        assert hash(v1) == hash(v2)


class TestInterning:
    """from_int(0/1) / unknown / high_z return shared per-width instances."""

    def test_zero_and_one_interned(self):
        assert Value.from_int(0, 8) is Value.from_int(0, 8)
        assert Value.from_int(1, 8) is Value.from_int(1, 8)
        assert Value.from_int(0, 8) is not Value.from_int(0, 9)

    def test_wrapping_hits_the_cache(self):
        assert Value.from_int(256, 8) is Value.from_int(0, 8)
        assert Value.from_int(257, 8) is Value.from_int(1, 8)

    def test_unknown_and_high_z_interned(self):
        assert Value.unknown(5) is Value.unknown(5)
        assert Value.high_z(5) is Value.high_z(5)
        assert Value.unknown(5) is not Value.unknown(6)

    def test_signed_values_not_interned(self):
        signed = Value.from_int(1, 8, signed=True)
        assert signed.signed
        assert signed is not Value.from_int(1, 8)
        assert not Value.from_int(1, 8).signed

    def test_interned_values_correct(self):
        assert Value.from_int(0, 4).to_bit_string() == "0000"
        assert Value.from_int(1, 4).to_bit_string() == "0001"
        assert Value.unknown(4).to_bit_string() == "xxxx"
        assert Value.high_z(4).to_bit_string() == "zzzz"

    def test_huge_widths_bypass_cache(self):
        import repro.sim.logic as logic

        wide = logic._INTERN_MAX_WIDTH + 1
        assert Value.unknown(wide) is not Value.unknown(wide)
