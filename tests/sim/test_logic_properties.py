"""Exhaustive 4-state truth tables for the logic/eval layer (ISSUE 3).

Checks :mod:`repro.sim.logic` + :mod:`repro.sim.eval` against reference
semantics computed here from the IEEE-1364 tables: bitwise ops via the
per-bit tables, logical ops via 3-valued truthiness, reductions by
folding, arithmetic/relational with the all-x-on-undefined rule.  The
sweeps are exhaustive over all 4-state values at widths 1-4 for the
unary/bitwise families and over all fully-defined pairs (plus x/z
injection cases) for arithmetic/relational ops.

The algebraic-property sweeps themselves live in
:mod:`repro.fuzz.logic_props` (shared with the ``repro fuzz`` oracle
battery); this file pins them into tier-1 and adds the direct
truth-table comparisons.
"""

import pytest

from repro.fuzz.logic_props import (
    COMMUTATIVE_OPS,
    MONOTONE_BINARY_OPS,
    MONOTONE_UNARY_OPS,
    _binary,
    _unary,
    all_values,
    check_logic_properties,
    refinements,
)
from repro.sim.logic import Value

# ----------------------------------------------------------------------
# Reference semantics (IEEE 1364-2005 tables, independently re-derived)
# ----------------------------------------------------------------------

#: IEEE Table 5-1/5-2 style per-bit tables ('x' covers z inputs: any
#: z participating in a bitwise op behaves as x).
AND_TABLE = {
    ("0", "0"): "0", ("0", "1"): "0", ("0", "x"): "0",
    ("1", "0"): "0", ("1", "1"): "1", ("1", "x"): "x",
    ("x", "0"): "0", ("x", "1"): "x", ("x", "x"): "x",
}
OR_TABLE = {
    ("0", "0"): "0", ("0", "1"): "1", ("0", "x"): "x",
    ("1", "0"): "1", ("1", "1"): "1", ("1", "x"): "1",
    ("x", "0"): "x", ("x", "1"): "1", ("x", "x"): "x",
}
XOR_TABLE = {
    ("0", "0"): "0", ("0", "1"): "1", ("0", "x"): "x",
    ("1", "0"): "1", ("1", "1"): "0", ("1", "x"): "x",
    ("x", "0"): "x", ("x", "1"): "x", ("x", "x"): "x",
}


def _norm(bit: str) -> str:
    """z behaves as x inside logical/bitwise operations."""
    return "x" if bit in "xz" else bit


def _ref_bitwise(table, a: Value, b: Value) -> str:
    width = max(a.width, b.width)
    abits = a.to_bit_string().rjust(width, "0")
    bbits = b.to_bit_string().rjust(width, "0")
    return "".join(
        table[(_norm(x), _norm(y))] for x, y in zip(abits, bbits)
    )


def _truthiness(v: Value) -> str:
    """'1', '0', or 'x' per the conditional-evaluation rules."""
    bits = [_norm(b) for b in v.to_bit_string()]
    if "1" in bits:
        return "1"
    if all(b == "0" for b in bits):
        return "0"
    return "x"


WIDTHS = (1, 2, 3, 4)


def _values(width):
    return list(all_values(width))


def _defined_values(width):
    return [v for v in _values(width) if v.bval == 0]


def _all_undefined(v: Value) -> bool:
    return all(bit in "xz" for bit in v.to_bit_string())


# ----------------------------------------------------------------------
# Bitwise ops: exhaustive 4-state at widths 1-4
# ----------------------------------------------------------------------


class TestBitwiseTruthTables:
    @pytest.mark.parametrize("width", WIDTHS)
    @pytest.mark.parametrize(
        "op,table", [("&", AND_TABLE), ("|", OR_TABLE), ("^", XOR_TABLE)]
    )
    def test_exhaustive(self, width, op, table):
        for a in _values(width):
            for b in _values(width):
                got = _binary(op, a, b).to_bit_string()
                assert got == _ref_bitwise(table, a, b), (op, str(a), str(b))

    @pytest.mark.parametrize("width", WIDTHS)
    def test_xnor_is_negated_xor(self, width):
        for a in _values(width):
            for b in _values(width):
                xor = _binary("^", a, b)
                xnor = _binary("~^", a, b)
                expected = "".join(
                    {"0": "1", "1": "0", "x": "x"}[_norm(bit)]
                    for bit in xor.to_bit_string()
                )
                assert xnor.to_bit_string() == expected

    @pytest.mark.parametrize("width", WIDTHS)
    def test_complement(self, width):
        for a in _values(width):
            got = _unary("~", a).to_bit_string()
            expected = "".join(
                {"0": "1", "1": "0", "x": "x"}[_norm(bit)]
                for bit in a.to_bit_string()
            )
            assert got == expected


# ----------------------------------------------------------------------
# Reductions and logical ops
# ----------------------------------------------------------------------


class TestReductions:
    @pytest.mark.parametrize("width", WIDTHS)
    def test_reduction_and_or_xor(self, width):
        for a in _values(width):
            bits = [_norm(b) for b in a.to_bit_string()]
            expect_and = (
                "0" if "0" in bits else ("1" if all(b == "1" for b in bits) else "x")
            )
            expect_or = (
                "1" if "1" in bits else ("0" if all(b == "0" for b in bits) else "x")
            )
            if any(b == "x" for b in bits):
                expect_xor = "x"
            else:
                expect_xor = str(bits.count("1") % 2)
            assert _unary("&", a).to_bit_string() == expect_and
            assert _unary("|", a).to_bit_string() == expect_or
            assert _unary("^", a).to_bit_string() == expect_xor

    @pytest.mark.parametrize("width", WIDTHS)
    def test_logical_not(self, width):
        for a in _values(width):
            expected = {"1": "0", "0": "1", "x": "x"}[_truthiness(a)]
            assert _unary("!", a).to_bit_string() == expected

    @pytest.mark.parametrize("width", (1, 2, 3))
    def test_logical_and_or(self, width):
        for a in _values(width):
            for b in _values(width):
                ta, tb = _truthiness(a), _truthiness(b)
                if ta == "0" or tb == "0":
                    expect_and = "0"
                elif ta == "1" and tb == "1":
                    expect_and = "1"
                else:
                    expect_and = "x"
                if ta == "1" or tb == "1":
                    expect_or = "1"
                elif ta == "0" and tb == "0":
                    expect_or = "0"
                else:
                    expect_or = "x"
                assert _binary("&&", a, b).to_bit_string() == expect_and
                assert _binary("||", a, b).to_bit_string() == expect_or


# ----------------------------------------------------------------------
# Arithmetic / relational: exhaustive over defined pairs, x-poisoned
# otherwise
# ----------------------------------------------------------------------


class TestArithmeticAndCompare:
    @pytest.mark.parametrize("width", WIDTHS)
    def test_defined_arithmetic(self, width):
        mask = (1 << width) - 1
        for a in _defined_values(width):
            for b in _defined_values(width):
                assert _binary("+", a, b).to_int() & mask == (a.aval + b.aval) & mask
                assert _binary("-", a, b).to_int() & mask == (a.aval - b.aval) & mask
                assert _binary("*", a, b).to_int() & mask == (a.aval * b.aval) & mask

    @pytest.mark.parametrize("width", WIDTHS)
    def test_defined_compare(self, width):
        for a in _defined_values(width):
            for b in _defined_values(width):
                assert _binary("==", a, b).to_bit_string() == str(int(a.aval == b.aval))
                assert _binary("!=", a, b).to_bit_string() == str(int(a.aval != b.aval))
                assert _binary("<", a, b).to_bit_string() == str(int(a.aval < b.aval))
                assert _binary(">=", a, b).to_bit_string() == str(int(a.aval >= b.aval))

    @pytest.mark.parametrize("width", (1, 2, 3, 4))
    def test_undefined_operand_poisons(self, width):
        """Any x/z operand makes arithmetic all-x and ==/< single-x."""
        undefined = [v for v in _values(width) if v.bval != 0]
        defined = _defined_values(width)
        for a in undefined:
            for b in (defined[0], defined[-1], a):
                for op in ("+", "-", "*"):
                    result = _binary(op, a, b)
                    assert _all_undefined(result), (op, str(a), str(b))
                for op in ("==", "<", "<=", ">"):
                    assert _binary(op, a, b).to_bit_string() == "x"

    def test_case_equality_sees_xz(self):
        a = Value.from_string("1x0z")
        assert _binary("===", a, Value.from_string("1x0z")).to_bit_string() == "1"
        assert _binary("===", a, Value.from_string("1x00")).to_bit_string() == "0"
        assert _binary("!==", a, Value.from_string("1100")).to_bit_string() == "1"


# ----------------------------------------------------------------------
# x/z propagation edge cases
# ----------------------------------------------------------------------


class TestXZEdgeCases:
    def test_zero_annihilates_unknown(self):
        x = Value.from_string("x")
        z = Value.from_string("z")
        zero = Value.from_string("0")
        one = Value.from_string("1")
        assert _binary("&", x, zero).to_bit_string() == "0"
        assert _binary("&", z, zero).to_bit_string() == "0"
        assert _binary("|", x, one).to_bit_string() == "1"
        assert _binary("|", z, one).to_bit_string() == "1"
        assert _binary("&&", x, zero).to_bit_string() == "0"
        assert _binary("||", x, one).to_bit_string() == "1"

    def test_z_behaves_as_x_in_ops(self):
        for op in ("&", "|", "^"):
            for other in ("0", "1", "x", "z"):
                vz = _binary(op, Value.from_string("z"), Value.from_string(other))
                vx = _binary(op, Value.from_string("x"), Value.from_string(other))
                assert vz.to_bit_string() == vx.to_bit_string()

    def test_width_extension_of_xz_literal(self):
        # An x literal extended to a wider context keeps poisoning bits.
        a = Value.from_string("x").resized(4)
        assert "x" in a.to_bit_string()

    def test_shift_by_unknown_is_all_x(self):
        a = Value.from_string("1010")
        x = Value.from_string("x")
        assert _all_undefined(_binary("<<", a, x))
        assert _all_undefined(_binary(">>", a, x))


# ----------------------------------------------------------------------
# Algebraic properties (shared with the fuzz harness)
# ----------------------------------------------------------------------


class TestAlgebraicProperties:
    def test_sweep_is_clean(self):
        assert check_logic_properties(max_width=2) == []

    @pytest.mark.parametrize("op", COMMUTATIVE_OPS)
    def test_commutative_spotchecks_width3(self, op):
        values = _values(3)[::7]  # strided sample at the wider width
        for a in values:
            for b in values:
                assert _binary(op, a, b) == _binary(op, b, a)

    @pytest.mark.parametrize("op", MONOTONE_UNARY_OPS)
    def test_unary_monotone_width3(self, op):
        for a in _values(3):
            result = _unary(op, a).to_bit_string()
            for refined in refinements(a):
                got = _unary(op, refined).to_bit_string()
                for rb, gb in zip(result, got):
                    assert not (rb in "01" and gb in "01" and rb != gb)

    def test_monotone_op_list_covers_arith_and_compare(self):
        assert "+" in MONOTONE_BINARY_OPS
        assert "<" in MONOTONE_BINARY_OPS
