"""Interp-vs-compiled engine parity tests.

The compiled engine (:mod:`repro.sim.compile`) must be *bit-identical*
to the tree-walking interpreter on every observable: result surface
(time, output, trace, errors) and execution counters (statements,
scheduler events, time slots) — the repair engine's budget cut-offs
depend on the counters, so a drift there silently changes search
outcomes.  These tests pin that contract on targeted language edges;
``tests/benchsuite/test_engine_parity.py`` pins it on the full
benchmark suite and ``repro.fuzz``'s ``engines`` oracle on random
programs.
"""

import pytest

from repro.hdl import parse
from repro.sim import CompiledSimulator, Simulator


def full_key(result):
    """Every observable of a run, including counters and 4-state bits."""
    return (
        result.time,
        result.finished,
        tuple(result.output),
        tuple(result.errors),
        result.steps_used,
        result.events_executed,
        result.slots_advanced,
        tuple(
            (
                record.time,
                tuple(
                    (name, v.width, v.aval, v.bval, v.signed)
                    for name, v in record.values.items()
                ),
            )
            for record in result.trace
        ),
    )


def run_engine(engine, source, max_time=100_000, **kwargs):
    sim = engine(parse(source), **kwargs)
    return sim.run(max_time)


def assert_parity(source, max_time=100_000, **kwargs):
    interp = run_engine(Simulator, source, max_time, **kwargs)
    compiled = run_engine(CompiledSimulator, source, max_time, **kwargs)
    assert full_key(interp) == full_key(compiled)
    return interp


# Display helper: computed values are assigned to regs first so the
# expressions go through the *compiled* closures (``$display`` argument
# evaluation itself is shared interpreter code in both engines).
def wrap(body):
    return f"module t;\n{body}\nendmodule\n"


class TestEvalEdgePaths:
    """ISSUE satellite: sim/eval.py edge paths, asserted on both engines."""

    @pytest.mark.parametrize(
        "decl,expr",
        [
            # Part-select straddling x and z bits.
            ("reg [7:0] src; reg [3:0] r;", "src[5:2]"),
            ("reg [7:0] src; reg [3:0] r;", "src[7:4]"),
            # Bit-select by an x index is all-x.
            ("reg [7:0] src; reg ix; reg r;", "src[ix]"),
            # Part-select out past the MSB pads with x.
            ("reg [7:0] src; reg [9:0] r;", "src[9:0]"),
        ],
        ids=["xz-mid", "xz-high", "x-index", "oob-pad"],
    )
    def test_part_select_on_xz(self, decl, expr):
        assert_parity(wrap(
            f"""
              {decl}
              initial begin
                src = 8'b01xz_10xz;
                r = {expr};
                $display("%b", r);
                $finish;
              end
            """
        ))

    @pytest.mark.parametrize(
        "expr",
        [
            "-8'sd5 / 8'sd2",
            "-8'sd5 % 8'sd3",
            "8'shF0 >>> 2",
            "-8'sd1 > 8'sd0",
            "8'sd3 ** 8'sd2",
            "$signed(4'b1000) + 0",
        ],
        ids=["sdiv", "smod", "ashr", "scmp", "spow", "signed-cast"],
    )
    def test_signed_const_eval(self, expr):
        assert_parity(wrap(
            f"""
              integer r;
              initial begin
                r = {expr};
                $display("%0d", r);
                $finish;
              end
            """
        ))

    def test_zero_repeat_concat_operand(self):
        """A zero-count replication inside a concat errors identically."""
        assert_parity(wrap(
            """
              reg [7:0] a; reg [15:0] r;
              initial begin
                a = 8'hA5;
                r = {a, {0{a}}};
                $display("%h", r);
                $finish;
              end
            """
        ))

    def test_x_repeat_count(self):
        """An x replication count errors identically under both engines."""
        assert_parity(wrap(
            """
              reg [3:0] n; reg [7:0] r;
              initial begin
                r = {n{1'b1}};
                $display("%b", r);
                $finish;
              end
            """
        ))

    @pytest.mark.parametrize(
        "expr",
        [
            "&4'b1x11", "&4'b0x11",
            "|4'b0x00", "|4'b1x00",
            "^4'bx101", "~^4'b1x01",
            "~&4'b1111", "~|4'bzzzz",
        ],
        ids=["and-x", "and-0", "or-x", "or-1", "xor-x", "xnor-x",
             "nand", "nor-z"],
    )
    def test_reductions_over_4state(self, expr):
        assert_parity(wrap(
            f"""
              reg r;
              initial begin
                r = {expr};
                $display("%b", r);
                $finish;
              end
            """
        ))

    def test_memory_index_xz(self):
        """x-indexed memory reads are x; x-indexed writes are dropped."""
        assert_parity(wrap(
            """
              reg [7:0] mem [0:3]; reg [1:0] ix; reg [7:0] r;
              initial begin
                mem[0] = 8'h11;
                mem[ix] = 8'hFF;
                r = mem[ix];
                $display("%b %h", r, mem[0]);
                $finish;
              end
            """
        ))


class TestStatementParity:
    """Control flow, timing, and scheduling parity on both engines."""

    def test_nba_with_delay_and_loops(self):
        assert_parity(wrap(
            """
              reg clk; reg [7:0] q; integer i;
              initial clk = 0;
              always #5 clk = !clk;
              always @(posedge clk) q <= #2 q + 1;
              initial begin
                q = 0;
                for (i = 0; i < 3; i = i + 1) #1;
                repeat (2) #1;
                while (i > 0) i = i - 1;
                #40 $display("q=%0d", q);
                $finish;
              end
            """
        ))

    def test_case_and_ternary_with_x(self):
        assert_parity(wrap(
            """
              reg [1:0] sel; reg [7:0] r;
              initial begin
                casez (sel)
                  2'b0?: r = 1;
                  2'b1?: r = 2;
                  default: r = 3;
                endcase
                $display("%0d", r);
                r = sel[0] ? 8'hAA : 8'h55;
                $display("%b", r);
                $finish;
              end
            """
        ))

    def test_forever_disable_and_named_events(self):
        assert_parity(wrap(
            """
              event go; integer n;
              initial begin : main
                n = 0;
                fork_dummy;
              end
              task fork_dummy; begin n = n + 1; end endtask
              initial begin : loop
                forever begin
                  @(go) n = n + 1;
                  if (n > 2) disable loop;
                end
              end
              initial begin
                #1 -> go; #1 -> go; #1 -> go;
                #1 $display("n=%0d", n);
                $finish;
              end
            """
        ))

    def test_cont_assign_with_delay_and_feedback(self):
        assert_parity(wrap(
            """
              reg a; wire b; wire [3:0] w;
              assign #3 b = !a;
              assign w = {2{b}} + 1;
              initial begin
                a = 0; #10 a = 1;
                #10 $display("%b %b", b, w);
                $finish;
              end
            """
        ))

    def test_budget_exhaustion_is_identical(self):
        """A runaway loop exhausts the statement budget at the same point."""
        interp = run_engine(
            Simulator,
            wrap("reg r; initial forever r = !r;"),
            max_steps=500,
        )
        compiled = run_engine(
            CompiledSimulator,
            wrap("reg r; initial forever r = !r;"),
            max_steps=500,
        )
        assert full_key(interp) == full_key(compiled)
        assert interp.errors  # the budget actually tripped

    def test_hierarchy_and_parameters(self):
        assert_parity(
            """
            module child #(parameter W = 4) (input [W-1:0] i, output [W-1:0] o);
              assign o = i + 1;
            endmodule
            module t;
              reg [3:0] a; wire [3:0] b; wire [7:0] c;
              child u0(a, b);
              child #(8) u1({a, a}, c);
              initial begin
                a = 3;
                #1 $display("%0d %0d", b, c);
                $finish;
              end
            endmodule
            """
        )

    def test_functions_and_system_functions(self):
        assert_parity(wrap(
            """
              function [7:0] double; input [7:0] v; double = v * 2; endfunction
              reg [7:0] r; integer t;
              initial begin
                r = double(21);
                t = $time;
                #5 t = $time;
                $display("%0d %0d", r, t);
                $finish;
              end
            """
        ))

    def test_random_stream_is_shared(self):
        """$random draws from the same deterministic stream."""
        src = wrap(
            """
              integer a, b;
              initial begin
                a = $random; b = $random;
                $display("%0d %0d", a, b);
                $finish;
              end
            """
        )
        assert_parity(src)


class TestTemplateSharing:
    """The shared-cache path reuses testbench templates across candidates."""

    def test_shared_cache_is_populated_and_reused(self):
        source = parse(wrap(
            """
              reg clk; integer n;
              initial begin n = 0; clk = 0; end
              always #5 clk = !clk;
              always @(posedge clk) n = n + 1;
              initial #42 $finish;
            """
        ))
        shared: dict = {}
        ids = frozenset(id(m) for m in source.modules)
        first = CompiledSimulator(
            source, shared_cache=shared, shared_module_ids=ids
        ).run(100_000)
        assert shared, "shared cache was never populated"
        size_after_first = len(shared)
        second = CompiledSimulator(
            source, shared_cache=shared, shared_module_ids=ids
        ).run(100_000)
        assert len(shared) == size_after_first  # reused, not recompiled
        assert full_key(first) == full_key(second)
