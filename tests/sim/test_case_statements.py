"""Case statement semantics: exact matching, casez/casex wildcards."""

from repro.hdl import parse
from repro.sim import Simulator


def run(source):
    sim = Simulator(parse(source))
    result = sim.run(10_000)
    assert result.finished, result.errors
    return result.output


class TestPlainCase:
    def test_exact_match_dispatch(self):
        out = run(
            """
            module t;
              reg [1:0] s;
              integer i;
              initial begin
                for (i = 0; i < 4; i = i + 1) begin
                  s = i;
                  case (s)
                    2'b00 : $display("zero");
                    2'b01 : $display("one");
                    2'b10 : $display("two");
                    default : $display("other");
                  endcase
                end
                $finish;
              end
            endmodule
            """
        )
        assert out == ["zero", "one", "two", "other"]

    def test_x_subject_matches_only_exact_x(self):
        out = run(
            """
            module t;
              reg [1:0] s;
              initial begin
                case (s)
                  2'b00 : $display("zero");
                  2'bxx : $display("all-x");
                  default : $display("default");
                endcase
                $finish;
              end
            endmodule
            """
        )
        assert out == ["all-x"]

    def test_first_matching_arm_wins(self):
        out = run(
            """
            module t;
              initial begin
                case (1'b1)
                  1'b1 : $display("first");
                  1'b1 : $display("second");
                endcase
                $finish;
              end
            endmodule
            """
        )
        assert out == ["first"]

    def test_no_match_no_default_skips(self):
        out = run(
            """
            module t;
              initial begin
                case (2'b11)
                  2'b00 : $display("zero");
                endcase
                $display("after");
                $finish;
              end
            endmodule
            """
        )
        assert out == ["after"]

    def test_multi_label_arm(self):
        out = run(
            """
            module t;
              reg [2:0] s;
              initial begin
                s = 3'd5;
                case (s)
                  3'd1, 3'd3, 3'd5, 3'd7 : $display("odd");
                  default : $display("even");
                endcase
                $finish;
              end
            endmodule
            """
        )
        assert out == ["odd"]


class TestCasez:
    def test_z_in_label_is_wildcard(self):
        out = run(
            """
            module t;
              reg [3:0] s;
              initial begin
                s = 4'b1010;
                casez (s)
                  4'b1??? : $display("msb-set");
                  default : $display("msb-clear");
                endcase
                $finish;
              end
            endmodule
            """
        )
        assert out == ["msb-set"]

    def test_x_in_subject_not_wildcard_for_casez(self):
        out = run(
            """
            module t;
              reg [1:0] s;
              initial begin
                s = 2'b1x;
                casez (s)
                  2'b11 : $display("match");
                  default : $display("no-match");
                endcase
                $finish;
              end
            endmodule
            """
        )
        assert out == ["no-match"]


class TestCasex:
    def test_x_and_z_both_wildcards(self):
        out = run(
            """
            module t;
              reg [1:0] s;
              initial begin
                s = 2'b1x;
                casex (s)
                  2'b10 : $display("match-10");
                  default : $display("no");
                endcase
                $finish;
              end
            endmodule
            """
        )
        assert out == ["match-10"]

    def test_label_x_wildcard(self):
        out = run(
            """
            module t;
              reg [3:0] s;
              initial begin
                s = 4'b0110;
                casex (s)
                  4'bx11x : $display("middle-set");
                  default : $display("no");
                endcase
                $finish;
              end
            endmodule
            """
        )
        assert out == ["middle-set"]
