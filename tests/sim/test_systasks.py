"""System task formatting tests."""

from repro.sim.logic import Value
from repro.sim.systasks import format_display


class TestFormatDisplay:
    def test_decimal(self):
        out = format_display("v=%0d", [Value.from_int(42, 8)], 0)
        assert out == "v=42"

    def test_decimal_default_width_pads(self):
        out = format_display("%d", [Value.from_int(7, 8)], 0)
        assert out == "  7"  # 8-bit max is 255 → width 3

    def test_binary(self):
        assert format_display("%b", [Value.from_string("10x")], 0) == "10x"

    def test_binary_zero_width_strips(self):
        assert format_display("%0b", [Value.from_int(2, 8)], 0) == "10"

    def test_hex(self):
        assert format_display("%h", [Value.from_int(0xAB, 8)], 0) == "ab"

    def test_octal(self):
        assert format_display("%o", [Value.from_int(9, 8)], 0) == "11"

    def test_time(self):
        assert format_display("at %0t", [Value.from_int(0, 1)], 125) == "at 125"

    def test_char_and_string(self):
        assert format_display("%c", [Value.from_int(65, 8)], 0) == "A"
        hello = Value(40, int.from_bytes(b"hello", "big"))
        assert format_display("%s", [hello], 0) == "hello"

    def test_percent_escape(self):
        assert format_display("100%%", [], 0) == "100%"

    def test_newline_tab_escapes(self):
        assert format_display("a\\nb\\tc", [], 0) == "a\nb\tc"

    def test_missing_argument_marked(self):
        assert format_display("%d %d", [Value.from_int(1, 4)], 0).endswith("<missing>")

    def test_x_value_decimal(self):
        assert format_display("%0d", [Value.unknown(4)], 0) == "x"

    def test_module_placeholder(self):
        assert format_display("%m", [], 0) == "top"
