"""Expression evaluator tests: IEEE-1364 four-state operator semantics.

Expressions are evaluated inside a tiny scratch module so the tests go
through the same environment machinery the simulator uses.
"""

import pytest

from repro.hdl import parse
from repro.hdl.parser import Parser
from repro.hdl.lexer import tokenize
from repro.sim.eval import EvalError, eval_expr
from repro.sim.logic import Value
from repro.sim.processes import Env
from repro.sim.simulator import Simulator

SCRATCH = """
module scratch;
  reg [7:0] a;
  reg [7:0] b;
  reg [3:0] nib;
  reg signed [7:0] sa;
  reg signed [7:0] sb;
  reg one_bit;
  reg [7:0] mem [0:3];
  initial begin
    a = 8'd10;
    b = 8'd3;
    nib = 4'b1010;
    sa = -8'sd5;
    sb = 8'sd2;
    one_bit = 1'b1;
    mem[0] = 8'hAA;
    mem[1] = 8'h55;
  end
endmodule
"""


@pytest.fixture(scope="module")
def env():
    sim = Simulator(parse(SCRATCH))
    sim.run(10)
    return Env(sim, sim.top)


def ev(env, text, ctx_width=None):
    expr = Parser(tokenize(text)).parse_expr()
    return eval_expr(expr, env, ctx_width)


class TestArithmetic:
    def test_add(self, env):
        assert ev(env, "a + b").to_int() == 13

    def test_sub_wraps_at_operand_width(self, env):
        assert ev(env, "b - a").aval == (3 - 10) % (1 << 8)

    def test_mul(self, env):
        assert ev(env, "a * b").to_int() == 30

    def test_div_and_mod(self, env):
        assert ev(env, "a / b").to_int() == 3
        assert ev(env, "a % b").to_int() == 1

    def test_div_by_zero_is_x(self, env):
        assert ev(env, "a / (b - 8'd3)").has_x_or_z

    def test_power(self, env):
        assert ev(env, "b ** 2").to_int() == 9

    def test_signed_arithmetic(self, env):
        assert ev(env, "sa + sb").to_signed_int() == -3

    def test_signed_division_truncates_toward_zero(self, env):
        assert ev(env, "sa / sb").to_signed_int() == -2

    def test_x_operand_poisons_arithmetic(self, env):
        sim = env.sim
        # 'undefined' is a fresh reg left at x.
        assert ev(env, "a + 8'bx").has_x_or_z

    def test_unary_minus_wraps_at_operand_width(self, env):
        assert ev(env, "-b").aval == (-3) % (1 << 8)

    def test_ctx_width_preserves_carry(self, env):
        # 8-bit operands, 9-bit context: the carry must survive.
        result = ev(env, "8'd200 + 8'd100", ctx_width=9)
        assert result.to_int() == 300


class TestComparisons:
    def test_equality(self, env):
        assert ev(env, "a == 8'd10").to_int() == 1
        assert ev(env, "a != 8'd10").to_int() == 0

    def test_relational(self, env):
        assert ev(env, "b < a").to_int() == 1
        assert ev(env, "a <= a").to_int() == 1

    def test_x_comparison_yields_x(self, env):
        assert ev(env, "a == 8'hxx").has_x_or_z

    def test_case_equality_exact(self, env):
        assert ev(env, "8'hxx === 8'hxx").to_int() == 1
        assert ev(env, "8'hxx !== 8'hxx").to_int() == 0

    def test_signed_compare(self, env):
        assert ev(env, "sa < sb").to_int() == 1  # -5 < 2

    def test_mixed_sign_compare_is_unsigned(self, env):
        # sa is -5 (0xFB); compared against unsigned a=10 → unsigned.
        assert ev(env, "sa < a").to_int() == 0


class TestBitwise:
    def test_and_or_xor(self, env):
        assert ev(env, "a & b").to_int() == 10 & 3
        assert ev(env, "a | b").to_int() == 10 | 3
        assert ev(env, "a ^ b").to_int() == 10 ^ 3

    def test_invert(self, env):
        assert ev(env, "~nib").to_bit_string() == "0101"

    def test_xnor(self, env):
        assert ev(env, "nib ^~ 4'b1010").to_bit_string() == "1111"

    def test_and_with_zero_defeats_x(self, env):
        assert ev(env, "8'h00 & 8'hxx").to_int() == 0

    def test_or_with_one_defeats_x(self, env):
        assert ev(env, "8'hFF | 8'hxx").aval == 0xFF

    def test_x_propagates_elsewhere(self, env):
        assert ev(env, "8'hFF & 8'hxx").has_x_or_z

    def test_invert_x_stays_x(self, env):
        assert ev(env, "~1'bx").has_x_or_z


class TestLogical:
    def test_and_or_not(self, env):
        assert ev(env, "a && b").to_int() == 1
        assert ev(env, "!a").to_int() == 0
        assert ev(env, "1'b0 || one_bit").to_int() == 1

    def test_short_circuit_semantics_with_x(self, env):
        assert ev(env, "1'b0 && 1'bx").to_int() == 0
        assert ev(env, "1'b1 || 1'bx").to_int() == 1
        assert ev(env, "1'b1 && 1'bx").has_x_or_z

    def test_not_x_is_x(self, env):
        assert ev(env, "!1'bx").has_x_or_z


class TestReductions:
    def test_reduction_and(self, env):
        assert ev(env, "&4'b1111").to_int() == 1
        assert ev(env, "&nib").to_int() == 0

    def test_reduction_or(self, env):
        assert ev(env, "|8'h00").to_int() == 0
        assert ev(env, "|nib").to_int() == 1

    def test_reduction_xor_parity(self, env):
        assert ev(env, "^nib").to_int() == 0  # 1010 has even parity
        assert ev(env, "^4'b1000").to_int() == 1

    def test_negated_reductions(self, env):
        assert ev(env, "~&4'b1111").to_int() == 0
        assert ev(env, "~|8'h00").to_int() == 1

    def test_reduction_with_dominating_zero(self, env):
        # &: a known 0 dominates even with x present.
        assert ev(env, "&4'b0xx1").to_int() == 0

    def test_reduction_x_otherwise(self, env):
        assert ev(env, "&4'b1xx1").has_x_or_z


class TestShifts:
    def test_logical_shifts(self, env):
        assert ev(env, "nib << 1").to_int() == 0b0100  # width 4, MSB lost
        assert ev(env, "nib >> 1").to_int() == 0b0101

    def test_shift_with_ctx_width_keeps_msb(self, env):
        assert ev(env, "nib << 1", ctx_width=5).to_int() == 0b10100

    def test_arithmetic_shift_right(self, env):
        assert ev(env, "sa >>> 1").to_signed_int() == -3  # -5 >> 1

    def test_x_shift_amount_poisons(self, env):
        assert ev(env, "a << 1'bx").has_x_or_z


class TestSelectsConcatTernary:
    def test_bit_select(self, env):
        assert ev(env, "nib[3]").to_int() == 1
        assert ev(env, "nib[0]").to_int() == 0

    def test_part_select(self, env):
        assert ev(env, "a[3:0]").to_int() == 10

    def test_out_of_range_select_x(self, env):
        assert ev(env, "nib[9]").has_x_or_z

    def test_concat_and_replication(self, env):
        assert ev(env, "{nib, nib}").to_int() == 0b10101010
        assert ev(env, "{2{nib}}").to_int() == 0b10101010

    def test_ternary_taken_branches(self, env):
        assert ev(env, "one_bit ? a : b").to_int() == 10
        assert ev(env, "1'b0 ? a : b").to_int() == 3

    def test_ternary_x_cond_merges(self, env):
        merged = ev(env, "1'bx ? 4'b1100 : 4'b1010")
        assert merged.to_bit_string() == "1xx0"

    def test_memory_word_read(self, env):
        assert ev(env, "mem[0]").aval == 0xAA
        assert ev(env, "mem[1]").aval == 0x55

    def test_memory_unwritten_word_x(self, env):
        assert ev(env, "mem[3]").has_x_or_z

    def test_memory_read_without_index_raises(self, env):
        with pytest.raises(EvalError):
            ev(env, "mem + 1")


class TestErrors:
    def test_unknown_identifier(self, env):
        with pytest.raises(EvalError):
            ev(env, "no_such_signal")

    def test_unknown_function(self, env):
        with pytest.raises(EvalError):
            ev(env, "missing_fn(1)")

    def test_bad_replication_count(self, env):
        with pytest.raises(EvalError):
            ev(env, "{1'bx{a}}")
