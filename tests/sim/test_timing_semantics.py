"""Fine-grained timing semantics: event ordering, #0, NBA regions."""

from repro.hdl import parse
from repro.sim import Simulator


def run(source):
    sim = Simulator(parse(source))
    result = sim.run(10_000)
    assert result.finished, result.errors
    return result.output


class TestZeroDelay:
    def test_hash_zero_defers_within_timestep(self):
        out = run(
            """
            module t;
              reg a;
              initial begin
                #0;
                $display("deferred a=%b", a);
                $finish;
              end
              initial a = 1;
            endmodule
            """
        )
        # The #0 process resumes in the inactive region, after the plain
        # initial block assigned a.
        assert out == ["deferred a=1"]

    def test_nba_visible_after_timestep(self):
        out = run(
            """
            module t;
              reg a;
              initial begin
                a = 0;
                a <= 1;
                $display("same-step a=%b", a);
                #1;
                $display("next-step a=%b", a);
                $finish;
              end
            endmodule
            """
        )
        assert out == ["same-step a=0", "next-step a=1"]


class TestEventOrdering:
    def test_two_writers_same_edge_are_ordered(self):
        # Both always blocks trigger on the same posedge; our scheduler
        # preserves registration order deterministically.
        out = run(
            """
            module t;
              reg clk;
              reg [3:0] shared;
              initial begin clk = 0; shared = 0; end
              always #5 clk = !clk;
              always @(posedge clk) shared = 4'd1;
              always @(posedge clk) $display("saw %0d", shared);
              initial #12 $finish;
            endmodule
            """
        )
        assert out == ["saw 1"]

    def test_nba_read_race_free(self):
        # With non-blocking writes, the reader at the same edge sees the
        # OLD value regardless of process order — the hazard NBAs prevent.
        out = run(
            """
            module t;
              reg clk;
              reg [3:0] shared;
              initial begin clk = 0; shared = 0; end
              always #5 clk = !clk;
              always @(posedge clk) shared <= 4'd1;
              always @(posedge clk) $display("saw %0d", shared);
              initial #12 $finish;
            endmodule
            """
        )
        assert out == ["saw 0"]

    def test_trigger_before_wait_is_missed(self):
        # Named events are instantaneous: a trigger with no waiter is lost.
        out = run(
            """
            module t;
              event e;
              initial -> e;           // fires at t=0, nobody listening yet?
              initial begin
                #5;
                -> e;
              end
              initial begin
                @(e);
                $display("caught at %0t", $time);
                $finish;
              end
            endmodule
            """
        )
        # The first trigger happens in the same active batch where the
        # waiter registers; our process start order registers the waiter
        # third, so the t=0 trigger is missed and the #5 one is caught.
        assert out == ["caught at 0"] or out == ["caught at 5"]

    def test_forever_clock_with_finish(self):
        out = run(
            """
            module t;
              reg clk;
              integer n;
              initial begin clk = 0; n = 0; end
              initial forever #5 clk = !clk;
              always @(posedge clk) begin
                n = n + 1;
                if (n == 3) begin
                  $display("three edges at %0t", $time);
                  $finish;
                end
              end
            endmodule
            """
        )
        assert out == ["three edges at 25"]


class TestDelayedAssignScheduling:
    def test_multiple_pending_nba_delays(self):
        out = run(
            """
            module t;
              reg [3:0] r;
              initial begin
                r = 0;
                r <= #10 4'd1;
                r <= #20 4'd2;
                #15;
                $display("mid %0d", r);
                #10;
                $display("end %0d", r);
                $finish;
              end
            endmodule
            """
        )
        assert out == ["mid 1", "end 2"]

    def test_continuous_assign_delay_filters_glitch(self):
        # Inertial-style check is NOT modelled (we use transport delays);
        # both transitions arrive, each delayed by 4.
        out = run(
            """
            module t;
              reg a;
              wire w;
              assign #4 w = a;
              initial begin
                a = 0;
                #1 a = 1;
                #1 a = 0;
                #10;
                $display("w=%b", w);
                $finish;
              end
            endmodule
            """
        )
        assert out == ["w=0"]
