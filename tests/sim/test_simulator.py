"""Behavioural simulator tests: timing, events, NBA semantics, hierarchy."""

import pytest

from repro.hdl import parse
from repro.sim import ElaborationError, Simulator
from repro.sim.logic import Value


def run(source, max_time=100_000, **kwargs):
    sim = Simulator(parse(source), **kwargs)
    result = sim.run(max_time)
    return sim, result


class TestDelaysAndFinish:
    def test_finish_stops_at_time(self):
        _, result = run("module t; initial #42 $finish; endmodule")
        assert result.finished
        assert result.time == 42

    def test_sequential_delays_accumulate(self):
        _, result = run(
            "module t; initial begin #10; #5; #1 $finish; end endmodule"
        )
        assert result.time == 16

    def test_no_finish_runs_to_quiescence(self):
        _, result = run("module t; reg r; initial #3 r = 1; endmodule")
        assert not result.finished
        assert result.time == 3

    def test_max_time_bound(self):
        _, result = run("module t; reg c; initial c = 0; always #5 c = !c; endmodule", max_time=50)
        assert result.time == 50

    def test_display_and_time(self):
        _, result = run(
            'module t; initial begin #7 $display("t=%0t", $time); $finish; end endmodule'
        )
        assert result.output == ["t=7"]


class TestClockAndAlways:
    def test_clock_oscillates(self):
        sim, _ = run(
            "module t; reg clk; initial clk = 0; always #5 clk = !clk;"
            " initial #23 $finish; endmodule"
        )
        # After 23 ticks: toggles at 5,10,15,20 → 0→1→0→1→0... value at 20 is 0.
        assert sim.signal("clk").value.to_int() == 0

    def test_posedge_counting(self):
        sim, _ = run(
            """
            module t;
              reg clk;
              integer edges;
              initial begin clk = 0; edges = 0; end
              always #5 clk = !clk;
              always @(posedge clk) edges = edges + 1;
              initial #52 $finish;
            endmodule
            """
        )
        assert sim.signal("edges").value.to_int() == 5  # edges at 5,15,25,35,45

    def test_negedge_sensitivity(self):
        sim, _ = run(
            """
            module t;
              reg clk;
              integer edges;
              initial begin clk = 0; edges = 0; end
              always #5 clk = !clk;
              always @(negedge clk) edges = edges + 1;
              initial #52 $finish;
            endmodule
            """
        )
        assert sim.signal("edges").value.to_int() == 5  # negedges at 10,20,30,40,50

    def test_star_sensitivity_combinational(self):
        sim, _ = run(
            """
            module t;
              reg [3:0] a, b;
              reg [3:0] s;
              always @(*) s = a + b;
              initial begin
                a = 1; b = 2;
                #1;
                a = 5;
                #1 $finish;
              end
            endmodule
            """
        )
        assert sim.signal("s").value.to_int() == 7

    def test_x_to_one_is_posedge(self):
        sim, _ = run(
            """
            module t;
              reg sig;
              integer hits;
              initial hits = 0;
              always @(posedge sig) hits = hits + 1;
              initial begin #5 sig = 1; #5 $finish; end
            endmodule
            """
        )
        assert sim.signal("hits").value.to_int() == 1


class TestNonBlockingSemantics:
    def test_nba_swap(self):
        sim, _ = run(
            """
            module t;
              reg clk, a, b;
              initial begin clk = 0; a = 0; b = 1; end
              always #5 clk = !clk;
              always @(posedge clk) begin
                a <= b;
                b <= a;
              end
              initial #12 $finish;
            endmodule
            """
        )
        assert sim.signal("a").value.to_int() == 1
        assert sim.signal("b").value.to_int() == 0

    def test_blocking_does_not_swap(self):
        sim, _ = run(
            """
            module t;
              reg clk, a, b;
              initial begin clk = 0; a = 0; b = 1; end
              always #5 clk = !clk;
              always @(posedge clk) begin
                a = b;
                b = a;
              end
              initial #12 $finish;
            endmodule
            """
        )
        assert sim.signal("a").value.to_int() == 1
        assert sim.signal("b").value.to_int() == 1

    def test_nba_with_delay_lands_later(self):
        sim, _ = run(
            """
            module t;
              reg r;
              initial begin
                r = 0;
                r <= #10 1;
                #5;
                if (r == 0) $display("still-zero");
                #10;
                if (r == 1) $display("now-one");
                $finish;
              end
            endmodule
            """
        )
        assert sim.output == ["still-zero", "now-one"]

    def test_intra_assignment_delay_blocking(self):
        # RHS evaluated before the delay.
        sim, _ = run(
            """
            module t;
              reg [3:0] a, b;
              initial begin
                a = 4'd1;
                b = #5 a;
                $display("%0d at %0t", b, $time);
                $finish;
              end
              initial #2 a = 4'd9;
            endmodule
            """
        )
        assert sim.output == ["1 at 5"]

    def test_last_nba_wins(self):
        sim, _ = run(
            """
            module t;
              reg clk, r;
              initial begin clk = 0; r = 0; end
              always #5 clk = !clk;
              always @(posedge clk) begin
                r <= 1;
                r <= 0;
              end
              initial #12 $finish;
            endmodule
            """
        )
        assert sim.signal("r").value.to_int() == 0


class TestEventsAndWait:
    def test_named_event_handshake(self):
        _, result = run(
            """
            module t;
              event go, done;
              initial begin
                #10 -> go;
                @(done);
                $display("done at %0t", $time);
                $finish;
              end
              initial begin
                @(go);
                #5 -> done;
              end
            endmodule
            """
        )
        assert result.output == ["done at 15"]

    def test_wait_releases_when_condition_true(self):
        _, result = run(
            """
            module t;
              reg flag;
              initial begin flag = 0; #20 flag = 1; end
              initial begin
                wait (flag == 1)
                $display("released at %0t", $time);
                $finish;
              end
            endmodule
            """
        )
        assert result.output == ["released at 20"]

    def test_wait_already_true_continues(self):
        _, result = run(
            """
            module t;
              reg flag;
              initial begin
                flag = 1;
                wait (flag)
                $display("immediate");
                $finish;
              end
            endmodule
            """
        )
        assert result.output == ["immediate"]

    def test_repeat_event_controls(self):
        _, result = run(
            """
            module t;
              reg clk;
              initial clk = 0;
              always #5 clk = !clk;
              initial begin
                repeat (3) begin
                  @(negedge clk);
                end
                $display("%0t", $time);
                $finish;
              end
            endmodule
            """
        )
        assert result.output == ["30"]


class TestHierarchy:
    ADDER = """
    module adder(input [3:0] x, input [3:0] y, output [4:0] s);
      assign s = x + y;
    endmodule
    """

    def test_instance_port_flow(self):
        sim, _ = run(
            self.ADDER
            + """
            module t;
              reg [3:0] a, b;
              wire [4:0] s;
              adder dut(.x(a), .y(b), .s(s));
              initial begin
                a = 9; b = 8;
                #1 $display("%0d", s);
                $finish;
              end
            endmodule
            """
        )
        assert sim.output == ["17"]

    def test_positional_connections(self):
        sim, _ = run(
            self.ADDER
            + """
            module t;
              reg [3:0] a, b;
              wire [4:0] s;
              adder dut(a, b, s);
              initial begin a = 3; b = 4; #1 $display("%0d", s); $finish; end
            endmodule
            """
        )
        assert sim.output == ["7"]

    def test_parameter_override(self):
        sim, _ = run(
            """
            module producer(output [7:0] v);
              parameter VALUE = 1;
              assign v = VALUE;
            endmodule
            module t;
              wire [7:0] v;
              producer #(.VALUE(42)) dut(.v(v));
              initial #1 begin $display("%0d", v); $finish; end
            endmodule
            """
        )
        assert sim.output == ["42"]

    def test_nested_hierarchy_signal_path(self):
        sim, _ = run(
            self.ADDER
            + """
            module wrap(input [3:0] p, output [4:0] q);
              adder inner(.x(p), .y(4'd1), .s(q));
            endmodule
            module t;
              reg [3:0] a;
              wire [4:0] s;
              wrap dut(.p(a), .q(s));
              initial begin a = 5; #1 $finish; end
            endmodule
            """
        )
        assert sim.signal("dut.inner.s").value.to_int() == 6

    def test_missing_module_raises(self):
        with pytest.raises(ElaborationError):
            run("module t; ghost u(); endmodule")

    def test_unknown_port_raises(self):
        with pytest.raises(ElaborationError):
            run(self.ADDER + "module t; adder u(.nope(1'b0)); endmodule")


class TestFunctionsTasksMemories:
    def test_function_call(self):
        sim, _ = run(
            """
            module t;
              reg [7:0] r;
              function [7:0] double;
                input [7:0] v;
                double = v * 2;
              endfunction
              initial begin r = double(21); $finish; end
            endmodule
            """
        )
        assert sim.signal("r").value.to_int() == 42

    def test_task_with_time_control(self):
        _, result = run(
            """
            module t;
              task wiggle;
                input [3:0] n;
                begin
                  #5;
                  $display("wiggled %0d at %0t", n, $time);
                end
              endtask
              initial begin
                wiggle(4'd3);
                wiggle(4'd7);
                $finish;
              end
            endmodule
            """
        )
        assert result.output == ["wiggled 3 at 5", "wiggled 7 at 10"]

    def test_task_output_argument(self):
        sim, _ = run(
            """
            module t;
              reg [7:0] got;
              task fetch;
                output [7:0] v;
                v = 8'h5A;
              endtask
              initial begin fetch(got); $finish; end
            endmodule
            """
        )
        assert sim.signal("got").value.aval == 0x5A

    def test_memory_write_read(self):
        sim, _ = run(
            """
            module t;
              reg [7:0] mem [0:7];
              reg [7:0] r;
              initial begin
                mem[3] = 8'hAB;
                r = mem[3];
                $finish;
              end
            endmodule
            """
        )
        assert sim.signal("r").value.aval == 0xAB

    def test_for_loop_fills_memory(self):
        sim, _ = run(
            """
            module t;
              reg [7:0] mem [0:7];
              reg [7:0] total;
              integer i;
              initial begin
                for (i = 0; i < 8; i = i + 1) mem[i] = i;
                total = 0;
                for (i = 0; i < 8; i = i + 1) total = total + mem[i];
                $finish;
              end
            endmodule
            """
        )
        assert sim.signal("total").value.to_int() == 28


class TestRobustness:
    def test_zero_delay_loop_hits_budget(self):
        _, result = run(
            "module t; reg r; initial forever r = !r; endmodule",
            max_steps=10_000,
        )
        assert any("budget" in e for e in result.errors)

    def test_runtime_error_kills_one_process_only(self):
        _, result = run(
            """
            module t;
              reg ok;
              initial no_such_task(1);  // unknown task: this process dies
              initial begin #5 ok = 1; $display("alive"); $finish; end
            endmodule
            """
        )
        assert result.finished
        assert "alive" in result.output
        assert result.errors  # the failure was reported

    def test_monitor_prints_on_change(self):
        _, result = run(
            """
            module t;
              reg [3:0] v;
              initial $monitor("v=%0d", v);
              initial begin
                v = 1;
                #5 v = 2;
                #5 v = 2;
                #5 v = 3;
                #1 $finish;
              end
            endmodule
            """
        )
        assert result.output == ["v=1", "v=2", "v=3"]

    def test_disable_named_block(self):
        _, result = run(
            """
            module t;
              integer i;
              initial begin : outer
                for (i = 0; i < 10; i = i + 1) begin
                  if (i == 3) disable outer;
                end
                $display("unreachable");
              end
              initial #5 begin $display("i=%0d", i); $finish; end
            endmodule
            """
        )
        assert result.output == ["i=3"]

    def test_trace_recording(self):
        sim, result = run(
            """
            module t;
              reg clk;
              reg [3:0] v;
              initial begin clk = 0; v = 0; end
              always #5 clk = !clk;
              always @(posedge clk) v <= v + 1;
              always @(posedge clk) $cirfix_record(v);
              initial #22 $finish;
            endmodule
            """
        )
        assert [r.time for r in result.trace] == [5, 15]
        # Postponed sampling sees the post-NBA value.
        assert result.trace[0].values["v"].to_int() == 1
