"""Elaboration tests: declarations, parameters, widths, port wiring."""

import pytest

from repro.hdl import parse
from repro.sim import ElaborationError, Simulator
from repro.sim.logic import Value


def elaborate(source, **kwargs):
    return Simulator(parse(source), **kwargs)


class TestDeclarations:
    def test_wire_defaults_z(self):
        sim = elaborate("module t; wire [3:0] w; endmodule")
        assert sim.top.signals["w"].value == Value.high_z(4)

    def test_reg_defaults_x(self):
        sim = elaborate("module t; reg [3:0] r; endmodule")
        assert sim.top.signals["r"].value == Value.unknown(4)

    def test_integer_is_signed_32(self):
        sim = elaborate("module t; integer i; endmodule")
        signal = sim.top.signals["i"]
        assert signal.width == 32
        assert signal.signed

    def test_output_reg_classic_style_merged(self):
        sim = elaborate("module t(q); output [3:0] q; reg [3:0] q; endmodule")
        signal = sim.top.signals["q"]
        assert signal.kind == "reg"
        assert signal.width == 4

    def test_memory_bounds(self):
        sim = elaborate("module t; reg [7:0] mem [0:15]; endmodule")
        memory = sim.top.memories["mem"]
        assert (memory.lo, memory.hi, memory.word_width) == (0, 15, 8)

    def test_event_elaborated(self):
        sim = elaborate("module t; event go; endmodule")
        assert "go" in sim.top.events

    def test_decl_initialiser_applies_at_time_zero(self):
        sim = elaborate("module t; reg [3:0] r = 4'd9; endmodule")
        sim.run(1)
        assert sim.top.signals["r"].value.to_int() == 9


class TestParameters:
    def test_parameter_in_range(self):
        sim = elaborate(
            "module t; parameter W = 8; reg [W-1:0] r; endmodule"
        )
        assert sim.top.signals["r"].width == 8

    def test_localparam_depends_on_parameter(self):
        sim = elaborate(
            "module t; parameter W = 4; localparam D = W * 2; reg [D-1:0] r; endmodule"
        )
        assert sim.top.signals["r"].width == 8

    def test_positional_param_override(self):
        sim = elaborate(
            """
            module sub(o); parameter P = 1; output [7:0] o; assign o = P; endmodule
            module t; wire [7:0] o; sub #(5) u(.o(o)); endmodule
            """
        )
        sim.run(1)
        assert sim.signal("o").value.to_int() == 5

    def test_param_missing_value_is_parse_error(self):
        from repro.hdl import ParseError

        with pytest.raises(ParseError):
            parse("module t; parameter; endmodule")

    def test_huge_width_rejected(self):
        with pytest.raises(ElaborationError):
            elaborate("module t; reg [1000000:0] r; endmodule")

    def test_xz_range_rejected(self):
        with pytest.raises(ElaborationError):
            elaborate("module t; reg [1'bx:0] r; endmodule")


class TestTopDetection:
    def test_uninstantiated_module_is_top(self):
        sim = elaborate(
            """
            module leaf(input a); endmodule
            module top_mod; reg x; leaf u(.a(x)); endmodule
            """
        )
        assert sim.top.module.name == "top_mod"

    def test_explicit_top_wins(self):
        sim = Simulator(
            parse("module a; endmodule module b; endmodule"), top="a"
        )
        assert sim.top.module.name == "a"


class TestContinuousAssign:
    def test_assign_follows_changes(self):
        sim = elaborate(
            """
            module t;
              reg [3:0] a;
              wire [3:0] doubled;
              assign doubled = a * 2;
              initial begin a = 2; #5 a = 5; #1 $finish; end
            endmodule
            """
        )
        sim.run(100)
        assert sim.signal("doubled").value.to_int() == 10

    def test_assign_with_delay(self):
        sim = elaborate(
            """
            module t;
              reg a;
              wire w;
              assign #3 w = a;
              initial begin
                a = 1;
                #2;
                if (w !== 1'b1) $display("delayed");
                #2;
                if (w === 1'b1) $display("arrived");
                $finish;
              end
            endmodule
            """
        )
        result = sim.run(100)
        assert result.output == ["delayed", "arrived"]

    def test_chained_assigns_settle(self):
        sim = elaborate(
            """
            module t;
              reg a;
              wire b, c, d;
              assign b = !a;
              assign c = !b;
              assign d = !c;
              initial begin a = 0; #1 $finish; end
            endmodule
            """
        )
        sim.run(10)
        assert sim.signal("d").value.to_int() == 1
