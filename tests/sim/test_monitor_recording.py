"""$monitor + $cirfix_record interplay and recording-order guarantees."""

from repro.hdl import parse
from repro.sim import Simulator


def run(source):
    sim = Simulator(parse(source))
    result = sim.run(10_000)
    assert result.finished, result.errors
    return result


class TestRecorderOrdering:
    def test_records_sorted_by_time(self):
        result = run(
            """
            module t;
              reg clk;
              reg [3:0] v;
              initial begin clk = 0; v = 0; end
              always #5 clk = !clk;
              always @(posedge clk) v <= v + 1;
              always @(posedge clk) $cirfix_record(v);
              initial #63 $finish;
            endmodule
            """
        )
        times = [r.time for r in result.trace]
        assert times == sorted(times)
        assert times == [5, 15, 25, 35, 45, 55]

    def test_two_recorders_both_capture(self):
        result = run(
            """
            module t;
              reg clk;
              reg a, b;
              initial begin clk = 0; a = 0; b = 1; end
              always #5 clk = !clk;
              always @(posedge clk) a <= !a;
              always @(posedge clk) $cirfix_record(a);
              always @(posedge clk) $cirfix_record(b);
              initial #12 $finish;
            endmodule
            """
        )
        assert len(result.trace) == 2  # one record per call at t=5
        names = {tuple(r.values) for r in result.trace}
        assert names == {("a",), ("b",)}

    def test_record_expression_label(self):
        result = run(
            """
            module t;
              reg clk;
              reg [3:0] v;
              initial begin clk = 0; v = 4'b1010; end
              always #5 clk = !clk;
              always @(posedge clk) $cirfix_record(v[3:2]);
              initial #8 $finish;
            endmodule
            """
        )
        record = result.trace[0]
        label = next(iter(record.values))
        assert "v[3:2]" in label
        assert record.values[label].to_bit_string() == "10"


class TestMonitorEdgeCases:
    def test_monitor_initial_print(self):
        result = run(
            """
            module t;
              reg [1:0] v;
              initial $monitor("m %0d", v);
              initial begin v = 3; #1 $finish; end
            endmodule
            """
        )
        assert result.output[0].startswith("m ")

    def test_monitor_not_retriggered_by_unrelated_signals(self):
        result = run(
            """
            module t;
              reg watched, unrelated;
              initial $monitor("w=%b", watched);
              initial begin
                watched = 0;
                #5 unrelated = 1;
                #5 unrelated = 0;
                #5 watched = 1;
                #1 $finish;
              end
            endmodule
            """
        )
        assert result.output == ["w=0", "w=1"]
