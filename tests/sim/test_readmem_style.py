"""Memory-preload patterns (the $readmemh substitute).

$readmemh needs a filesystem, which candidate evaluation deliberately
avoids; benchmark designs preload memories in initial blocks instead.
These tests pin down that the initial-block preload idiom works for the
shapes the suite uses (loops, constants, computed addresses).
"""

from repro.hdl import parse
from repro.sim import Simulator


def run(source):
    sim = Simulator(parse(source))
    result = sim.run(10_000)
    assert result.finished, result.errors
    return sim, result


class TestPreloadIdioms:
    def test_loop_preload_and_checksum(self):
        sim, result = run(
            """
            module t;
              reg [7:0] rom [0:31];
              reg [15:0] total;
              integer i;
              initial begin
                for (i = 0; i < 32; i = i + 1) rom[i] = i * 3;
                total = 0;
                for (i = 0; i < 32; i = i + 1) total = total + rom[i];
                $display("%0d", total);
                $finish;
              end
            endmodule
            """
        )
        assert result.output == [str(sum(i * 3 for i in range(32)))]

    def test_sparse_preload_leaves_x_elsewhere(self):
        sim, result = run(
            """
            module t;
              reg [7:0] rom [0:7];
              initial begin
                rom[2] = 8'hAB;
                if (rom[2] === 8'hAB) $display("loaded");
                if (rom[3] === 8'hxx) $display("rest-x");
                $finish;
              end
            endmodule
            """
        )
        assert result.output == ["loaded", "rest-x"]

    def test_readmemh_reports_unsupported(self):
        _, result = run(
            """
            module t;
              reg [7:0] rom [0:7];
              initial begin
                $readmemh("rom.hex", rom);
                $display("continued");
                $finish;
              end
            endmodule
            """
        )
        assert "continued" in result.output
        assert any("readmemh" in e for e in result.errors)

    def test_rom_driven_fsm(self):
        """A microcoded pattern: ROM contents drive an output sequence."""
        sim, result = run(
            """
            module t;
              reg clk;
              reg [2:0] pc;
              reg [7:0] rom [0:7];
              reg [7:0] out;
              integer i;
              initial begin
                clk = 0;
                pc = 0;
                rom[0] = 8'h11; rom[1] = 8'h22; rom[2] = 8'h33; rom[3] = 8'h44;
                rom[4] = 8'h55; rom[5] = 8'h66; rom[6] = 8'h77; rom[7] = 8'h88;
              end
              always #5 clk = !clk;
              always @(posedge clk) begin
                out <= rom[pc];
                pc <= pc + 1;
              end
              initial begin
                #85;
                $display("%h %0d", out, pc);
                $finish;
              end
            endmodule
            """
        )
        # 8 posedges by t=85: pc wrapped to 0, out = rom[7].
        assert result.output == ["88 0"]
