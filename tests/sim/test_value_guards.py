"""Robustness guards: width caps and absurd-mutant containment."""

import pytest

from repro.hdl import parse
from repro.sim import Simulator
from repro.sim.logic import Value


class TestWidthCap:
    def test_max_width_accepted(self):
        Value(Value.MAX_WIDTH, 0)

    def test_over_cap_rejected(self):
        with pytest.raises(ValueError):
            Value(Value.MAX_WIDTH + 1, 0)

    def test_huge_partselect_contained(self):
        """A mutant writing a billion-bit part select must not take the
        process down with a MemoryError — the process dies, the testbench
        carries on."""
        source = """
        module t;
          reg [7:0] r;
          reg ok;
          initial r[30'h3FFFFFFF:0] = 1;  // absurd width
          initial begin #5 ok = 1; $display("alive"); $finish; end
        endmodule
        """
        sim = Simulator(parse(source))
        result = sim.run(100)
        assert result.finished
        assert "alive" in result.output

    def test_huge_shift_contained(self):
        source = """
        module t;
          reg [7:0] r;
          initial begin
            r = 8'd1 << 30'h3FFFFFFF;
            $display("r=%b", r);
            $finish;
          end
        endmodule
        """
        result = Simulator(parse(source)).run(100)
        assert result.finished
        # Shift far beyond the width cap yields x (unrepresentable).
        assert result.output == ["r=xxxxxxxx"]

    def test_huge_replication_contained(self):
        source = """
        module t;
          reg [7:0] r;
          reg ok;
          initial r = {30'h3FFFFFFF{1'b1}};
          initial begin #5 ok = 1; $display("alive"); $finish; end
        endmodule
        """
        result = Simulator(parse(source)).run(100)
        assert result.finished
        assert "alive" in result.output
        assert result.errors  # the bad process was reported

    def test_elaboration_rejects_huge_register(self):
        from repro.sim import ElaborationError

        with pytest.raises(ElaborationError):
            Simulator(parse("module t; reg [30'h3FFFFFFF:0] r; endmodule"))
