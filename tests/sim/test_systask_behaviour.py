"""Behavioural system-task tests (beyond the pure formatting unit tests)."""

from repro.hdl import parse
from repro.sim import Simulator


def run(source, **kwargs):
    sim = Simulator(parse(source), **kwargs)
    result = sim.run(10_000)
    return sim, result


class TestStrobe:
    def test_strobe_samples_after_nba(self):
        _, result = run(
            """
            module t;
              reg [3:0] v;
              initial begin
                v = 0;
                v <= 4'd7;
                $display("display v=%0d", v);
                $strobe("strobe v=%0d", v);
                #1 $finish;
              end
            endmodule
            """
        )
        assert "display v=0" in result.output
        assert "strobe v=7" in result.output


class TestRandom:
    def test_random_deterministic_per_seed(self):
        source = """
        module t;
          integer r;
          initial begin
            r = $random;
            $display("%0d", r);
            $finish;
          end
        endmodule
        """
        _, first = run(source, seed=3)
        _, second = run(source, seed=3)
        _, third = run(source, seed=4)
        assert first.output == second.output
        assert first.output != third.output


class TestSignedness:
    def test_dollar_signed_changes_comparison(self):
        _, result = run(
            """
            module t;
              reg [7:0] v;
              initial begin
                v = 8'hFF;
                if ($signed(v) < 0) $display("negative");
                if (v > 8'd100) $display("large-unsigned");
                $finish;
              end
            endmodule
            """
        )
        assert result.output == ["negative", "large-unsigned"]


class TestDumpNoops:
    def test_dump_tasks_ignored(self):
        _, result = run(
            """
            module t;
              initial begin
                $dumpfile("x.vcd");
                $dumpvars;
                $display("ok");
                $finish;
              end
            endmodule
            """
        )
        assert result.output == ["ok"]
        assert not result.errors


class TestUnknownTask:
    def test_unknown_systask_reported_not_fatal(self):
        _, result = run(
            """
            module t;
              initial begin
                $made_up_task(1);
                $display("survived");
                $finish;
              end
            endmodule
            """
        )
        assert "survived" in result.output
        assert any("made_up_task" in e for e in result.errors)
