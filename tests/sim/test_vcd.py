"""VCD writer tests."""

from repro.hdl import parse
from repro.sim import Simulator
from repro.sim.vcd import VcdWriter, _id_code

SOURCE = """
module child(input i, output o);
  assign o = !i;
endmodule
module top;
  reg clk;
  reg [3:0] v;
  wire inv;
  child u(.i(clk), .o(inv));
  initial begin clk = 0; v = 0; end
  always #5 clk = !clk;
  always @(posedge clk) v <= v + 1;
  initial #23 $finish;
endmodule
"""


class TestIdCodes:
    def test_distinct_and_printable(self):
        codes = [_id_code(i) for i in range(500)]
        assert len(set(codes)) == 500
        assert all(c.isprintable() and " " not in c for c in codes)


class TestVcdOutput:
    def _render(self):
        sim = Simulator(parse(SOURCE))
        writer = VcdWriter.attach(sim)
        sim.run(1_000)
        return writer.render()

    def test_header_sections(self):
        text = self._render()
        assert "$timescale 1ns $end" in text
        assert "$enddefinitions $end" in text
        assert "$dumpvars" in text

    def test_scopes_nested(self):
        text = self._render()
        assert "$scope module top $end" in text
        assert "$scope module u $end" in text
        assert text.count("$upscope $end") >= 2

    def test_all_signals_declared(self):
        text = self._render()
        for name in ("clk", "v", "inv", "i", "o"):
            assert f" {name} $end" in text

    def test_vector_changes_recorded(self):
        text = self._render()
        assert "b0001 " in text
        assert "b0010 " in text

    def test_time_markers_monotone(self):
        text = self._render()
        times = [int(l[1:]) for l in text.splitlines() if l.startswith("#")]
        assert times == sorted(times)
        assert times[0] == 0
        assert any(t == 5 for t in times)
