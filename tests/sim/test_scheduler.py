"""Scheduler region-ordering tests."""

import pytest

from repro.sim.scheduler import Scheduler, SchedulerError


class TestRegions:
    def test_active_runs_fifo(self):
        sched = Scheduler()
        log = []
        sched.schedule_active(lambda: log.append(1))
        sched.schedule_active(lambda: log.append(2))
        sched.run(100)
        assert log == [1, 2]

    def test_inactive_after_active(self):
        sched = Scheduler()
        log = []
        sched.schedule_inactive(lambda: log.append("inactive"))
        sched.schedule_active(lambda: log.append("active"))
        sched.run(100)
        assert log == ["active", "inactive"]

    def test_nba_after_inactive(self):
        sched = Scheduler()
        log = []
        sched.schedule_nba(lambda: log.append("nba"))
        sched.schedule_inactive(lambda: log.append("inactive"))
        sched.schedule_active(lambda: log.append("active"))
        sched.run(100)
        assert log == ["active", "inactive", "nba"]

    def test_nba_can_wake_active(self):
        sched = Scheduler()
        log = []

        def nba_update():
            log.append("nba")
            sched.schedule_active(lambda: log.append("woken"))

        sched.schedule_nba(nba_update)
        sched.run(100)
        assert log == ["nba", "woken"]

    def test_postponed_once_at_slot_end(self):
        sched = Scheduler()
        log = []
        sched.schedule_postponed_once(lambda: log.append("postponed"))
        sched.schedule_nba(lambda: log.append("nba"))
        sched.schedule_active(lambda: log.append("active"))
        sched.schedule_at(5, lambda: log.append("later"))
        sched.run(100)
        assert log == ["active", "nba", "postponed", "later"]

    def test_every_slot_postponed_callback(self):
        sched = Scheduler()
        ticks = []
        sched.add_postponed(lambda: ticks.append(sched.time))
        sched.schedule_at(3, lambda: None)
        sched.schedule_at(7, lambda: None)
        sched.run(100)
        assert ticks == [0, 3, 7]


class TestTime:
    def test_future_events_ordered(self):
        sched = Scheduler()
        log = []
        sched.schedule_at(10, lambda: log.append(10))
        sched.schedule_at(5, lambda: log.append(5))
        sched.run(100)
        assert log == [5, 10]

    def test_same_time_preserves_insertion_order(self):
        sched = Scheduler()
        log = []
        sched.schedule_at(5, lambda: log.append("a"))
        sched.schedule_at(5, lambda: log.append("b"))
        sched.run(100)
        assert log == ["a", "b"]

    def test_max_time_stops(self):
        sched = Scheduler()
        log = []
        sched.schedule_at(5, lambda: log.append("in"))
        sched.schedule_at(500, lambda: log.append("out"))
        end = sched.run(100)
        assert log == ["in"]
        assert end == 5

    def test_finish_stops_immediately(self):
        sched = Scheduler()
        log = []
        sched.schedule_active(lambda: (log.append("first"), sched.finish()))
        sched.schedule_active(lambda: log.append("second"))
        sched.run(100)
        assert log == ["first"]

    def test_negative_delay_rejected(self):
        sched = Scheduler()
        with pytest.raises(SchedulerError):
            sched.schedule_at(-1, lambda: None)

    def test_unknown_region_rejected(self):
        sched = Scheduler()
        with pytest.raises(SchedulerError):
            sched.schedule_at(1, lambda: None, region="bogus")

    def test_pending_events_counter(self):
        sched = Scheduler()
        sched.schedule_at(5, lambda: None)
        sched.schedule_active(lambda: None)
        assert sched.pending_events == 2
