"""Whole-simulation differential tests against Python golden models.

Each test simulates a small sequential circuit for many cycles and checks
every recorded cycle against an independent Python implementation — much
stronger than spot checks, and exactly the property the CirFix oracle
machinery depends on.
"""

from repro.hdl import parse
from repro.sim import Simulator


def run_traced(source, max_time=100_000):
    sim = Simulator(parse(source))
    result = sim.run(max_time)
    assert result.finished, result.errors
    return result.trace


class TestLfsr:
    SOURCE = """
    module lfsr(clk, rst, state);
      input clk, rst;
      output [7:0] state;
      reg [7:0] state;
      wire feedback;
      assign feedback = state[7] ^ state[5] ^ state[4] ^ state[3];
      always @(posedge clk) begin
        if (rst) state <= 8'h01;
        else state <= {state[6:0], feedback};
      end
    endmodule
    module tb;
      reg clk, rst;
      wire [7:0] state;
      lfsr dut(.clk(clk), .rst(rst), .state(state));
      always #5 clk = !clk;
      always @(posedge clk) $cirfix_record(state);
      initial begin
        clk = 0; rst = 1;
        @(negedge clk);
        rst = 0;
        repeat (60) begin @(negedge clk); end
        $finish;
      end
    endmodule
    """

    def test_matches_python_lfsr(self):
        trace = run_traced(self.SOURCE)
        state = 0x01
        # Skip the reset-cycle sample; then every cycle must match.
        for record in trace[1:]:
            feedback = (
                (state >> 7) ^ (state >> 5) ^ (state >> 4) ^ (state >> 3)
            ) & 1
            state = ((state << 1) | feedback) & 0xFF
            assert record.values["state"].to_int() == state

    def test_period_is_maximal_prefix(self):
        trace = run_traced(self.SOURCE)
        seen = [r.values["state"].to_int() for r in trace[1:]]
        # x^8+x^6+x^5+x^4+1 is maximal: no repeats within 60 < 255 steps.
        assert len(set(seen)) == len(seen)


class TestGrayCounter:
    SOURCE = """
    module gray(clk, rst, bin_q, gray_q);
      input clk, rst;
      output [5:0] bin_q;
      output [5:0] gray_q;
      reg [5:0] bin_q;
      assign gray_q = bin_q ^ (bin_q >> 1);
      always @(posedge clk) begin
        if (rst) bin_q <= 0;
        else bin_q <= bin_q + 1;
      end
    endmodule
    module tb;
      reg clk, rst;
      wire [5:0] bin_q;
      wire [5:0] gray_q;
      gray dut(.clk(clk), .rst(rst), .bin_q(bin_q), .gray_q(gray_q));
      always #5 clk = !clk;
      always @(posedge clk) $cirfix_record(bin_q, gray_q);
      initial begin
        clk = 0; rst = 1;
        @(negedge clk);
        rst = 0;
        repeat (80) begin @(negedge clk); end
        $finish;
      end
    endmodule
    """

    def test_gray_code_property(self):
        trace = run_traced(self.SOURCE)
        previous = None
        for record in trace[2:]:
            bin_v = record.values["bin_q"].to_int()
            gray_v = record.values["gray_q"].to_int()
            assert gray_v == bin_v ^ (bin_v >> 1)
            if previous is not None:
                # Consecutive gray codes differ in exactly one bit.
                assert bin(gray_v ^ previous).count("1") == 1
            previous = gray_v


class TestFifo:
    SOURCE = """
    module fifo(clk, rst, push, pop, din, dout, count);
      input clk, rst, push, pop;
      input [7:0] din;
      output [7:0] dout;
      output [3:0] count;
      reg [7:0] dout;
      reg [3:0] count;
      reg [7:0] mem [0:7];
      reg [2:0] wp;
      reg [2:0] rp;
      always @(posedge clk) begin
        if (rst) begin
          wp <= 0; rp <= 0; count <= 0; dout <= 0;
        end
        else begin
          if (push && count < 8) begin
            mem[wp] <= din;
            wp <= wp + 1;
          end
          if (pop && count > 0) begin
            dout <= mem[rp];
            rp <= rp + 1;
          end
          if (push && count < 8 && !(pop && count > 0)) count <= count + 1;
          else if (pop && count > 0 && !(push && count < 8)) count <= count - 1;
        end
      end
    endmodule
    module tb;
      reg clk, rst, push, pop;
      reg [7:0] din;
      wire [7:0] dout;
      wire [3:0] count;
      integer i;
      fifo dut(.clk(clk), .rst(rst), .push(push), .pop(pop), .din(din),
               .dout(dout), .count(count));
      always #5 clk = !clk;
      always @(posedge clk) $cirfix_record(dout, count);
      initial begin
        clk = 0; rst = 1; push = 0; pop = 0; din = 0;
        @(negedge clk);
        rst = 0;
        push = 1;
        for (i = 0; i < 5; i = i + 1) begin
          din = 8'h30 + i;
          @(negedge clk);
        end
        push = 0;
        pop = 1;
        repeat (5) begin @(negedge clk); end
        pop = 0;
        @(negedge clk);
        $finish;
      end
    endmodule
    """

    def test_fifo_order_preserved(self):
        trace = run_traced(self.SOURCE)
        outputs = []
        for record in trace:
            value = record.values["dout"]
            if value.is_fully_defined and value.to_int() >= 0x30:
                if value.to_int() not in outputs:
                    outputs.append(value.to_int())
        assert outputs == [0x30, 0x31, 0x32, 0x33, 0x34]

    def test_count_returns_to_zero(self):
        trace = run_traced(self.SOURCE)
        assert trace[-1].values["count"].to_int() == 0
