"""SynthEngine end-to-end: repairs, determinism, observers, cancel."""

import json

import pytest

from repro.core import TEST_CONFIG, RepairProblem
from repro.core.engines import get_engine
from repro.core.oracle import ensure_instrumented, generate_oracle
from repro.core.serialize import outcome_to_json
from repro.hdl import parse
from repro.synth import synth_repair

GOLDEN_FF = """
module tff(clk, rstn, t, q);
  input clk, rstn, t;
  output q;
  reg q;
  always @(posedge clk) begin
    if (!rstn) q <= 1'b0;
    else begin
      if (t) q <= !q;
      else q <= q;
    end
  end
endmodule
"""

FAULTY_NEGATED = GOLDEN_FF.replace("if (t) q <= !q;", "if (!t) q <= !q;")
FAULTY_STUCK = GOLDEN_FF.replace("if (t) q <= !q;", "if (t) q <= 1'b1;")

TESTBENCH = """
module tb;
  reg clk, rstn, t;
  wire q;
  tff dut(.clk(clk), .rstn(rstn), .t(t), .q(q));
  always #5 clk = !clk;
  initial begin
    clk = 0; rstn = 0; t = 0;
    @(negedge clk);
    rstn = 1; t = 1;
    repeat (4) begin @(negedge clk); end
    t = 0;
    repeat (3) begin @(negedge clk); end
    #5 $finish;
  end
endmodule
"""


def make_problem(faulty: str, name: str) -> RepairProblem:
    golden = parse(GOLDEN_FF)
    bench = ensure_instrumented(parse(TESTBENCH), golden)
    oracle = generate_oracle(golden, bench)
    return RepairProblem(parse(faulty), bench, oracle, name)


class Recorder:
    """Observer that just collects every event."""

    def __init__(self):
        self.events = []

    def on_event(self, event):
        self.events.append(event)


def stable_report(outcome, name: str) -> dict:
    report = json.loads(outcome_to_json(outcome, name))
    report.pop("elapsed_seconds")
    return report


class TestRepairs:
    def test_repairs_negated_condition(self):
        outcome = synth_repair(make_problem(FAULTY_NEGATED, "ff_neg"), TEST_CONFIG)
        assert outcome.plausible
        assert outcome.fitness == 1.0
        assert outcome.repaired_source is not None

    def test_repairs_stuck_constant_assignment(self):
        outcome = synth_repair(make_problem(FAULTY_STUCK, "ff_stuck"), TEST_CONFIG)
        assert outcome.plausible
        assert outcome.fitness == 1.0


class TestDeterminism:
    def test_same_run_is_bit_identical(self):
        first = synth_repair(make_problem(FAULTY_NEGATED, "ff"), TEST_CONFIG)
        second = synth_repair(make_problem(FAULTY_NEGATED, "ff"), TEST_CONFIG)
        assert stable_report(first, "ff") == stable_report(second, "ff")

    def test_search_is_seed_independent(self):
        # The synth search is derandomized: any seed replays the same
        # trial; only the recorded seed differs.
        base = synth_repair(make_problem(FAULTY_NEGATED, "ff"), TEST_CONFIG, (0,))
        other = synth_repair(make_problem(FAULTY_NEGATED, "ff"), TEST_CONFIG, (7, 8))
        assert other.seed == 7
        left, right = stable_report(base, "ff"), stable_report(other, "ff")
        left.pop("seed"), right.pop("seed")
        assert left == right

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            synth_repair(make_problem(FAULTY_NEGATED, "ff"), TEST_CONFIG, ())


class TestObserversAndCancel:
    def test_observers_never_influence_the_search(self):
        recorder = Recorder()
        observed = synth_repair(
            make_problem(FAULTY_NEGATED, "ff"), TEST_CONFIG, observers=[recorder]
        )
        silent = synth_repair(make_problem(FAULTY_NEGATED, "ff"), TEST_CONFIG)
        assert stable_report(observed, "ff") == stable_report(silent, "ff")

    def test_synth_lifecycle_events_emitted(self):
        recorder = Recorder()
        synth_repair(
            make_problem(FAULTY_NEGATED, "ff"), TEST_CONFIG, observers=[recorder]
        )
        types = [event.type for event in recorder.events]
        assert types[0] == "trial_started"
        assert "synth_template_enumerated" in types
        assert "synth_solve_completed" in types
        assert "plausible_patch_found" in types
        solve = next(
            e for e in recorder.events if e.type == "synth_solve_completed"
        )
        assert solve.plausible
        assert solve.winner_template

    def test_cancel_stops_the_solve(self):
        outcome = synth_repair(
            make_problem(FAULTY_NEGATED, "ff"), TEST_CONFIG, cancel=lambda: True
        )
        assert not outcome.plausible
        assert outcome.eval_sims <= 1


class TestRegistry:
    def test_synth_resolves_through_the_registry(self):
        runner = get_engine("synth")
        outcome = runner(make_problem(FAULTY_NEGATED, "ff"), TEST_CONFIG, (0,))
        direct = synth_repair(make_problem(FAULTY_NEGATED, "ff"), TEST_CONFIG, (0,))
        assert stable_report(outcome, "ff") == stable_report(direct, "ff")
