"""Template enumeration: sites, payloads, and mint-family inversion."""

from repro.hdl import ast, parse
from repro.mint import MUTATORS
from repro.synth import TEMPLATES, TEMPLATES_BY_NAME
from repro.synth.solver import SolveContext

DESIGN = """
module m(clk, a, b, q, w);
  input clk, a, b;
  output q, w;
  reg q;
  wire w;
  assign w = a & b;
  always @(posedge clk) begin
    if (!a) q <= 1'b0;
    else q <= 1'b1;
  end
endmodule
"""


def enumerate_(name: str, source: str = DESIGN, ctx: SolveContext | None = None):
    return TEMPLATES_BY_NAME[name].instantiate(parse(source), ctx or SolveContext())


class TestCatalog:
    def test_every_template_names_the_mint_families_it_inverts(self):
        inverted = {family for t in TEMPLATES for family in t.repairs}
        # Every declared inverse is a real mutator family.
        assert inverted <= set(MUTATORS)

    def test_enumeration_is_deterministic(self):
        for template in TEMPLATES:
            first = template.instantiate(parse(DESIGN), SolveContext())
            second = template.instantiate(parse(DESIGN), SolveContext())
            assert [c.note for c in first] == [c.note for c in second]


class TestAddInversions:
    def test_toggles_conditions_and_rhs(self):
        notes = [c.note for c in enumerate_("add_inversions")]
        assert "drop '!' on condition" in notes  # the existing !a
        assert any(note.startswith("add '~' on rhs") for note in notes)

    def test_single_edit_patches(self):
        for candidate in enumerate_("add_inversions"):
            assert len(candidate.patch) == 1


class TestFlipOperator:
    def test_only_family_alternatives_enumerated(self):
        notes = [c.note for c in enumerate_("flip_operator")]
        # '&' swaps inside its family; never into arithmetic.
        assert "'&' -> '|'" in notes
        assert "'&' -> '^'" in notes
        assert not any("'&' -> '+'" in note for note in notes)


class TestReplaceLiterals:
    def test_mined_pool_feeds_the_domain(self):
        ctx = SolveContext(literal_pool=((1, 0), (0, 0)))
        notes = [c.note for c in enumerate_("replace_literals", ctx=ctx)]
        assert "1'b0 -> 1'd1" in notes
        assert "1'b1 -> 1'd0" in notes

    def test_fault_scope_filters_sites(self):
        ctx = SolveContext(fault_scope=frozenset({-1}))
        assert enumerate_("replace_literals", ctx=ctx) == []


class TestAdjustSensitivity:
    def test_flips_edges_and_adds_missing_signals(self):
        notes = [c.note for c in enumerate_("adjust_sensitivity")]
        assert "flip posedge -> negedge" in notes
        # 'a' and 'q' are read by the body but absent from the list.
        assert "add posedge a" in notes
        assert "add negedge a" in notes

    def test_payload_is_a_whole_always_item(self):
        for candidate in enumerate_("adjust_sensitivity"):
            assert isinstance(candidate.patch.edits[0].payload, ast.Always)


class TestReplaceVariables:
    def test_swaps_rhs_identifier_reads(self):
        notes = [c.note for c in enumerate_("replace_variables")]
        assert "'a' -> 'b'" in notes  # inside `assign w = a & b`
        # Never a self-swap, never the assigned signal.
        assert "'a' -> 'a'" not in notes
        assert "'a' -> 'w'" not in notes

    def test_constant_stuck_rhs_rebuilt_including_lhs(self):
        notes = [c.note for c in enumerate_("replace_variables")]
        # `q <= 1'b0` reads nothing: rebuilt from module signals,
        # including the assigned register itself (toggle/hold shapes).
        assert "rhs -> a" in notes
        assert "rhs -> q" in notes
        assert "rhs -> ~q" in notes
        assert any("&" in note and note.startswith("rhs -> ") for note in notes)

    def test_mismatched_lhs_sites_solve_first(self):
        plain = [c.note for c in enumerate_("replace_variables")]
        ctx = SolveContext(mismatch=("q",))
        prioritized = enumerate_("replace_variables", ctx=ctx)
        # Same candidates, mismatch-driven sites moved to the front.
        assert sorted(c.note for c in prioritized) == sorted(plain)
        assert prioritized[0].note.startswith("rhs -> ")
