"""Differential racing: winner verdicts, determinism, registry routing."""

import json

from repro.core import TEST_CONFIG
from repro.core.engines import get_engine
from repro.core.repair import repair
from repro.core.serialize import outcome_to_json
from repro.synth import RACE_ENGINES, race_repair, run_race, synth_repair
from repro.synth.race import RaceEntry, RaceResult

from .test_engine import FAULTY_NEGATED, make_problem, stable_report


class TestRunRace:
    def test_entries_cover_both_engines_and_match_standalone(self):
        result = run_race(make_problem(FAULTY_NEGATED, "ff"), TEST_CONFIG, (0,))
        assert [entry.engine for entry in result.entries] == list(RACE_ENGINES)
        standalone = {
            "cirfix": repair(make_problem(FAULTY_NEGATED, "ff"), TEST_CONFIG, (0,)),
            "synth": synth_repair(make_problem(FAULTY_NEGATED, "ff"), TEST_CONFIG, (0,)),
        }
        for entry in result.entries:
            assert stable_report(entry.outcome, "ff") == stable_report(
                standalone[entry.engine], "ff"
            )

    def test_wall_clock_measured_but_outside_stable_dict(self):
        result = run_race(make_problem(FAULTY_NEGATED, "ff"), TEST_CONFIG, (0,))
        for entry in result.entries:
            assert entry.wall_seconds > 0.0
        text = json.dumps(result.stable_dict())
        assert "wall" not in text

    def test_race_verdict_is_deterministic(self):
        first = run_race(make_problem(FAULTY_NEGATED, "ff"), TEST_CONFIG, (0,))
        second = run_race(make_problem(FAULTY_NEGATED, "ff"), TEST_CONFIG, (0,))
        assert first.stable_dict() == second.stable_dict()


class TestWinner:
    def outcome(self, plausible, fitness, eval_sims):
        base = repair(make_problem(FAULTY_NEGATED, "ff"), TEST_CONFIG, (0,))
        base.plausible = plausible
        base.fitness = fitness
        base.eval_sims = eval_sims
        return base

    def entry(self, engine, plausible, fitness, eval_sims):
        return RaceEntry(engine, self.outcome(plausible, fitness, eval_sims), 0.0)

    def test_cheapest_plausible_entry_wins(self):
        result = RaceResult(
            "s",
            [
                self.entry("cirfix", True, 1.0, 40),
                self.entry("synth", True, 1.0, 12),
            ],
        )
        assert result.winner.engine == "synth"

    def test_engine_name_breaks_exact_ties(self):
        result = RaceResult(
            "s",
            [
                self.entry("synth", True, 1.0, 12),
                self.entry("cirfix", True, 1.0, 12),
            ],
        )
        assert result.winner.engine == "cirfix"

    def test_best_fitness_wins_when_nothing_plausible(self):
        result = RaceResult(
            "s",
            [
                self.entry("cirfix", False, 0.7, 10),
                self.entry("synth", False, 0.9, 99),
            ],
        )
        assert result.winner.engine == "synth"


class TestRaceEngine:
    def test_race_resolves_through_registry_and_returns_the_winner(self):
        runner = get_engine("race")
        outcome = runner(make_problem(FAULTY_NEGATED, "ff"), TEST_CONFIG, (0,))
        result = run_race(make_problem(FAULTY_NEGATED, "ff"), TEST_CONFIG, (0,))
        assert stable_report(outcome, "ff") == stable_report(
            result.winner.outcome, "ff"
        )
        direct = race_repair(make_problem(FAULTY_NEGATED, "ff"), TEST_CONFIG, (0,))
        assert stable_report(direct, "ff") == stable_report(outcome, "ff")
