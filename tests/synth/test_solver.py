"""Solver unit tests: literal domains, oracle mining, fault scope."""

from repro.hdl import ast
from repro.instrument.trace import SimulationTrace
from repro.sim.logic import Value
from repro.synth.solver import (
    EXHAUSTIVE_WIDTH,
    SolveContext,
    literal_domain,
    mine_literals,
    number_from_planes,
)


class TestNumberFromPlanes:
    def test_two_state_value_renders_as_plain_literal(self):
        number = number_from_planes(4, 5, 0)
        assert (number.aval, number.bval, number.width) == (5, 0, 4)

    def test_four_state_value_renders_based_binary(self):
        # aval=1 bval=1 at bit 0 → x; aval=0 bval=1 at bit 1 → z.
        number = number_from_planes(2, 0b01, 0b11)
        assert number.text == "2'bzx"
        assert (number.aval, number.bval) == (0b01, 0b11)


class TestLiteralDomain:
    def test_mined_values_come_first_current_excluded(self):
        number = ast.Number.from_int(3, 8)
        ctx = SolveContext(literal_pool=((7, 0), (3, 0), (200, 0)))
        domain = literal_domain(number, ctx)
        values = [(n.aval, n.bval) for n in domain]
        # The current value (3) never re-appears; mined order is kept.
        assert values[0] == (7, 0)
        assert values[1] == (200, 0)
        assert (3, 0) not in values
        # Neighbourhood follows the pool: 3+1, 3-1, 0, 1, all-ones.
        assert values[2:7] == [(4, 0), (2, 0), (0, 0), (1, 0), (255, 0)]

    def test_narrow_literal_enumerated_exhaustively(self):
        width = EXHAUSTIVE_WIDTH
        number = ast.Number.from_int(0, width)
        domain = literal_domain(number, SolveContext())
        values = {(n.aval, n.bval) for n in domain}
        # Every two-state value except the current one.
        assert values == {(v, 0) for v in range(1, 1 << width)}

    def test_domain_capped_and_deterministic(self):
        number = ast.Number.from_int(0, 32)
        ctx = SolveContext(
            literal_pool=tuple((v, 0) for v in range(100, 200)), max_per_site=5
        )
        first = literal_domain(number, ctx)
        second = literal_domain(number, ctx)
        assert len(first) == 5
        assert [(n.aval, n.bval) for n in first] == [
            (n.aval, n.bval) for n in second
        ]


class TestMineLiterals:
    def trace(self):
        return SimulationTrace(
            [
                (0, {"q": Value(4, 3), "other": Value(4, 9)}),
                (10, {"q": Value(4, 5), "other": Value(4, 9)}),
                (20, {"q": Value(4, 3)}),
            ]
        )

    def test_only_mismatched_outputs_mined_first_seen_order(self):
        pool = mine_literals(self.trace(), {"q"})
        assert pool == ((3, 0), (5, 0))

    def test_empty_mismatch_falls_back_to_every_output(self):
        pool = mine_literals(self.trace(), set())
        assert set(pool) == {(3, 0), (9, 0), (5, 0)}

    def test_four_state_values_kept(self):
        trace = SimulationTrace([(0, {"q": Value(2, 0b01, 0b11)})])
        assert mine_literals(trace, {"q"}) == ((0b01, 0b11),)


class TestSolveContext:
    def test_empty_scope_covers_everything_but_not_none(self):
        ctx = SolveContext()
        assert ctx.covers(42)
        assert not ctx.covers(None)

    def test_nonempty_scope_restricts(self):
        ctx = SolveContext(fault_scope=frozenset({1, 2}))
        assert ctx.covers(1)
        assert not ctx.covers(3)
