"""Tests for repro.cache (the persistent sharded evaluation store)."""
