"""Two writer processes sharing one cache root must never corrupt it.

The store's cross-process story is filesystem cooperation: atomic
``os.replace`` publishes, per-entry files, and index misses that fall
through to a direct file probe.  This property test hammers one root
from two concurrent writer processes — disjoint keys plus a contended
set both sides overwrite — and then checks the surviving state from a
fresh instance:

- every key either side wrote is present and reads back as a valid
  payload written by one of the writers (no interleaved/truncated JSON);
- ``corrupt_dropped`` stays 0 across a full read-back — concurrency must
  not manufacture corrupt entries;
- the rebuilt index's byte accounting matches the bytes on disk;
- a bounded follow-up instance evicts exactly once per removed entry
  (``evictions`` equals the entry-count delta — no double counting).
"""

import hashlib
import multiprocessing

import pytest

from repro.cache import PersistentEvalCache

#: Entries per writer; half the key space is contended (written by both).
_PER_WRITER = 120
_SHARED = 60


def key_of(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


@pytest.fixture(autouse=True)
def _fresh_registry():
    PersistentEvalCache.reset_shared()
    yield
    PersistentEvalCache.reset_shared()


def _writer_keys(worker_id: int) -> list[str]:
    """The key sequence one writer stores, contended keys interleaved."""
    keys = []
    for i in range(_PER_WRITER):
        if i < _SHARED:
            keys.append(key_of(f"shared:{i}"))  # both writers hit these
        else:
            keys.append(key_of(f"private:{worker_id}:{i}"))
    return keys


def _writer(root: str, worker_id: int, start: "multiprocessing.Event") -> None:
    # Module-level so spawn-based contexts can pickle it.  Each writer
    # builds its own instance against the same root, like two daemon
    # processes sharing a cache directory.
    start.wait(10.0)
    store = PersistentEvalCache(root)
    for round_ in range(3):  # overwrite churn: contended keys flip-flop
        for i, key in enumerate(_writer_keys(worker_id)):
            store.put(
                key,
                {"worker": worker_id, "i": i, "round": round_, "pad": "x" * 64},
            )


def _expected_keys() -> set[str]:
    return set(_writer_keys(0)) | set(_writer_keys(1))


class TestConcurrentWriters:
    def test_two_writers_never_corrupt_entries(self, tmp_path):
        root = tmp_path / "cache"
        ctx = multiprocessing.get_context()
        start = ctx.Event()
        procs = [
            ctx.Process(target=_writer, args=(str(root), wid, start))
            for wid in (0, 1)
        ]
        for p in procs:
            p.start()
        start.set()  # release both writers at once to maximise contention
        for p in procs:
            p.join(60.0)
            assert p.exitcode == 0

        expected = _expected_keys()
        fresh = PersistentEvalCache(root)
        assert len(fresh) == len(expected)
        for key in sorted(expected):
            payload = fresh.get(key)
            # Readable, schema-valid, and attributable to one writer —
            # an interleaved write would fail JSON parsing or the store's
            # key check and surface as corrupt_dropped below.
            assert payload is not None, f"lost entry {key[:12]}"
            assert payload["worker"] in (0, 1)
            assert payload["pad"] == "x" * 64
        assert fresh.info()["corrupt_dropped"] == 0
        assert fresh.info()["hits"] == len(expected)

    def test_rebuilt_index_matches_disk_bytes(self, tmp_path):
        root = tmp_path / "cache"
        ctx = multiprocessing.get_context()
        start = ctx.Event()
        procs = [
            ctx.Process(target=_writer, args=(str(root), wid, start))
            for wid in (0, 1)
        ]
        for p in procs:
            p.start()
        start.set()
        for p in procs:
            p.join(60.0)
            assert p.exitcode == 0

        fresh = PersistentEvalCache(root)
        disk_bytes = sum(
            path.stat().st_size
            for shard in (root / "shards").iterdir()
            for path in shard.iterdir()
            if path.name.endswith(".json")
        )
        assert fresh.info()["bytes"] == disk_bytes
        # No temp files left behind by either writer's atomic publishes.
        strays = [
            path
            for shard in (root / "shards").iterdir()
            for path in shard.iterdir()
            if not path.name.endswith(".json")
        ]
        assert strays == []

    def test_bounded_instance_counts_each_eviction_once(self, tmp_path):
        root = tmp_path / "cache"
        ctx = multiprocessing.get_context()
        start = ctx.Event()
        procs = [
            ctx.Process(target=_writer, args=(str(root), wid, start))
            for wid in (0, 1)
        ]
        for p in procs:
            p.start()
        start.set()
        for p in procs:
            p.join(60.0)
            assert p.exitcode == 0

        probe = PersistentEvalCache(root)
        entry_bytes = probe.info()["bytes"] // len(probe)
        PersistentEvalCache.reset_shared()

        # Budget for roughly half the surviving entries; the next put
        # must trigger an LRU sweep that counts once per removed file.
        bounded = PersistentEvalCache(root, max_bytes=entry_bytes * len(probe) // 2)
        before = len(bounded)
        bounded.put(key_of("one-more"), {"worker": 9, "pad": "x" * 64})
        info = bounded.info()
        assert info["evictions"] == before + 1 - info["entries"]
        assert info["bytes"] <= bounded.max_bytes
        # Evicted entries are really gone from disk, not just the index.
        remaining = sum(
            1
            for shard in (root / "shards").iterdir()
            for path in shard.iterdir()
            if path.name.endswith(".json")
        )
        assert remaining == info["entries"]
