"""PersistentEvalCache: sharding, LRU-by-bytes, corruption, restarts."""

import hashlib
import json
import os

import pytest

from repro.cache import PersistentEvalCache


def key_of(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


@pytest.fixture(autouse=True)
def _fresh_registry():
    """Isolate the process-wide shared-instance registry per test."""
    PersistentEvalCache.reset_shared()
    yield
    PersistentEvalCache.reset_shared()


class TestBasics:
    def test_put_get_roundtrip(self, tmp_path):
        store = PersistentEvalCache(tmp_path / "c")
        key = key_of("a")
        payload = {"fitness": 0.5, "nested": {"x": [1, 2]}}
        store.put(key, payload)
        assert store.get(key) == payload
        assert key in store
        assert len(store) == 1
        info = store.info()
        assert info["hits"] == 1
        assert info["misses"] == 0
        assert info["stores"] == 1

    def test_miss_counts(self, tmp_path):
        store = PersistentEvalCache(tmp_path / "c")
        assert store.get(key_of("nope")) is None
        assert store.info()["misses"] == 1

    def test_sharded_layout(self, tmp_path):
        store = PersistentEvalCache(tmp_path / "c")
        key = key_of("a")
        store.put(key, {"v": 1})
        path = tmp_path / "c" / "shards" / key[:2] / f"{key}.json"
        assert path.is_file()
        on_disk = json.loads(path.read_text())
        assert on_disk["schema"] == 1
        assert on_disk["key"] == key
        assert on_disk["payload"] == {"v": 1}

    def test_malformed_key_rejected(self, tmp_path):
        store = PersistentEvalCache(tmp_path / "c")
        for bad in ("", "xyz", "Z" * 64, key_of("a")[:-1], "../../etc/passwd"):
            with pytest.raises(ValueError):
                store.get(bad)
            with pytest.raises(ValueError):
                store.put(bad, {})


class TestEviction:
    def _sized_payload(self, n: int) -> dict:
        return {"pad": "x" * n}

    def test_lru_eviction_by_bytes(self, tmp_path):
        store = PersistentEvalCache(tmp_path / "c", max_bytes=400)
        a, b, c = key_of("a"), key_of("b"), key_of("c")
        store.put(a, self._sized_payload(50))
        store.put(b, self._sized_payload(50))
        # Refresh a's recency, then push past the budget: b must go first.
        assert store.get(a) is not None
        store.put(c, self._sized_payload(50))
        assert store.get(b) is None
        assert store.get(a) is not None
        assert store.get(c) is not None
        assert store.info()["evictions"] >= 1
        assert store.info()["bytes"] <= 400

    def test_newest_entry_survives_tiny_budget(self, tmp_path):
        store = PersistentEvalCache(tmp_path / "c", max_bytes=10)
        key = key_of("big")
        store.put(key, self._sized_payload(500))
        assert store.get(key) is not None

    def test_unbounded_when_zero(self, tmp_path):
        store = PersistentEvalCache(tmp_path / "c", max_bytes=0)
        for i in range(20):
            store.put(key_of(str(i)), self._sized_payload(100))
        assert len(store) == 20
        assert store.info()["evictions"] == 0


class TestCorruption:
    def test_corrupt_json_dropped_and_counted(self, tmp_path):
        store = PersistentEvalCache(tmp_path / "c")
        key = key_of("a")
        store.put(key, {"v": 1})
        path = tmp_path / "c" / "shards" / key[:2] / f"{key}.json"
        path.write_text("{not json")
        assert store.get(key) is None
        assert store.info()["corrupt_dropped"] == 1
        assert not path.exists()

    def test_wrong_key_inside_file_dropped(self, tmp_path):
        store = PersistentEvalCache(tmp_path / "c")
        key = key_of("a")
        store.put(key, {"v": 1})
        path = tmp_path / "c" / "shards" / key[:2] / f"{key}.json"
        path.write_text(json.dumps({"schema": 1, "key": key_of("b"), "payload": {}}))
        assert store.get(key) is None
        assert store.info()["corrupt_dropped"] == 1

    def test_unknown_schema_dropped(self, tmp_path):
        store = PersistentEvalCache(tmp_path / "c")
        key = key_of("a")
        store.put(key, {"v": 1})
        path = tmp_path / "c" / "shards" / key[:2] / f"{key}.json"
        path.write_text(json.dumps({"schema": 99, "key": key, "payload": {"v": 1}}))
        assert store.get(key) is None

    def test_corruption_never_raises_on_scan(self, tmp_path):
        root = tmp_path / "c"
        store = PersistentEvalCache(root)
        store.put(key_of("good"), {"v": 1})
        shard = root / "shards" / "ab"
        shard.mkdir(exist_ok=True)
        (shard / "not-a-key.json").write_text("junk")
        reopened = PersistentEvalCache(root)
        assert reopened.get(key_of("good")) == {"v": 1}


class TestPersistence:
    def test_entries_survive_reopen(self, tmp_path):
        root = tmp_path / "c"
        store = PersistentEvalCache(root)
        for i in range(5):
            store.put(key_of(str(i)), {"i": i})
        # Simulate a daemon restart: brand-new instance, same directory.
        reopened = PersistentEvalCache(root)
        assert len(reopened) == 5
        for i in range(5):
            assert reopened.get(key_of(str(i))) == {"i": i}
        assert reopened.info()["hits"] == 5

    def test_sibling_instance_adoption(self, tmp_path):
        """An entry written by another process appears on index miss."""
        root = tmp_path / "c"
        mine = PersistentEvalCache(root)
        other = PersistentEvalCache(root)  # simulates a sibling process
        key = key_of("shared")
        other.put(key, {"v": 7})
        assert mine.get(key) == {"v": 7}

    def test_open_is_a_shared_singleton(self, tmp_path):
        root = tmp_path / "c"
        first = PersistentEvalCache.open(root, max_bytes=100)
        second = PersistentEvalCache.open(root, max_bytes=200)
        assert first is second
        # The larger budget wins so a later opener is never starved.
        assert first.max_bytes == 200

    def test_open_relative_and_absolute_alias(self, tmp_path):
        root = tmp_path / "c"
        cwd = os.getcwd()
        os.chdir(tmp_path)
        try:
            rel = PersistentEvalCache.open("c")
            absolute = PersistentEvalCache.open(root)
        finally:
            os.chdir(cwd)
        assert rel is absolute


class TestScanDeterminism:
    """Index rebuild order is stable even with indistinguishable mtimes.

    On filesystems with coarse timestamps a whole run's entries can
    share one mtime; the scan breaks ties by key (and compares mtimes at
    nanosecond resolution), so the rebuilt LRU order — and therefore the
    eviction order — is identical on every restart.
    """

    def test_equal_mtime_rebuild_is_key_ordered(self, tmp_path):
        root = tmp_path / "c"
        store = PersistentEvalCache(root)
        keys = sorted(key_of(str(i)) for i in range(6))
        for key in reversed(keys):  # write in anti-sorted order
            store.put(key, {"v": 1})
        stamp_ns = 1_700_000_000 * 10**9
        for path in (root / "shards").rglob("*.json"):
            os.utime(path, ns=(stamp_ns, stamp_ns))
        first = PersistentEvalCache(root)
        second = PersistentEvalCache(root)
        assert list(first._index) == keys
        assert list(second._index) == keys

    def test_equal_mtime_eviction_picks_identical_victims(self, tmp_path):
        import shutil

        root = tmp_path / "c"
        store = PersistentEvalCache(root)
        for i in range(6):
            store.put(key_of(str(i)), {"pad": "x" * 50})
        stamp_ns = 1_700_000_000 * 10**9
        for path in (root / "shards").rglob("*.json"):
            os.utime(path, ns=(stamp_ns, stamp_ns))
        clone = tmp_path / "clone"
        shutil.copytree(root, clone)
        for path in (clone / "shards").rglob("*.json"):
            os.utime(path, ns=(stamp_ns, stamp_ns))

        def survivors(directory):
            reopened = PersistentEvalCache(directory, max_bytes=400)
            reopened.put(key_of("trigger"), {"pad": "x" * 50})
            return set(reopened._index)

        left, right = survivors(root), survivors(clone)
        assert left == right
        assert len(left) < 7  # the budget actually forced evictions
