"""Preprocessor tests."""

from repro.hdl.preprocess import preprocess


class TestDefine:
    def test_object_macro_expands(self):
        out = preprocess("`define WIDTH 8\nwire [`WIDTH-1:0] w;")
        assert "wire [8-1:0] w;" in out

    def test_nested_macro(self):
        out = preprocess("`define A 1\n`define B `A + 1\nassign x = `B;")
        assert "assign x = 1 + 1;" in out

    def test_undef(self):
        out = preprocess("`define X 1\n`undef X\nassign y = `X;")
        assert "`X" in out

    def test_unknown_macro_left_alone(self):
        out = preprocess("assign y = `NOPE;")
        assert "`NOPE" in out

    def test_initial_defines_argument(self):
        out = preprocess("assign y = `W;", defines={"W": "4"})
        assert "assign y = 4;" in out

    def test_recursion_bounded(self):
        # Self-referential macro must not hang.
        preprocess("`define LOOP `LOOP\nassign x = `LOOP;")


class TestConditionals:
    def test_ifdef_taken(self):
        out = preprocess("`define F 1\n`ifdef F\nwire a;\n`endif")
        assert "wire a;" in out

    def test_ifdef_skipped(self):
        out = preprocess("`ifdef F\nwire a;\n`endif")
        assert "wire a;" not in out

    def test_ifndef_else(self):
        out = preprocess("`ifndef F\nwire a;\n`else\nwire b;\n`endif")
        assert "wire a;" in out
        assert "wire b;" not in out

    def test_line_count_preserved(self):
        source = "`timescale 1ns/1ps\nwire a;\n`define X 1\nwire b;"
        out = preprocess(source)
        assert len(out.splitlines()) == len(source.splitlines())


class TestIgnoredDirectives:
    def test_timescale_dropped(self):
        assert "timescale" not in preprocess("`timescale 1ns/1ps")

    def test_default_nettype_dropped(self):
        assert "nettype" not in preprocess("`default_nettype none")
