"""Parser unit tests."""

import pytest

from repro.hdl import ast, parse
from repro.hdl.parser import ParseError, _parse_number_literal


def module_of(source):
    return parse(source).modules[0]


def first_item(source, item_type):
    for item in module_of(source).items:
        if isinstance(item, item_type):
            return item
    raise AssertionError(f"no {item_type.__name__} found")


class TestModules:
    def test_empty_module(self):
        mod = module_of("module m; endmodule")
        assert mod.name == "m"
        assert mod.items == []

    def test_port_name_list(self):
        mod = module_of("module m(a, b, c); input a, b; output c; endmodule")
        assert mod.port_names == ["a", "b", "c"]

    def test_ansi_ports(self):
        mod = module_of("module m(input clk, output reg [3:0] q); endmodule")
        decls = mod.decls()
        assert decls[0].kind == "input"
        assert decls[1].kind == "output"
        assert decls[1].reg_flag is True

    def test_header_parameters(self):
        mod = module_of("module m #(parameter W = 8)(input [W-1:0] d); endmodule")
        assert mod.decls()[0].name == "W"

    def test_multiple_modules(self):
        src = parse("module a; endmodule module b; endmodule")
        assert [m.name for m in src.modules] == ["a", "b"]

    def test_missing_endmodule_raises(self):
        with pytest.raises(ParseError):
            parse("module m; wire w;")


class TestDeclarations:
    def test_vector_wire(self):
        decl = first_item("module m; wire [7:0] w; endmodule", ast.Decl)
        assert decl.kind == "wire"
        assert decl.msb.aval == 7

    def test_multiple_names_expand(self):
        mod = module_of("module m; reg a, b, c; endmodule")
        assert [d.name for d in mod.decls()] == ["a", "b", "c"]

    def test_memory_declaration(self):
        decl = first_item("module m; reg [7:0] mem [0:255]; endmodule", ast.Decl)
        assert decl.array_msb is not None

    def test_initialised_reg(self):
        decl = first_item("module m; reg r = 1'b0; endmodule", ast.Decl)
        assert isinstance(decl.init, ast.Number)

    def test_parameter_and_localparam(self):
        mod = module_of("module m; parameter P = 3; localparam Q = P + 1; endmodule")
        kinds = [d.kind for d in mod.decls()]
        assert kinds == ["parameter", "localparam"]

    def test_event_declaration(self):
        decl = first_item("module m; event go; endmodule", ast.Decl)
        assert decl.kind == "event"

    def test_integer_declaration(self):
        decl = first_item("module m; integer i; endmodule", ast.Decl)
        assert decl.kind == "integer"

    def test_signed_reg(self):
        decl = first_item("module m; reg signed [7:0] s; endmodule", ast.Decl)
        assert decl.signed is True


class TestBehaviour:
    def test_continuous_assign(self):
        item = first_item("module m; wire w; assign w = 1'b1; endmodule", ast.ContinuousAssign)
        assert isinstance(item.lhs, ast.Identifier)

    def test_assign_with_delay(self):
        item = first_item("module m; wire w; assign #3 w = 1'b1; endmodule", ast.ContinuousAssign)
        assert item.delay is not None

    def test_always_posedge(self):
        item = first_item(
            "module m; reg q; always @(posedge clk) q <= 1; endmodule", ast.Always
        )
        assert item.senslist.items[0].edge == "posedge"

    def test_always_star(self):
        item = first_item("module m; reg q; always @(*) q = 1; endmodule", ast.Always)
        assert item.senslist.items[0].edge == "all"

    def test_always_bare_star(self):
        item = first_item("module m; reg q; always @* q = 1; endmodule", ast.Always)
        assert item.senslist.items[0].edge == "all"

    def test_senslist_or_and_comma(self):
        item = first_item(
            "module m; reg q; always @(a or b, posedge c) q = 1; endmodule", ast.Always
        )
        assert len(item.senslist.items) == 3
        assert item.senslist.items[2].edge == "posedge"

    def test_always_without_senslist(self):
        item = first_item("module m; reg c; always #5 c = !c; endmodule", ast.Always)
        assert item.senslist is None
        assert isinstance(item.body, ast.DelayStmt)

    def test_initial_block(self):
        item = first_item("module m; reg r; initial r = 0; endmodule", ast.Initial)
        assert isinstance(item.body, ast.BlockingAssign)


class TestStatements:
    def _stmt(self, body):
        item = first_item(f"module m; reg a, b; integer i; initial {body} endmodule", ast.Initial)
        return item.body

    def test_nonblocking_with_delay(self):
        stmt = self._stmt("a <= #1 b;")
        assert isinstance(stmt, ast.NonBlockingAssign)
        assert stmt.delay.aval == 1

    def test_blocking_with_delay(self):
        stmt = self._stmt("a = #2 b;")
        assert isinstance(stmt, ast.BlockingAssign)

    def test_if_else_chain(self):
        stmt = self._stmt("if (a) b = 1; else if (b) a = 1; else a = 0;")
        assert isinstance(stmt.else_stmt, ast.If)

    def test_dangling_else_binds_inner(self):
        stmt = self._stmt("if (a) if (b) a = 1; else a = 0;")
        assert stmt.else_stmt is None
        assert stmt.then_stmt.else_stmt is not None

    def test_case_with_default(self):
        stmt = self._stmt("case (a) 1'b0 : b = 0; default : b = 1; endcase")
        assert isinstance(stmt, ast.Case)
        assert stmt.items[1].exprs == []

    def test_case_multi_label(self):
        stmt = self._stmt("case (i) 1, 2, 3 : b = 0; endcase")
        assert len(stmt.items[0].exprs) == 3

    def test_casez(self):
        stmt = self._stmt("casez (a) 1'b? : b = 1; endcase")
        assert stmt.kind == "casez"

    def test_for_loop(self):
        stmt = self._stmt("for (i = 0; i < 8; i = i + 1) b = a;")
        assert isinstance(stmt, ast.For)

    def test_while_loop(self):
        stmt = self._stmt("while (i < 8) i = i + 1;")
        assert isinstance(stmt, ast.While)

    def test_repeat_and_forever(self):
        assert isinstance(self._stmt("repeat (4) a = b;"), ast.RepeatStmt)
        assert isinstance(self._stmt("forever #5 a = !a;"), ast.Forever)

    def test_wait_statement(self):
        stmt = self._stmt("wait (a == 1) b = 1;")
        assert isinstance(stmt, ast.Wait)

    def test_event_control_statement(self):
        stmt = self._stmt("@(posedge a) b = 1;")
        assert isinstance(stmt, ast.EventControl)

    def test_event_trigger(self):
        item = first_item("module m; event e; initial -> e; endmodule", ast.Initial)
        assert isinstance(item.body, ast.EventTrigger)

    def test_named_block_and_disable(self):
        stmt = self._stmt("begin : blk a = 1; disable blk; end")
        assert stmt.name == "blk"
        assert isinstance(stmt.stmts[1], ast.Disable)

    def test_system_task_with_args(self):
        stmt = self._stmt('$display("x=%d", a);')
        assert stmt.name == "$display"
        assert len(stmt.args) == 2

    def test_system_task_no_parens(self):
        stmt = self._stmt("$finish;")
        assert stmt.name == "$finish"

    def test_concat_lvalue(self):
        stmt = self._stmt("{a, b} = 2'b10;")
        assert isinstance(stmt.lhs, ast.Concat)

    def test_null_statement(self):
        assert isinstance(self._stmt(";"), ast.NullStmt)


class TestExpressions:
    def _expr(self, text):
        item = first_item(f"module m; wire [31:0] w; assign w = {text}; endmodule", ast.ContinuousAssign)
        return item.rhs

    def test_precedence_mul_over_add(self):
        expr = self._expr("a + b * c")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_compare_over_logical(self):
        expr = self._expr("a == b && c")
        assert expr.op == "&&"

    def test_ternary(self):
        expr = self._expr("sel ? a : b")
        assert isinstance(expr, ast.Ternary)

    def test_nested_ternary_right_assoc(self):
        expr = self._expr("s1 ? a : s2 ? b : c")
        assert isinstance(expr.false_expr, ast.Ternary)

    def test_unary_reduction(self):
        expr = self._expr("^a")
        assert isinstance(expr, ast.UnaryOp)
        assert expr.op == "^"

    def test_index_and_partselect(self):
        assert isinstance(self._expr("a[3]"), ast.Index)
        assert isinstance(self._expr("a[7:4]"), ast.PartSelect)

    def test_concat(self):
        expr = self._expr("{a, b, 2'b01}")
        assert isinstance(expr, ast.Concat)
        assert len(expr.parts) == 3

    def test_replication(self):
        expr = self._expr("{4{a}}")
        assert isinstance(expr, ast.Repeat_)

    def test_function_call(self):
        expr = self._expr("f(a, b)")
        assert isinstance(expr, ast.FunctionCall)

    def test_system_function_call(self):
        expr = self._expr("$time")
        assert isinstance(expr, ast.FunctionCall)
        assert expr.name == "$time"


class TestNumberLiterals:
    def test_plain_decimal_is_signed_32(self):
        num = _parse_number_literal("42")
        assert (num.width, num.aval, num.signed) == (None, 42, True)

    def test_sized_binary(self):
        num = _parse_number_literal("4'b1010")
        assert (num.width, num.aval, num.bval) == (4, 0b1010, 0)

    def test_hex_with_x_digit(self):
        num = _parse_number_literal("8'hFx")
        assert num.aval & 0xF == 0xF
        assert num.bval & 0xF == 0xF

    def test_z_extension_to_width(self):
        num = _parse_number_literal("8'bz")
        assert num.bval == 0xFF
        assert num.aval == 0

    def test_question_mark_is_z(self):
        num = _parse_number_literal("4'b10?0")
        assert num.bval == 0b0010

    def test_truncation_to_width(self):
        num = _parse_number_literal("2'h10")
        assert num.aval == 0  # 0x10 truncated to 2 bits

    def test_decimal_sized(self):
        num = _parse_number_literal("16'd1000")
        assert num.aval == 1000


class TestInstances:
    def test_named_connections(self):
        inst = first_item(
            "module m; wire a; sub u(.x(a), .y()); endmodule", ast.Instance
        )
        assert inst.module_name == "sub"
        assert inst.ports[0].name == "x"
        assert inst.ports[1].expr is None

    def test_positional_connections(self):
        inst = first_item("module m; wire a, b; sub u(a, b); endmodule", ast.Instance)
        assert all(p.name is None for p in inst.ports)

    def test_parameter_override(self):
        inst = first_item("module m; sub #(.W(8)) u(); endmodule", ast.Instance)
        assert inst.params[0].name == "W"


class TestFunctionsAndTasks:
    def test_function_definition(self):
        fn = first_item(
            "module m; function [7:0] inc; input [7:0] x; inc = x + 1; endfunction endmodule",
            ast.FunctionDef,
        )
        assert fn.name == "inc"
        assert fn.decls[0].kind == "input"

    def test_task_definition(self):
        tk = first_item(
            "module m; task pulse; input v; begin v = 1; #5; end endtask endmodule",
            ast.TaskDef,
        )
        assert tk.name == "pulse"
