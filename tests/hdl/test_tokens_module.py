"""Token-table sanity checks."""

from repro.hdl.tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    PUNCTUATION,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenKind,
)


class TestTokenTables:
    def test_multi_char_operators_longest_first_per_prefix(self):
        # Greedy matching requires that no operator is a prefix of a later,
        # longer operator in the table.
        for i, op in enumerate(MULTI_CHAR_OPERATORS):
            for later in MULTI_CHAR_OPERATORS[i + 1 :]:
                assert not later.startswith(op) or len(later) <= len(op), (op, later)

    def test_all_multichar_built_from_single_char_set(self):
        allowed = set(SINGLE_CHAR_OPERATORS + "-<>")
        for op in MULTI_CHAR_OPERATORS:
            assert set(op) <= allowed, op

    def test_essential_keywords_present(self):
        assert {"module", "endmodule", "always", "initial", "begin", "end",
                "posedge", "negedge", "case", "endcase"} <= KEYWORDS

    def test_punctuation_unique(self):
        assert len(set(PUNCTUATION)) == len(PUNCTUATION)

    def test_token_is_frozen(self):
        token = Token(TokenKind.IDENT, "x", 1, 1)
        import pytest
        with pytest.raises(AttributeError):
            token.text = "y"
