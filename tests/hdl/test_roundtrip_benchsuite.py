"""Round-trip fixpoint over the full benchmark suite (ISSUE 3, sat. 2).

The fuzz generator covers the grammar the generator knows; the 11
benchsuite projects cover the grammar *real designs* use (i2c, sha3,
sdram_controller, ...). For every design.v and testbench.v:

- parse → codegen → re-parse is structurally identical,
- preorder node numbering is stable across the round trip,
- codegen is a text fixpoint from the second generation on.
"""

import pytest

from repro.benchsuite import PROJECT_NAMES, load_project
from repro.fuzz import check_roundtrip
from repro.hdl import generate, max_node_id, parse, structural_diff

assert len(PROJECT_NAMES) == 11


@pytest.fixture(scope="module")
def projects():
    return {name: load_project(name) for name in PROJECT_NAMES}


def _texts(project):
    yield "design", project.design_text
    yield "testbench", project.testbench_text


@pytest.mark.parametrize("name", PROJECT_NAMES)
def test_roundtrip_oracle_passes(projects, name):
    for kind, text in _texts(projects[name]):
        violations = check_roundtrip(text)
        assert violations == [], (name, kind, violations)


@pytest.mark.parametrize("name", PROJECT_NAMES)
def test_node_numbering_is_stable(projects, name):
    """Preorder ids survive parse → codegen → parse unchanged."""
    for kind, text in _texts(projects[name]):
        first = parse(text)
        second = parse(generate(first))
        assert structural_diff(first, second, compare_ids=True) is None, (name, kind)
        assert max_node_id(first) == max_node_id(second), (name, kind)


@pytest.mark.parametrize("name", PROJECT_NAMES)
def test_codegen_fixpoint(projects, name):
    for kind, text in _texts(projects[name]):
        once = generate(parse(text))
        twice = generate(parse(once))
        assert once == twice, (name, kind)


@pytest.mark.parametrize("name", PROJECT_NAMES)
def test_validate_files_also_roundtrip(projects, name):
    """Where present, validate.v goes through the same fixpoint check."""
    validate = projects[name].validate_text
    if validate is None:
        pytest.skip(f"{name} ships no validate.v")
    assert check_roundtrip(validate) == []
