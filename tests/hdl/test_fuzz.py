"""Fuzz/property tests for the frontend.

1. The parser is a total function over arbitrary input: it either returns
   a tree or raises ParseError/LexError — never crashes, never hangs.
2. Codegen round-trip over randomly *constructed* ASTs: generate → parse →
   generate is a fixed point (catches precedence/parenthesisation bugs the
   hand-written tests would miss).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import ast, generate, parse
from repro.hdl.lexer import LexError
from repro.hdl.parser import ParseError


class TestParserTotality:
    @given(st.text(max_size=200))
    @settings(max_examples=300, deadline=None)
    def test_random_text_never_crashes(self, text):
        try:
            parse(text)
        except (ParseError, LexError, RecursionError):
            pass

    @given(st.text(alphabet="moduleendwirereg assign[]():;=<>+-{}0123456789'bhd\n ", max_size=120))
    @settings(max_examples=300, deadline=None)
    def test_verilogish_soup_never_crashes(self, text):
        try:
            parse(text)
        except (ParseError, LexError, RecursionError):
            pass


# ----------------------------------------------------------------------
# Random-AST round trip
# ----------------------------------------------------------------------

_identifiers = st.sampled_from(["a", "b", "c", "data", "sel"])


def _number(value):
    return ast.Number(str(value), None, value, 0, signed=True)


_numbers = st.integers(min_value=0, max_value=255).map(_number)
_leaves = st.one_of(_identifiers.map(ast.Identifier), _numbers)

_BIN_OPS = ["+", "-", "*", "&", "|", "^", "<<", ">>", "==", "!=", "<", ">", "&&", "||"]
_UN_OPS = ["!", "~", "-", "&", "|", "^"]


def _expressions(depth=3):
    return st.recursive(
        _leaves,
        lambda children: st.one_of(
            st.tuples(st.sampled_from(_BIN_OPS), children, children).map(
                lambda t: ast.BinaryOp(t[0], t[1], t[2])
            ),
            st.tuples(st.sampled_from(_UN_OPS), children).map(
                lambda t: ast.UnaryOp(t[0], t[1])
            ),
            st.tuples(children, children, children).map(
                lambda t: ast.Ternary(t[0], t[1], t[2])
            ),
            st.lists(children, min_size=1, max_size=3).map(ast.Concat),
        ),
        max_leaves=10,
    )


def _assign(expr):
    return ast.BlockingAssign(ast.Identifier("out"), expr)


def _statements():
    return st.one_of(
        _expressions().map(_assign),
        st.tuples(_expressions(), _expressions()).map(
            lambda t: ast.If(t[0], _assign(t[1]), None)
        ),
        st.tuples(_expressions(), _expressions()).map(
            lambda t: ast.While(t[0], _assign(t[1]))
        ),
    )


class TestRandomAstRoundTrip:
    @given(_expressions())
    @settings(max_examples=300, deadline=None)
    def test_expression_roundtrip(self, expr):
        module = ast.ModuleDef(
            "m",
            [],
            [
                ast.Decl("reg", "out", _number(31), _number(0)),
                ast.Initial(_assign(expr)),
            ],
        )
        source = ast.Source([module])
        first = generate(source)
        second = generate(parse(first))
        assert first == second

    @given(st.lists(_statements(), min_size=1, max_size=4))
    @settings(max_examples=200, deadline=None)
    def test_statement_roundtrip(self, stmts):
        module = ast.ModuleDef(
            "m",
            [],
            [
                ast.Decl("reg", "out", _number(31), _number(0)),
                ast.Initial(ast.Block(list(stmts))),
            ],
        )
        source = ast.Source([module])
        first = generate(source)
        second = generate(parse(first))
        assert first == second
