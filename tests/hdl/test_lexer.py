"""Lexer unit tests."""

import pytest

from repro.hdl.lexer import LexError, tokenize
from repro.hdl.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is TokenKind.EOF

    def test_keyword_recognised(self):
        assert kinds("module") == [TokenKind.KEYWORD]

    def test_identifier_recognised(self):
        assert kinds("counter_out") == [TokenKind.IDENT]

    def test_identifier_with_dollar_in_middle(self):
        assert texts("a$b") == ["a$b"]

    def test_system_identifier(self):
        toks = tokenize("$display")
        assert toks[0].kind is TokenKind.SYSTEM_IDENT
        assert toks[0].text == "$display"

    def test_escaped_identifier(self):
        toks = tokenize("\\weird+name more")
        assert toks[0].kind is TokenKind.IDENT
        assert toks[0].text == "weird+name"

    def test_string_literal(self):
        toks = tokenize('"hello %d"')
        assert toks[0].kind is TokenKind.STRING
        assert toks[0].text == "hello %d"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_unexpected_character_raises(self):
        with pytest.raises(LexError):
            tokenize("\x01")


class TestNumbers:
    @pytest.mark.parametrize(
        "literal",
        ["42", "4'b1010", "8'hFF", "12'o777", "16'd1000", "'hDEAD", "4'b10x0", "8'bz", "3.14"],
    )
    def test_number_forms_lex_as_single_token(self, literal):
        toks = tokenize(literal)
        assert toks[0].kind is TokenKind.NUMBER
        assert toks[0].text == literal
        assert toks[1].kind is TokenKind.EOF

    def test_underscores_allowed(self):
        assert texts("32'hDEAD_BEEF") == ["32'hDEAD_BEEF"]

    def test_signed_base_prefix(self):
        assert texts("8'sb1010") == ["8'sb1010"]

    def test_missing_base_raises(self):
        with pytest.raises(LexError):
            tokenize("4'q1010")


class TestOperators:
    @pytest.mark.parametrize(
        "op", ["<=", ">=", "==", "!=", "===", "!==", "&&", "||", "<<", ">>", "<<<", ">>>", "->", "**", "~&", "~|", "~^"]
    )
    def test_multichar_operator_is_one_token(self, op):
        assert texts(f"a {op} b") == ["a", op, "b"]

    def test_adjacent_operators_greedy(self):
        # "a<=b" must lex <= not < then =.
        assert texts("a<=b") == ["a", "<=", "b"]

    def test_punctuation(self):
        assert texts("#5;") == ["#", "5", ";"]


class TestTrivia:
    def test_line_comment_skipped(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_directive_line_skipped(self):
        assert texts("`timescale 1ns/1ps\nwire") == ["wire"]

    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)
