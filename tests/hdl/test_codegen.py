"""Code generation and round-trip tests."""

import pytest

from repro.hdl import ast, generate, parse
from repro.benchsuite import all_projects


def roundtrip(source):
    """parse → generate → parse → generate must be a fixed point."""
    first = generate(parse(source))
    second = generate(parse(first))
    assert first == second
    return first


class TestRoundTrip:
    def test_simple_module(self):
        text = roundtrip("module m(a); input a; endmodule")
        assert "module m(a);" in text

    def test_always_block(self):
        text = roundtrip(
            "module m; reg q; always @(posedge clk) begin q <= #1 !q; end endmodule"
        )
        assert "always @(posedge clk)" in text
        assert "q <= #1" in text

    def test_case_statement(self):
        text = roundtrip(
            "module m; reg [1:0] s; reg o; always @(*) case (s) 2'b00 : o = 0;"
            " default : o = 1; endcase endmodule"
        )
        assert "endcase" in text

    def test_for_loop(self):
        roundtrip(
            "module m; integer i; reg [7:0] a; initial for (i = 0; i < 8; i = i + 1) a = i; endmodule"
        )

    def test_functions_and_tasks(self):
        roundtrip(
            "module m; function [3:0] f; input [3:0] x; f = x ^ 1; endfunction "
            "task t; input v; #1; endtask endmodule"
        )

    def test_events_and_triggers(self):
        text = roundtrip(
            "module m; event e; initial begin -> e; @(e); end endmodule"
        )
        assert "-> e;" in text

    def test_instance_with_params(self):
        text = roundtrip("module m; sub #(.W(4)) u(.a(1'b0)); endmodule")
        assert "#(.W(4))" in text

    def test_number_spelling_preserved(self):
        text = roundtrip("module m; wire [7:0] w; assign w = 8'hA5; endmodule")
        assert "8'hA5" in text

    @pytest.mark.parametrize("project", all_projects(), ids=lambda p: p.name)
    def test_all_benchmark_designs_roundtrip(self, project):
        roundtrip(project.design_text)
        roundtrip(project.testbench_text)
        if project.validate_text:
            roundtrip(project.validate_text)


class TestFragmentRendering:
    def test_expression(self):
        expr = parse("module m; wire w; assign w = a + b * c; endmodule")
        item = expr.modules[0].items[-1]
        assert generate(item.rhs) == "(a + (b * c))"

    def test_statement(self):
        tree = parse("module m; reg a; initial a = 1; endmodule")
        item = tree.modules[0].items[-1]
        assert generate(item.body).strip() == "a = 1;"

    def test_missing_expression_raises(self):
        from repro.hdl.codegen import CodegenError

        broken = ast.BlockingAssign(ast.Identifier("a"), None)  # type: ignore[arg-type]
        with pytest.raises(CodegenError):
            generate(broken)
