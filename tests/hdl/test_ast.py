"""AST structural-operation tests (walk / find / replace / insert / clone)."""

from repro.hdl import ast, parse
from repro.hdl.node_ids import clear_ids, max_node_id, number_nodes

SRC = """
module m;
  reg [3:0] q;
  always @(posedge clk) begin
    if (en) q <= q + 1;
  end
endmodule
"""


def tree():
    return parse(SRC)


class TestNumbering:
    def test_preorder_ids_sequential(self):
        t = tree()
        ids = [n.node_id for n in t.walk()]
        assert ids == list(range(1, len(ids) + 1))

    def test_max_node_id(self):
        t = tree()
        assert max_node_id(t) == sum(1 for _ in t.walk())

    def test_clear_ids(self):
        t = tree()
        clear_ids(t)
        assert all(n.node_id is None for n in t.walk())

    def test_number_from_offset(self):
        t = tree()
        next_id = number_nodes(t, start=100)
        assert min(n.node_id for n in t.walk()) == 100
        assert next_id == 100 + sum(1 for _ in t.walk())


class TestFindReplace:
    def test_find_returns_node(self):
        t = tree()
        target = next(n for n in t.walk() if isinstance(n, ast.NonBlockingAssign))
        assert t.find(target.node_id) is target

    def test_find_missing_returns_none(self):
        assert tree().find(10**9) is None

    def test_replace_scalar_field(self):
        t = tree()
        if_stmt = next(n for n in t.walk() if isinstance(n, ast.If))
        new_cond = ast.Identifier("other")
        new_cond.node_id = 9999
        assert t.replace(if_stmt.cond.node_id, new_cond)
        assert if_stmt.cond is new_cond

    def test_replace_list_member(self):
        t = tree()
        nba = next(n for n in t.walk() if isinstance(n, ast.NonBlockingAssign))
        replacement = ast.NullStmt()
        assert t.replace(nba.node_id, replacement)
        assert t.find(nba.node_id) is None

    def test_replace_with_none_deletes_from_list(self):
        t = tree()
        if_stmt = next(n for n in t.walk() if isinstance(n, ast.If))
        block = next(
            n for n in t.walk() if isinstance(n, ast.Block) and if_stmt in n.stmts
        )
        before = len(block.stmts)
        assert t.replace(if_stmt.node_id, None)
        assert len(block.stmts) == before - 1

    def test_replace_missing_returns_false(self):
        assert tree().replace(10**9, ast.NullStmt()) is False


class TestInsert:
    def test_insert_after_in_block(self):
        t = tree()
        if_stmt = next(n for n in t.walk() if isinstance(n, ast.If))
        new_stmt = ast.NullStmt()
        new_stmt.node_id = 7777
        assert t.insert_after(if_stmt.node_id, new_stmt)
        block = next(n for n in t.walk() if isinstance(n, ast.Block))
        assert block.stmts[-1] is new_stmt

    def test_insert_after_scalar_position_fails(self):
        t = tree()
        if_stmt = next(n for n in t.walk() if isinstance(n, ast.If))
        # The condition is a scalar field, not a list member.
        assert t.insert_after(if_stmt.cond.node_id, ast.NullStmt()) is False


class TestCloneAndParents:
    def test_clone_preserves_ids_and_is_deep(self):
        t = tree()
        c = t.clone()
        assert [n.node_id for n in t.walk()] == [n.node_id for n in c.walk()]
        nba = next(n for n in c.walk() if isinstance(n, ast.NonBlockingAssign))
        c.replace(nba.node_id, ast.NullStmt())
        # The original is untouched.
        assert any(isinstance(n, ast.NonBlockingAssign) for n in t.walk())

    def test_parent_map(self):
        t = tree()
        parents = t.parent_map()
        if_stmt = next(n for n in t.walk() if isinstance(n, ast.If))
        assert isinstance(parents[if_stmt.node_id], ast.Block)

    def test_module_lookup_helpers(self):
        t = tree()
        mod = t.module("m")
        assert mod is not None
        assert mod.find_decl("q") is not None
        assert mod.find_decl("nope") is None
        assert t.module("zzz") is None
