"""The oracle battery on clean and deliberately-broken inputs."""

import pytest

from repro.fuzz import (
    check_backends,
    check_determinism,
    check_roundtrip,
    check_templates,
    generate_program,
    split_program,
)
from repro.hdl import ast, parse


@pytest.fixture(scope="module")
def program():
    return generate_program(0)


@pytest.fixture(scope="module")
def det_result(program):
    return check_determinism(program)


class TestRoundtrip:
    def test_clean_program_passes(self, program):
        assert check_roundtrip(program.text, program.source) == []

    def test_unparseable_text_is_a_violation(self):
        violations = check_roundtrip("module broken(; endmodule")
        assert violations and violations[0].oracle == "roundtrip"
        assert "parse" in violations[0].detail

    def test_reference_mismatch_is_a_violation(self, program):
        """The differential against the builder AST catches silent edits."""
        tampered = parse(program.text)
        module = tampered.modules[0]
        module.name = module.name + "_renamed"
        violations = check_roundtrip(program.text, tampered)
        assert violations and violations[0].oracle == "roundtrip"
        assert "generator's AST" in violations[0].detail

    def test_plain_text_without_reference(self, program):
        assert check_roundtrip(program.text) == []


class TestSplitProgram:
    def test_splits_on_tb_name(self, program):
        design, tb = split_program(program.text)
        assert "fuzz_dut" in design
        assert "fuzz_tb" in tb
        assert "fuzz_tb" not in design

    def test_single_module_goes_to_testbench_slot(self):
        design, tb = split_program("module lone(); endmodule\n")
        assert design == ""
        assert "lone" in tb


class TestDeterminism:
    def test_clean_program_has_no_violations(self, det_result):
        violations, oracle = det_result
        assert violations == []
        assert oracle is not None and len(oracle) > 0

    def test_process_backend_agrees(self, program):
        violations, oracle = check_determinism(program, backend="process", workers=2)
        assert violations == []
        assert oracle is not None


class TestBackends:
    def test_serial_and_pool_agree(self, program, det_result):
        _, oracle = det_result
        assert check_backends(program, oracle, workers=2) == []


class TestTemplates:
    def test_closure_holds_on_clean_program(self, program, det_result):
        _, oracle = det_result
        assert check_templates(program, oracle, max_sim_mutants=2) == []

    def test_without_oracle_skips_simulation(self, program):
        assert check_templates(program, None) == []

    def test_zero_sim_budget_is_allowed(self, program, det_result):
        _, oracle = det_result
        assert check_templates(program, oracle, max_sim_mutants=0) == []

    def test_broken_design_is_a_violation(self):
        broken = generate_program(0)
        violations = check_templates(
            _with_design(broken, "module nope(; endmodule"), None
        )
        assert violations and violations[0].oracle == "templates"


def _with_design(program, design_text):
    from repro.fuzz.generator import GeneratedProgram

    return GeneratedProgram(
        seed=program.seed,
        design_text=design_text,
        testbench_text=program.testbench_text,
        decisions=program.decisions,
        source=program.source,
    )
