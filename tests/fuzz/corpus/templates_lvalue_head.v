// fuzz reproducer: oracle=templates
// regression: numeric templates incremented assignment left-hand sides,
// producing `(q + 1) = ...` which no longer parses. The identifier at an
// LHS head (including through index/part-selects) must be refused while
// expressions inside the index stay legal targets.
module fuzz_dut (clk, d, q, v);
  input clk;
  input [3:0] d;
  output reg [3:0] q;
  output reg [3:0] v;
  reg [1:0] i;
  always @(posedge clk) begin
    q = q + 1;
    v[i] = d[i];
    i <= i + 1;
  end
endmodule
