// fuzz reproducer: oracle=roundtrip
// regression: the parser dropped `signed` in parameter declarations, so
// parse -> codegen lost the keyword and the numbered AST fixpoint broke.
module fuzz_dut (clk, q);
  parameter signed [3:0] OFFSET = -4'sd3;
  parameter signed WIDE = -2;
  input clk;
  output reg signed [3:0] q;
  always @(posedge clk) begin
    q <= q + OFFSET + WIDE;
  end
endmodule
