"""End-to-end fuzz runs: clean pass, fault injection, shrink, telemetry."""

import pytest

from repro.fuzz import FAULTS, FuzzConfig, run_fuzz
from repro.hdl import parse
from repro.obs import RecordingObserver

#: Seed 2 is the smallest single seed whose program exercises a ternary
#: deep enough for the planted drop_ternary_parens fault to reassociate.
FAULT_SEED = 2


def _quick(seed=0, count=2, **overrides):
    defaults = dict(
        seed=seed, count=count, cross_backend_every=0, max_sim_mutants=1,
        check_logic=False, shrink=False,
    )
    defaults.update(overrides)
    return FuzzConfig(**defaults)


class TestCleanRun:
    def test_fixed_seed_run_is_clean(self):
        report = run_fuzz(_quick(count=3))
        assert report.ok
        assert report.programs == 3
        assert report.checks["roundtrip"] == 3
        assert report.checks["determinism"] == 3
        assert report.checks["templates"] == 3

    def test_summary_is_byte_stable(self):
        a = run_fuzz(_quick(count=2))
        b = run_fuzz(_quick(count=2))
        assert a.to_text() == b.to_text()
        assert "violations: 0" in a.to_text()

    def test_summary_identical_across_backends(self):
        serial = run_fuzz(_quick(count=1))
        process = run_fuzz(_quick(count=1, backend="process"))
        assert serial.to_text() == process.to_text()

    def test_logic_sweep_is_counted(self):
        report = run_fuzz(_quick(count=1, check_logic=True))
        assert report.ok
        assert report.checks["logic"] == 1

    def test_cross_backend_stride(self):
        report = run_fuzz(_quick(count=2, cross_backend_every=2))
        assert report.ok
        assert report.checks["backends"] == 1  # only index 0 hits the stride


class TestValidation:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            run_fuzz(_quick(backend="gpu"))

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError, match="unknown fault"):
            run_fuzz(_quick(inject_fault="no_such_fault"))

    def test_fault_registry_is_nonempty(self):
        assert "drop_ternary_parens" in FAULTS


class TestFaultInjection:
    """The mutation-smoke acceptance gate: a planted codegen fault must
    be caught by the round-trip oracle and auto-shrunk to a small
    reproducer (documented in docs/fuzzing.md)."""

    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        corpus = tmp_path_factory.mktemp("corpus")
        return run_fuzz(
            _quick(
                seed=FAULT_SEED, count=1, inject_fault="drop_ternary_parens",
                shrink=True, corpus_dir=corpus,
            )
        )

    def test_fault_is_caught(self, report):
        assert not report.ok
        assert any(v.oracle == "roundtrip" for v in report.violations)

    def test_reproducer_is_shrunk_and_small(self, report):
        violation = next(v for v in report.violations if v.oracle == "roundtrip")
        assert violation.shrunk_text is not None
        assert len(violation.reproducer.splitlines()) <= 30
        assert len(violation.shrunk_text) <= len(violation.program_text)

    def test_reproducer_written_to_corpus(self, report):
        assert report.corpus_files
        path = report.corpus_files[0]
        content = path.read_text()
        assert content.startswith("// fuzz reproducer:")
        parse(content)  # reproducers are themselves valid input


class TestTelemetry:
    def test_run_emits_fuzz_events(self):
        observer = RecordingObserver()
        run_fuzz(_quick(count=2), observers=[observer])
        types = observer.types()
        assert types.count("fuzz_program_checked") == 2
        assert types[-1] == "fuzz_run_completed"

    def test_violations_are_reported_as_events(self):
        observer = RecordingObserver()
        run_fuzz(
            _quick(seed=FAULT_SEED, count=1, inject_fault="drop_ternary_parens"),
            observers=[observer],
        )
        assert "fuzz_violation_found" in observer.types()
