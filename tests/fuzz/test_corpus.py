"""Replay the checked-in regression corpus (tests/fuzz/corpus).

Every corpus file is a shrunk reproducer for a *fixed* defect, so each
must now pass the oracle named in its header comment: the round-trip
oracle runs on every file, the template-closure oracle on each design
module. See tests/fuzz/corpus/README.md for the check-in policy.
"""

from pathlib import Path

import pytest

from repro.fuzz import check_roundtrip, check_templates
from repro.fuzz.generator import GeneratedProgram
from repro.hdl import parse

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.v"))

pytestmark = pytest.mark.fuzz_corpus


def _corpus_id(path: Path) -> str:
    return path.stem


def test_corpus_is_not_empty():
    assert CORPUS_FILES, "regression corpus went missing"


@pytest.mark.parametrize("path", CORPUS_FILES, ids=_corpus_id)
def test_header_documents_the_oracle(path):
    first = path.read_text().splitlines()[0]
    assert first.startswith("// fuzz reproducer:"), path


@pytest.mark.parametrize("path", CORPUS_FILES, ids=_corpus_id)
def test_roundtrip_oracle_passes(path):
    violations = check_roundtrip(path.read_text())
    assert violations == [], violations


@pytest.mark.parametrize("path", CORPUS_FILES, ids=_corpus_id)
def test_template_closure_passes(path):
    text = path.read_text()
    program = GeneratedProgram(
        seed=-1, design_text=text, testbench_text="", decisions=(),
        source=parse(text),
    )
    violations = check_templates(program, None)
    assert violations == [], violations
