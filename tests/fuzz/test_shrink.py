"""Decision-trace delta reduction."""

from repro.core.minimize import ddmin
from repro.fuzz import generate_program, replay_program, shrink_decisions


class TestShrinkDecisions:
    def test_preserves_the_failure_predicate(self):
        program = generate_program(2)
        token = "case"
        if token not in program.text:  # make the predicate seed-proof
            token = "fuzz_dut"
        assert token in program.text

        def still_failing(candidate):
            return token in candidate.text

        shrunk = shrink_decisions(
            list(program.decisions), still_failing, max_tests=80,
            seed=program.seed,
        )
        assert token in shrunk.text
        assert len(shrunk.decisions) <= len(program.decisions)

    def test_shrinks_towards_simplest_program(self):
        """A trivially-true predicate reduces close to the zero trace."""
        program = generate_program(0)
        shrunk = shrink_decisions(
            list(program.decisions), lambda p: True, max_tests=120,
            seed=program.seed,
        )
        baseline = replay_program([0])
        assert len(shrunk.text) <= len(baseline.text) * 2

    def test_predicate_exceptions_count_as_not_failing(self):
        program = generate_program(1)
        calls = {"n": 0}

        def flaky(candidate):
            calls["n"] += 1
            if tuple(candidate.decisions) != tuple(program.decisions):
                raise RuntimeError("probe blew up")
            return True

        shrunk = shrink_decisions(
            list(program.decisions), flaky, max_tests=40, seed=program.seed
        )
        # every reduction probe raised, so nothing was reduced
        assert shrunk.text == program.text
        assert calls["n"] > 0


class TestGenericDdmin:
    def test_finds_minimal_pair(self):
        items = list(range(20))

        def still_failing(keep):
            return 3 in keep and 17 in keep

        assert ddmin(items, still_failing) == [3, 17]

    def test_preserves_order(self):
        items = list("abcdef")

        def still_failing(keep):
            return "e" in keep and "b" in keep

        assert ddmin(items, still_failing) == ["b", "e"]

    def test_never_proposes_empty(self):
        probes = []

        def still_failing(keep):
            probes.append(list(keep))
            return True

        result = ddmin([1], still_failing)
        assert result == [1]
        assert all(probe for probe in probes)

    def test_budget_is_respected(self):
        items = list(range(64))
        probes = []

        def still_failing(keep):
            probes.append(1)
            return 63 in keep

        result = ddmin(items, still_failing, max_tests=10)
        assert len(probes) <= 10 + 1  # classic phase may finish its subset
        assert 63 in result

    def test_empty_input_returns_empty(self):
        assert ddmin([], lambda keep: True) == []
