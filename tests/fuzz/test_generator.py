"""The generator: determinism, replayability, shrink-friendly clamping."""

import pytest

from repro.fuzz import DecisionTrace, generate_program, replay_program
from repro.hdl import generate, parse, structurally_equal

SEEDS = range(8)


class TestDecisionTrace:
    def test_fresh_draws_record_decisions(self):
        trace = DecisionTrace(seed=0)
        values = [trace.decide(6) for _ in range(20)]
        assert trace.decisions == values
        assert all(0 <= v < 6 for v in values)

    def test_replay_reproduces_script(self):
        script = [3, 1, 4, 1, 5]
        trace = DecisionTrace(script=script)
        assert [trace.decide(6) for _ in range(5)] == script

    def test_replay_clamps_out_of_range(self):
        trace = DecisionTrace(script=[17])
        assert trace.decide(5) == 17 % 5

    def test_exhausted_script_yields_zero(self):
        trace = DecisionTrace(script=[2])
        assert trace.decide(3) == 2
        assert trace.decide(3) == 0
        assert trace.decide(7) == 0

    def test_decide_rejects_empty_choice(self):
        with pytest.raises(ValueError):
            DecisionTrace(seed=0).decide(0)

    def test_maybe_extremes(self):
        trace = DecisionTrace(seed=0)
        assert not any(trace.maybe(0) for _ in range(50))
        assert all(trace.maybe(100) for _ in range(50))


class TestGenerateProgram:
    def test_same_seed_same_program(self):
        a = generate_program(0)
        b = generate_program(0)
        assert a.text == b.text
        assert a.decisions == b.decisions

    def test_seeds_produce_distinct_programs(self):
        texts = {generate_program(seed).text for seed in SEEDS}
        assert len(texts) > 1

    @pytest.mark.parametrize("seed", SEEDS)
    def test_generated_text_parses(self, seed):
        program = generate_program(seed)
        tree = parse(program.text)
        names = [m.name for m in tree.modules]
        assert "fuzz_dut" in names
        assert "fuzz_tb" in names

    @pytest.mark.parametrize("seed", SEEDS)
    def test_text_matches_builder_ast(self, seed):
        """codegen(source) must equal the emitted design+testbench text."""
        program = generate_program(seed)
        assert generate(program.source) == program.text

    @pytest.mark.parametrize("seed", SEEDS)
    def test_replay_is_byte_identical(self, seed):
        program = generate_program(seed)
        replayed = replay_program(list(program.decisions), seed=seed)
        assert replayed.text == program.text
        assert structurally_equal(replayed.source, program.source)

    def test_replay_of_truncated_trace_still_generates(self):
        """List surgery must never derail generation (shrink contract)."""
        program = generate_program(3)
        decisions = list(program.decisions)
        for cut in (0, 1, len(decisions) // 2, len(decisions) - 1):
            partial = replay_program(decisions[:cut])
            parse(partial.text)  # must not raise

    def test_replay_of_zeroed_trace_generates_simplest(self):
        zeroed = replay_program([0] * 10)
        parse(zeroed.text)
        # convention: decision 0 selects the simplest alternative, so an
        # all-zero trace is among the smallest programs the grammar emits
        assert len(zeroed.text.splitlines()) < len(generate_program(0).text.splitlines()) + 40
