"""Infrastructure micro-benchmarks (supporting data for the runtime
analysis: the paper reports >90% of repair time goes to simulations, so
simulator and frontend throughput bound everything else)."""

from repro.benchsuite import load_project
from repro.core.fitness import evaluate_fitness
from repro.core.oracle import combine_sources, ensure_instrumented
from repro.hdl import generate, parse
from repro.sim.simulator import Simulator


def _counter_sources():
    project = load_project("counter")
    golden = parse(project.design_text)
    bench = ensure_instrumented(parse(project.testbench_text), golden)
    return project, golden, bench


def test_parse_throughput(benchmark):
    project = load_project("sdram_controller")
    tree = benchmark(parse, project.design_text)
    assert tree.modules


def test_codegen_throughput(benchmark):
    tree = parse(load_project("sdram_controller").design_text)
    text = benchmark(generate, tree)
    assert "module sdram_controller" in text


def test_simulation_throughput(benchmark):
    project, golden, bench = _counter_sources()
    combined = combine_sources(golden, bench)

    def simulate():
        return Simulator(combined.clone()).run(10_000)

    result = benchmark(simulate)
    assert result.finished
    assert len(result.trace) >= 20


def test_fitness_throughput(benchmark):
    from repro.benchsuite import load_scenario

    scenario = load_scenario("counter_reset")
    oracle = scenario.oracle()
    from repro.benchsuite.scenario import simulate_design_text

    trace = simulate_design_text(scenario.faulty_design_text, scenario.instrumented_testbench())
    breakdown = benchmark(evaluate_fitness, trace, oracle)
    assert 0 < breakdown.fitness < 1


def test_end_to_end_candidate_evaluation(benchmark):
    """One full candidate evaluation: codegen → parse → elaborate →
    simulate → fitness — the unit the paper's 12-hour budgets buy."""
    from repro.benchsuite import load_scenario
    from repro.core.repair import CirFixEngine
    from repro.core.patch import Patch
    from repro.experiments.common import SMOKE

    scenario = load_scenario("counter_reset")
    engine = CirFixEngine(scenario.problem(), scenario.suggested_config(SMOKE))

    def evaluate_uncached():
        engine._cache.clear()
        return engine.evaluate(Patch.empty())

    evaluation = benchmark(evaluate_uncached)
    assert evaluation.compiled
