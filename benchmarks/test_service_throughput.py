"""Benchmark: repair-as-a-service vs direct runs (repro.service).

Measures, on the counter_reset scenario with the SMOKE preset, and
writes the raw numbers to ``BENCH_service.json`` at the repo root:

1. cold submission — one job through the daemon (admission + socket +
   thread-pool dispatch + full repair), compared against the same
   request run directly in-process, giving the service overhead;
2. warm resubmission — the identical request again, served out of the
   persistent sharded eval cache (asserting the ≥90% hit-rate contract
   and reporting the cold/warm speedup);
3. submission fan-in — N identical in-flight submissions coalescing
   onto one job (dedup), reporting per-submission wall clock.

The daemon runs on a background thread inside this process (Unix socket
in a temp dir), so the numbers include real protocol round-trips but no
container/VM noise.
"""

import asyncio
import json
import os
import tempfile
import threading
import time
from pathlib import Path

from repro.api import run_request
from repro.cache import PersistentEvalCache
from repro.core.config import RepairConfig
from repro.experiments.common import SMOKE
from repro.service import RepairDaemon, RepairRequest, ServiceClient

_REPO_ROOT = Path(__file__).resolve().parents[1]
_RESULTS: dict[str, object] = {"scenario": "counter_reset", "cpu_count": os.cpu_count()}


def _request() -> RepairRequest:
    """The benchmarked job: counter_reset under SMOKE-shaped overrides."""
    return RepairRequest(
        scenario="counter_reset",
        config={
            "population_size": SMOKE.population_size,
            "max_generations": SMOKE.max_generations,
            "max_fitness_evals": SMOKE.max_fitness_evals,
            "max_wall_seconds": SMOKE.max_wall_seconds,
            "minimize_budget": SMOKE.minimize_budget,
        },
        seeds=(0,),
    )


class _Daemon:
    """A daemon on a background thread, torn down via the protocol."""

    def __init__(self, cache_dir: str):
        self.tmp = tempfile.mkdtemp(prefix="repro-bench-service-")
        self.socket_path = os.path.join(self.tmp, "repro.sock")
        self.daemon = RepairDaemon(
            self.socket_path,
            base_config=RepairConfig(cache_dir=cache_dir),
            max_jobs=2,
        )
        self.thread = threading.Thread(
            target=lambda: asyncio.run(self.daemon.serve()), daemon=True
        )

    def start(self) -> ServiceClient:
        """Start serving and return a ready client."""
        self.thread.start()
        client = ServiceClient(self.socket_path, timeout=600)
        deadline = time.monotonic() + 10
        while True:
            try:
                client.ping()
                return client
            except OSError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.02)

    def stop(self) -> None:
        """Drain and join the daemon thread."""
        try:
            ServiceClient(self.socket_path, timeout=30).shutdown()
        except OSError:
            pass
        self.thread.join(timeout=120)


def test_service_throughput(once):
    """Cold vs warm vs direct, plus dedup fan-in, in one daemon session."""
    PersistentEvalCache.reset_shared()
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    request = _request()

    def sweep():
        timings: dict[str, object] = {}

        start = time.monotonic()
        direct = run_request(request, base_config=RepairConfig(cache_dir=""))
        timings["direct_seconds"] = time.monotonic() - start
        assert direct.plausible, "counter_reset should repair under SMOKE"

        box = _Daemon(cache_dir)
        client = box.start()
        try:
            start = time.monotonic()
            _, cold = client.submit(request)
            timings["cold_submit_seconds"] = time.monotonic() - start
            assert cold.status == "done"
            assert cold.plausible

            start = time.monotonic()
            _, warm = client.submit(request)
            timings["warm_submit_seconds"] = time.monotonic() - start
            assert warm.status == "done"
            assert warm.cache["hit_rate"] >= 0.9, warm.cache
            timings["warm_hit_rate"] = warm.cache["hit_rate"]

            # Fan-in: N identical submissions racing; dedup coalesces the
            # in-flight ones, the cache serves the rest.
            fan = 6
            results: list[float] = []

            def submit_one():
                t0 = time.monotonic()
                _, response = client.submit(request)
                assert response.status == "done"
                results.append(time.monotonic() - t0)

            threads = [threading.Thread(target=submit_one) for _ in range(fan)]
            start = time.monotonic()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            timings["fanin"] = {
                "submissions": fan,
                "wall_seconds": time.monotonic() - start,
                "mean_submission_seconds": sum(results) / len(results),
            }
        finally:
            box.stop()
        return timings

    timings = once(sweep)
    overhead = timings["cold_submit_seconds"] - timings["direct_seconds"]
    warm_speedup = (
        timings["cold_submit_seconds"] / timings["warm_submit_seconds"]
        if timings["warm_submit_seconds"] > 0
        else float("inf")
    )
    _RESULTS["throughput"] = {
        **timings,
        "service_overhead_seconds": overhead,
        "warm_speedup": warm_speedup,
    }
    (_REPO_ROOT / "BENCH_service.json").write_text(
        json.dumps(_RESULTS, indent=2) + "\n"
    )
    # The warm path skips every simulation; it must be clearly faster.
    assert warm_speedup >= 1.5, f"warm resubmit only {warm_speedup:.2f}x faster"
    PersistentEvalCache.reset_shared()
