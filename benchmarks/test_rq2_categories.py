"""Benchmark: RQ2 — category 1 vs category 2 repair performance.

The paper's claim is that CirFix handles both "easy" and "hard" defects:
Category 1 rate 63.2%, Category 2 rate 69.2%, no significant repair-time
difference.  We run a balanced four-scenario sample (two per category,
drawn from the classes the paper repairs) and check both categories repair.
"""

from repro.benchsuite import load_scenario
from repro.experiments.common import SMOKE, run_scenario
from repro.experiments.rq2 import analyze_rq2, render_rq2

SAMPLE = ["ff_cond", "lshift_sens", "fsm_next_sens", "fsm_next_default"]


def test_rq2_both_categories_repairable(once):
    def run_sample():
        return [
            run_scenario(load_scenario(sid), SMOKE, seeds=(0, 1)) for sid in SAMPLE
        ]

    results = once(run_sample)
    analysis = analyze_rq2(results)
    assert analysis.cat1.total == 2
    assert analysis.cat2.total == 2
    assert analysis.cat1.plausible >= 1
    assert analysis.cat2.plausible >= 1
    print()
    print(render_rq2(analysis))
