"""Benchmark: the scenario factory and the minted grading harness.

Mints a fixed-seed scenario set, grades the built-in CirFix engine on a
slice of it (serial and process backends), and writes the raw numbers to
``BENCH_minted_grading.json`` at the repo root:

- mint yield: admitted/requested, per-mutator and per-source counts,
  rejection reasons, and mint wall time;
- grading: per-mutator plausible / correct / ground-truth-match rates,
  total ``eval_sims``, and wall time per backend.

Assertions pin the factory's contract rather than host speed: the yield
clears the admission bar across several defect families, every admitted
defect is observable (fitness < 1.0), and the serial and process
grading summaries are byte-identical.
"""

import json
import os
import time
from pathlib import Path

from repro.mint import MintConfig, grade_scenarios, mint_scenarios
from repro.mint.grading import GRADE_CONFIG

_REPO_ROOT = Path(__file__).resolve().parents[1]

SEED = 0
MINT_ATTEMPTS = 20
GRADE_SLICE = 4
#: Admission bar for the fixed seed: most attempts must survive the
#: observability gate, across at least this many defect families.
MIN_ADMITTED = 12
MIN_FAMILIES = 4


def test_minted_grading(once):
    def sweep():
        started = time.monotonic()
        report = mint_scenarios(
            MintConfig(seed=SEED, count=MINT_ATTEMPTS, shrink_rejected=False)
        )
        mint_seconds = time.monotonic() - started

        sliced = report.admitted[:GRADE_SLICE]
        started = time.monotonic()
        serial = grade_scenarios(sliced, seed=SEED, seeds=(0,))
        serial_seconds = time.monotonic() - started

        started = time.monotonic()
        process = grade_scenarios(
            sliced,
            seed=SEED,
            seeds=(0,),
            config=GRADE_CONFIG.scaled(workers=2, backend="process"),
        )
        process_seconds = time.monotonic() - started

        assert serial.to_text() == process.to_text(), "grading diverged by backend"
        assert serial.to_json() == process.to_json()
        return {
            "mint": {
                "requested": report.requested,
                "admitted": len(report.admitted),
                "by_mutator": report.by_mutator(),
                "by_source": report.by_source(),
                "rejected": report.by_reason(),
                "families": len(report.by_label()),
                "seconds": mint_seconds,
            },
            "grading": {
                "scenarios": len(sliced),
                "engine": serial.engine,
                "plausible": serial.plausible,
                "correct": serial.correct,
                "ground_truth_matches": serial.ground_truth_matches,
                "by_mutator": {
                    mutator: {
                        "scenarios": t, "plausible": p,
                        "correct": c, "ground_truth_matches": g,
                    }
                    for mutator, (t, p, c, g) in serial.by_mutator().items()
                },
                "eval_sims": sum(r.eval_sims for r in serial.results),
                "serial_seconds": serial_seconds,
                "process_seconds": process_seconds,
            },
            "observable": all(
                s.faulty_fitness < 1.0 for s in report.admitted
            ),
        }

    results = once(sweep)
    results = {"seed": SEED, "cpu_count": os.cpu_count(), **results}
    (_REPO_ROOT / "BENCH_minted_grading.json").write_text(
        json.dumps(results, indent=2) + "\n"
    )

    assert results["observable"], "an admitted defect scored fitness >= 1.0"
    assert results["mint"]["admitted"] >= MIN_ADMITTED, results["mint"]
    assert results["mint"]["families"] >= MIN_FAMILIES, results["mint"]
    assert results["grading"]["plausible"] >= 1, results["grading"]
