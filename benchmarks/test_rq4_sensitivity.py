"""Benchmark: RQ4 — repair under degraded oracle information.

Paper protocol: reduce expected-behaviour annotations 100% → 50% → 25%;
plausible-repair counts stay nearly flat (21 → 20 → 20) while correctness
drops (16 → 12 → 10).  We sweep two fast scenarios and assert the rate
shape: still repairable at 50% and 25%.
"""

from repro.experiments.common import SMOKE
from repro.experiments.rq4 import render_rq4, run_rq4

SAMPLE = ("ff_cond", "lshift_sens")


def test_rq4_degraded_oracles(once):
    result = once(
        run_rq4,
        SMOKE,
        (0, 1),
        SAMPLE,
        (1.0, 0.5, 0.25),
    )
    full = result.by_fraction(1.0)
    half = result.by_fraction(0.5)
    quarter = result.by_fraction(0.25)
    assert full.plausible == len(SAMPLE)
    # Plausible-repair rate is robust to oracle degradation (paper: 21→20→20).
    assert half.plausible >= len(SAMPLE) - 1
    assert quarter.plausible >= len(SAMPLE) - 1
    # Correctness can only be <= plausibility.
    for cell in result.cells:
        assert cell.correct <= cell.plausible
    print()
    print(render_rq4(result))
