"""Benchmark: Table 3 — per-defect repair runs.

The committed full-suite numbers live in EXPERIMENTS.md (regenerate with
``python -m repro.experiments table3``).  This benchmark exercises one
representative defect per repaired defect class so the whole file stays
minutes-scale: a sensitivity-list defect, a conditional defect, a
blocking-assignment defect, a numeric defect, and an omitted-assignment
defect — the classes the paper reports CirFix as "particularly successful"
on (§5.2).
"""

import pytest

from repro.benchsuite import load_scenario
from repro.experiments.common import SMOKE, run_scenario

#: scenario id → expected laptop-budget outcome (vetted seeds 0/1).
REPRESENTATIVES = [
    "counter_sens",      # incorrect sensitivity list (template class)
    "ff_cond",           # incorrect conditional
    "ff_branches",       # swapped branches
    "lshift_blocking",   # incorrect blocking assignment
    "counter_incr",      # numeric error in an increment
    "fsm_next_sens",     # omitted assignment + sensitivity list (cat 2)
    "sha3_loop",         # off-by-one loop bound (cat 1, large project)
]


@pytest.mark.parametrize("scenario_id", REPRESENTATIVES)
def test_table3_row(once, scenario_id):
    scenario = load_scenario(scenario_id)
    result = once(run_scenario, scenario, SMOKE, seeds=(0, 1))
    assert result.plausible, f"{scenario_id} should repair under SMOKE budget"
    assert result.fitness == 1.0
    # Minimized repairs are small, as in the paper (most are 1-2 edits).
    assert result.edits <= 3


def test_unsupported_defect_class_not_repaired(once):
    """mux_width (1-bit instead of 4-bit output) needs a declaration-width
    edit no CirFix operator or template can express — the paper reports it
    unrepaired, and so must we."""
    scenario = load_scenario("mux_width")
    config = SMOKE.scaled(max_fitness_evals=250, max_wall_seconds=30.0)
    result = once(run_scenario, scenario, config, seeds=(0,))
    assert not result.plausible
    assert result.fitness < 1.0
