"""Benchmark: fix-localization ablation (§3.6, 35% -> 10% compile failures)."""

from repro.experiments.fixloc_ablation import run_ablation


def test_fixloc_ablation(once):
    result = once(run_ablation, mutants_per_strategy=80, seed=0)
    # The paper's direction: unrestricted mutation produces far more
    # non-compiling mutants than fix-localized mutation.
    assert result.fixloc.failure_rate < result.naive.failure_rate
    assert result.fixloc.failure_rate <= 0.20
    assert result.naive.failure_rate >= 0.15
