"""Benchmark: supervised evaluation overhead (repro.core.backend).

The supervised pool replaces PR 1's blocking ``pool.map`` with per-task
dispatch under deadlines, crash detection, and retry/quarantine.  That
supervision must be close to free on healthy workloads: this benchmark
scores the same fixed 24-candidate counter_reset batch through the
retained raw-``multiprocessing.Pool`` baseline (``_pool_initializer`` /
``_pool_evaluate``) and through the supervised ``ProcessPoolBackend`` at
workers ∈ {2, 4}, and writes the measured overhead to
``BENCH_supervised_eval.json`` at the repo root (goal: ≤5% mean
overhead; the hard assertion is looser to absorb CI timing noise).

It also measures the recovery path — a batch with a planted hanging
mutant under a short deadline — and asserts a supervised SMOKE repair
run still matches the serial outcome bit-for-bit.
"""

import json
import os
import statistics
import time
from pathlib import Path

from repro.benchsuite import load_scenario
from repro.core.backend import (
    ProcessPoolBackend,
    SerialBackend,
    _mp_context,
    _pool_evaluate,
    _pool_initializer,
)
from repro.core.repair import CirFixEngine
from repro.experiments.common import SMOKE
from repro.fuzz.faults import plant_eval_chaos

_REPO_ROOT = Path(__file__).resolve().parents[1]
_RESULTS: dict[str, object] = {"scenario": "counter_reset", "cpu_count": os.cpu_count()}
#: Timed repetitions per backend (median reported; absorbs scheduler noise).
_ROUNDS = 3


def _problem_and_config():
    scenario = load_scenario("counter_reset")
    return scenario.problem(), scenario.suggested_config(SMOKE)


def _candidate_batch(problem, size=24):
    """A fixed batch of distinct design texts (comment-tagged so no two
    are string-equal, matching how the engine's text cache sees mutants)."""
    from repro.hdl import generate

    base = generate(problem.design)
    return [f"{base}\n// candidate {i}\n" for i in range(size)]


def _time_raw_pool(problem, config, texts, workers):
    """Median batch seconds through the unsupervised Pool.map baseline."""
    ctx = _mp_context()
    with ctx.Pool(
        processes=workers,
        initializer=_pool_initializer,
        initargs=(problem.testbench_text, problem.oracle, config),
    ) as pool:
        pool.map(_pool_evaluate, texts[:2], chunksize=1)  # warm the workers
        samples = []
        for _ in range(_ROUNDS):
            start = time.monotonic()
            results = pool.map(_pool_evaluate, texts, chunksize=1)
            samples.append(time.monotonic() - start)
    return statistics.median(samples), results


def _time_supervised(problem, config, texts, workers):
    """Median batch seconds through the supervised backend."""
    with ProcessPoolBackend.for_problem(problem, config, workers=workers) as pool:
        pool.evaluate_batch(texts[:2])  # warm the workers
        samples = []
        for _ in range(_ROUNDS):
            start = time.monotonic()
            results = pool.evaluate_batch(texts)
            samples.append(time.monotonic() - start)
        assert pool.take_incidents() == []  # healthy run: supervision idle
    return statistics.median(samples), results


def test_supervision_overhead(once):
    problem, config = _problem_and_config()
    texts = _candidate_batch(problem)

    def sweep():
        rows = {}
        for workers in (2, 4):
            raw_s, raw_results = _time_raw_pool(problem, config, texts, workers)
            sup_s, sup_results = _time_supervised(problem, config, texts, workers)
            assert [r.fitness for r in sup_results] == [
                r.fitness for r in raw_results
            ]
            rows[f"workers={workers}"] = {
                "raw_pool_seconds": raw_s,
                "supervised_seconds": sup_s,
                "overhead_pct": (sup_s / raw_s - 1.0) * 100.0 if raw_s > 0 else 0.0,
            }
        return rows

    rows = once(sweep)
    _RESULTS["overhead"] = {
        "candidates": len(texts),
        "rounds_per_backend": _ROUNDS,
        "goal_overhead_pct": 5.0,
        **rows,
    }
    # The goal is ≤5%; assert with generous headroom so a noisy shared
    # host doesn't flake the suite (the JSON records the honest number).
    for row in rows.values():
        assert row["overhead_pct"] <= 25.0, rows


def test_recovery_path_cost(once):
    """One hanging mutant under a 0.5 s deadline: the batch completes in
    roughly deadline + normal batch time, not forever."""
    problem, config = _problem_and_config()
    config = config.scaled(eval_deadline_seconds=0.5, eval_max_retries=0)
    texts = _candidate_batch(problem, size=8)

    def poisoned():
        with plant_eval_chaos("hang@2"):
            with ProcessPoolBackend.for_problem(problem, config, workers=2) as pool:
                start = time.monotonic()
                results = pool.evaluate_batch(texts)
                return time.monotonic() - start, results

    seconds, results = once(poisoned)
    quarantined = [r for r in results if r.failure is not None]
    assert len(quarantined) == 1
    assert quarantined[0].failure.kind == "timeout"
    assert sum(1 for r in results if r.compiled) == len(texts) - 1
    _RESULTS["recovery"] = {
        "candidates": len(texts),
        "deadline_seconds": 0.5,
        "batch_seconds_with_hang": seconds,
        "quarantined": len(quarantined),
    }


def test_supervised_repair_matches_serial(once):
    problem, config = _problem_and_config()

    def compare():
        with SerialBackend.for_problem(problem, config) as serial:
            serial_outcome = CirFixEngine(
                problem, config, seed=0, backend=serial
            ).run()
        with ProcessPoolBackend.for_problem(problem, config, workers=2) as pool:
            pool_outcome = CirFixEngine(problem, config, seed=0, backend=pool).run()
        return serial_outcome, pool_outcome

    serial_outcome, pool_outcome = once(compare)
    assert serial_outcome.plausible == pool_outcome.plausible
    assert serial_outcome.fitness == pool_outcome.fitness
    assert serial_outcome.best_fitness_history == pool_outcome.best_fitness_history
    assert serial_outcome.patch.describe() == pool_outcome.patch.describe()
    assert pool_outcome.quarantined == 0
    _RESULTS["parity"] = {
        "plausible": serial_outcome.plausible,
        "fitness": serial_outcome.fitness,
    }
    (_REPO_ROOT / "BENCH_supervised_eval.json").write_text(
        json.dumps(_RESULTS, indent=2) + "\n"
    )
