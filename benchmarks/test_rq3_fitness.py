"""Benchmark: RQ3 — fitness function quality (§5.3)."""

from repro.experiments.rq3 import compute_rq3


def test_rq3(once):
    result = once(compute_rq3)
    # Paper trajectory 0 -> 0.58 -> 0.77 -> 1.0: each edit must raise the
    # fitness, ending at a plausible repair.
    assert result.is_monotone
    assert result.fitness_trajectory[-1] == 1.0
    assert 0.5 < result.fitness_trajectory[0] < 0.65
    assert 0.70 < result.fitness_trajectory[1] < 0.85
    # Paper: the rs out_stage sensitivity defect scores 0.999 — caught by
    # the instrumented comparison, missed by the original testbench.
    assert 0.95 < result.rs_sens_fitness < 1.0
