"""Benchmark: regenerate Figure 3 (multi-edit sdram_controller repair)."""

from repro.experiments.figure3 import compute_figure3


def test_figure3(once):
    data = once(compute_figure3)
    # The paper's repair shape: an insert plus a replace, fitness 1.0.
    assert data.edit_kinds == ["insert_after", "replace"]
    assert data.patched_fitness == 1.0
    assert data.faulty_fitness < 1.0
    assert "busy <= 1'b1;" in data.repaired_block
    assert "rd_data <= 8'h00;" in data.repaired_block
