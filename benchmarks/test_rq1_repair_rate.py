"""Benchmark: RQ1 — CirFix vs brute-force under the same simulation budget."""

from repro.baselines.brute_force import BruteForceRepair
from repro.benchsuite import load_scenario
from repro.core.repair import CirFixEngine
from repro.experiments.common import SMOKE


def test_rq1_head_to_head(once):
    """On the incorrect-conditional flip-flop defect CirFix repairs within
    the budget; uniform brute force (paper: "did not scale") does not."""
    scenario = load_scenario("counter_sens")
    config = scenario.suggested_config(SMOKE)

    def head_to_head():
        cirfix = CirFixEngine(scenario.problem(), config, seed=0).run()
        brute = BruteForceRepair(scenario.problem(), config, seed=0).run()
        return cirfix, brute

    cirfix, brute = once(head_to_head)
    assert cirfix.plausible
    assert not brute.plausible
    assert brute.fitness < 1.0
