"""Benchmark: the lint candidate gate as a simulation pre-filter.

Runs four scenarios under the SMOKE preset, seed 0, with
``RepairConfig.lint_gate`` off and on, and writes the raw numbers to
``BENCH_lint_prefilter.json`` at the repo root:

- per scenario: ``eval_sims`` (unique simulated candidates), pruned
  count, plausible flag, final fitness, and wall time for both modes;
- a serial-vs-process check of one gated scenario (the gate prunes
  engine-side before chunking, so the backend must not change the
  gated outcome).

Assertions: the gate never flips a scenario's plausible outcome, and at
least one scenario simulates ≥10% fewer candidates to the same outcome.
The saving is structural — pruned candidates are charged zero
``eval_sims`` — so unlike the throughput benchmarks this holds on any
host.
"""

import json
import os
import time
from pathlib import Path

from repro.benchsuite import load_scenario
from repro.core.backend import make_backend
from repro.core.repair import CirFixEngine
from repro.experiments.common import SMOKE

_REPO_ROOT = Path(__file__).resolve().parents[1]

SEED = 0
SCENARIOS = ("dec_numeric", "counter_reset", "lshift_cond", "mux_hex")
#: At least one scenario must clear this eval_sims saving (ISSUE 4).
MIN_SAVING_PCT = 10.0


def _run(scenario_id, gate, workers=1, backend="serial"):
    scenario = load_scenario(scenario_id)
    config = scenario.suggested_config(
        SMOKE.scaled(lint_gate=gate, workers=workers, backend=backend)
    )
    problem = scenario.problem()
    eval_backend = make_backend(problem, config)
    try:
        start = time.monotonic()
        outcome = CirFixEngine(
            problem, config, SEED, backend=eval_backend
        ).run()
        return outcome, time.monotonic() - start
    finally:
        eval_backend.close()


def test_lint_prefilter(once):
    def sweep():
        rows = {}
        for scenario_id in SCENARIOS:
            off, off_s = _run(scenario_id, gate=False)
            on, on_s = _run(scenario_id, gate=True)
            saving = (
                100.0 * (off.eval_sims - on.eval_sims) / off.eval_sims
                if off.eval_sims
                else 0.0
            )
            rows[scenario_id] = {
                "gate_off": {
                    "eval_sims": off.eval_sims,
                    "plausible": off.plausible,
                    "fitness": off.fitness,
                    "seconds": off_s,
                },
                "gate_on": {
                    "eval_sims": on.eval_sims,
                    "pruned": on.pruned,
                    "plausible": on.plausible,
                    "fitness": on.fitness,
                    "seconds": on_s,
                },
                "eval_sims_saving_pct": saving,
            }
        # Backend independence of one gated run: serial == process.
        serial, _ = _run("mux_hex", gate=True)
        pool, _ = _run("mux_hex", gate=True, workers=2, backend="process")
        rows["cross_backend_mux_hex"] = {
            "serial": {"eval_sims": serial.eval_sims, "pruned": serial.pruned,
                       "fitness": serial.fitness},
            "process": {"eval_sims": pool.eval_sims, "pruned": pool.pruned,
                        "fitness": pool.fitness},
        }
        assert serial.eval_sims == pool.eval_sims
        assert serial.pruned == pool.pruned
        assert serial.fitness == pool.fitness
        assert serial.plausible == pool.plausible
        return rows

    rows = once(sweep)

    for scenario_id in SCENARIOS:
        row = rows[scenario_id]
        # The gate must never flip an outcome at this budget.
        assert row["gate_off"]["plausible"] == row["gate_on"]["plausible"], scenario_id

    best = max(
        (s for s in SCENARIOS
         if rows[s]["gate_off"]["plausible"] == rows[s]["gate_on"]["plausible"]),
        key=lambda s: rows[s]["eval_sims_saving_pct"],
    )
    results = {
        "seed": SEED,
        "preset": "SMOKE",
        "cpu_count": os.cpu_count(),
        "scenarios": rows,
        "best_saving": {
            "scenario": best,
            "eval_sims_saving_pct": rows[best]["eval_sims_saving_pct"],
        },
    }
    (_REPO_ROOT / "BENCH_lint_prefilter.json").write_text(
        json.dumps(results, indent=2) + "\n"
    )
    assert rows[best]["eval_sims_saving_pct"] >= MIN_SAVING_PCT, (
        f"best gate saving {rows[best]['eval_sims_saving_pct']:.1f}% "
        f"(on {best}) below the {MIN_SAVING_PCT:.0f}% bar"
    )
