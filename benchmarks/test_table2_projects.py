"""Benchmark: regenerate Table 2 (benchmark project inventory)."""

from repro.experiments.table2 import compute_table2, render_table2


def test_table2(once):
    rows = once(compute_table2)
    assert len(rows) == 11
    assert {r.project for r in rows} >= {"counter", "i2c", "sdram_controller"}
    # Small-vs-large structure preserved: course projects < OpenCores-style.
    small = [r.design_loc for r in rows if r.project in ("flip_flop", "mux_4_1")]
    large = [r.design_loc for r in rows if r.project in ("i2c", "sdram_controller")]
    assert max(small) < min(large)
    print()
    print(render_table2())
