"""Benchmark: extended-template ablation (§5.2 future work).

The rs_regsize defect is the paper's canonical "no template can express
this" failure; with the widen_register extension enabled the same engine
repairs it.
"""

from repro.benchsuite import load_scenario
from repro.core.repair import CirFixEngine
from repro.experiments.common import SMOKE


def test_widen_register_repairs_rs_regsize(once):
    scenario = load_scenario("rs_regsize")
    # A template-heavy mix (rt=0.6) keeps this bench minutes-scale; the
    # default mix also finds the repair, just with more simulations.
    config = scenario.suggested_config(SMOKE).scaled(
        extended_templates=True,
        rt_threshold=0.6,
        max_fitness_evals=500,
        max_wall_seconds=150.0,
    )

    def run_with_extensions():
        outcome = None
        for seed in (0, 1, 2):
            outcome = CirFixEngine(scenario.problem(), config, seed).run()
            if outcome.plausible:
                return outcome
        return outcome

    outcome = once(run_with_extensions)
    assert outcome.plausible, "widen_register should make rs_regsize repairable"
    assert "widen_register" in outcome.patch.describe()


def test_core_templates_cannot(once):
    """With the paper's core template set the defect stays unrepaired."""
    scenario = load_scenario("rs_regsize")
    config = scenario.suggested_config(SMOKE).scaled(
        max_fitness_evals=200, max_wall_seconds=120.0
    )
    outcome = once(lambda: CirFixEngine(scenario.problem(), config, 0).run())
    assert not outcome.plausible
