"""Benchmark: φ weight ablation (§4.2)."""

from repro.experiments.phi_ablation import run_phi_ablation


def test_phi_ablation(once):
    result = once(run_phi_ablation)
    by_phi = {cell.phi: cell for cell in result.cells}
    # φ = 1 gives no gradient from "x output" to "defined but wrong output"
    # — the paper's "did not penalize such incorrect comparisons enough".
    assert abs(by_phi[1.0].gradient) < 1e-9
    # φ = 2 creates the gradient the GP climbs.
    assert by_phi[2.0].gradient > 0.05
    # φ = 3 depresses absolute fitness (paper: "too significant a drop").
    assert by_phi[3.0].faulty_fitness < by_phi[2.0].faulty_fitness < by_phi[1.0].faulty_fitness
