"""Benchmark: the compiled-simulation fast path (repro.sim.compile).

Measures single-worker candidate-evaluation throughput on the
counter_reset scenario across the engine/cache matrix and writes the raw
numbers to ``BENCH_compiled_sim.json`` at the repo root:

1. one fixed 24-candidate batch through ``SerialBackend`` under
   ``sim_engine`` ∈ {interp, compiled} with the evaluation cache
   disabled — the honest per-candidate speedup (every candidate still
   pays parse + fitness, which the compiled engine cannot remove);
2. the same batch replayed against a warm :class:`EvalCache` — the
   cross-trial workload the cache exists for (multi-seed experiments
   share one backend and re-score the seed design plus common early
   mutants); the headline ≥5× target is asserted here;
3. compile-time amortization: cold-compile vs warm-template simulator
   construction+run, against the interpreter baseline;
4. a SMOKE repair on the compiled engine across two seeds sharing one
   backend, recording the cache hit rate the second trial enjoys and
   asserting the seed-0 outcome is bit-identical to the interpreter's.
"""

import dataclasses
import json
import os
import time
from pathlib import Path

from repro.benchsuite import load_scenario
from repro.core import backend as backend_mod
from repro.core.backend import SerialBackend
from repro.core.repair import CirFixEngine
from repro.experiments.common import SMOKE
from repro.hdl import generate, parse
from repro.sim import CompiledSimulator, Simulator

_REPO_ROOT = Path(__file__).resolve().parents[1]
_RESULTS: dict[str, object] = {"scenario": "counter_reset", "cpu_count": os.cpu_count()}

#: The headline target: warm-cache candidate evaluation vs the
#: interpreter with no cache.
_TARGET_SPEEDUP = 5.0


def _scenario_problem_config(engine, cache_size=0):
    scenario = load_scenario("counter_reset")
    config = dataclasses.replace(
        scenario.suggested_config(SMOKE),
        sim_engine=engine,
        eval_cache_size=cache_size,
    )
    return scenario, scenario.problem(), config


def _candidate_batch(problem, size=24):
    """A fixed batch of distinct design texts (comment-tagged so no two
    are string-equal, matching how the engine's text cache sees mutants)."""
    base = generate(problem.design)
    return [f"{base}\n// candidate {i}\n" for i in range(size)]


def _reset_compile_state():
    """Forget shared testbench templates (to measure a cold start)."""
    backend_mod._TB_COMPILE_STATE.clear()


def test_candidate_eval_throughput(once):
    _, problem, interp_config = _scenario_problem_config("interp")
    _, _, compiled_config = _scenario_problem_config("compiled")
    _, _, cached_config = _scenario_problem_config("compiled", cache_size=256)
    texts = _candidate_batch(problem)

    def sweep():
        timings: dict[str, float] = {}
        serial = SerialBackend.for_problem(problem, interp_config)
        start = time.monotonic()
        baseline = serial.evaluate_batch(texts)
        timings["interp"] = time.monotonic() - start

        _reset_compile_state()
        compiled = SerialBackend.for_problem(problem, compiled_config)
        start = time.monotonic()
        cold = compiled.evaluate_batch(texts)
        timings["compiled_cold"] = time.monotonic() - start
        start = time.monotonic()
        warm = compiled.evaluate_batch(texts)
        timings["compiled_warm"] = time.monotonic() - start

        cached = SerialBackend.for_problem(problem, cached_config)
        cached.evaluate_batch(texts)  # populate the cache
        start = time.monotonic()
        replay = cached.evaluate_batch(texts)
        timings["compiled_cache_hit"] = time.monotonic() - start
        cache_info = cached.cache.info()
        return timings, baseline, cold, warm, replay, cache_info

    timings, baseline, cold, warm, replay, cache_info = once(sweep)

    # Parity: every path scores the batch identically.
    fitnesses = [r.fitness for r in baseline]
    for results in (cold, warm, replay):
        assert [r.fitness for r in results] == fitnesses
    assert all(r.compiled for r in baseline)
    assert cache_info["hits"] == len(texts)

    throughput = {
        key: len(texts) / seconds for key, seconds in timings.items() if seconds > 0
    }
    speedup_nocache = throughput["compiled_warm"] / throughput["interp"]
    speedup_cached = throughput["compiled_cache_hit"] / throughput["interp"]
    _RESULTS["batch"] = {
        "candidates": len(texts),
        "seconds": timings,
        "throughput_per_s": throughput,
        "speedup_compiled_no_cache": speedup_nocache,
        "speedup_warm_cache": speedup_cached,
        "cache": cache_info,
    }
    # The compiled engine must win outright even with the cache off
    # (every candidate still pays its unavoidable parse + fitness)...
    assert speedup_nocache > 1.2, (
        f"compiled engine slower than expected: {speedup_nocache:.2f}x"
    )
    # ...and the cross-trial cached workload carries the headline target.
    assert speedup_cached >= _TARGET_SPEEDUP, (
        f"warm-cache speedup {speedup_cached:.2f}x < {_TARGET_SPEEDUP}x"
    )


def test_compile_time_amortization(once):
    scenario, _, _ = _scenario_problem_config("compiled")
    combined = parse(
        scenario.faulty_design_text + "\n" + scenario.project.testbench_text
    )
    runs = 30

    def sweep():
        start = time.monotonic()
        Simulator(combined).run(1_000_000)
        interp_first = time.monotonic() - start
        start = time.monotonic()
        for _ in range(runs):
            Simulator(combined).run(1_000_000)
        interp_steady = (time.monotonic() - start) / runs

        shared: dict = {}
        ids = frozenset(id(m) for m in combined.modules)
        start = time.monotonic()
        CompiledSimulator(combined, shared_cache=shared, shared_module_ids=ids).run(
            1_000_000
        )
        cold = time.monotonic() - start
        start = time.monotonic()
        for _ in range(runs):
            CompiledSimulator(
                combined, shared_cache=shared, shared_module_ids=ids
            ).run(1_000_000)
        steady = (time.monotonic() - start) / runs
        return interp_first, interp_steady, cold, steady

    interp_first, interp_steady, cold, steady = once(sweep)
    _RESULTS["amortization"] = {
        "runs": runs,
        "interp_first_seconds": interp_first,
        "interp_steady_seconds": interp_steady,
        "compiled_cold_seconds": cold,
        "compiled_steady_seconds": steady,
        "compile_overhead_seconds": max(0.0, cold - steady),
        "raw_sim_speedup": interp_steady / steady if steady > 0 else float("inf"),
    }
    assert steady < interp_steady, "compiled steady-state should beat interp"


def test_smoke_repair_cache_hit_rate(once):
    """Two seeds sharing one compiled backend; outcome parity vs interp."""
    _, problem, interp_config = _scenario_problem_config("interp")
    _, _, compiled_config = _scenario_problem_config("compiled", cache_size=512)

    def run(config, backend, seed):
        start = time.monotonic()
        outcome = CirFixEngine(problem, config, seed, backend=backend).run()
        return outcome, time.monotonic() - start

    def sweep():
        serial = SerialBackend.for_problem(problem, interp_config)
        interp_outcome, interp_s = run(interp_config, serial, 0)

        _reset_compile_state()
        shared = SerialBackend.for_problem(problem, compiled_config)
        compiled_outcome, compiled_s = run(compiled_config, shared, 0)
        after_first = dict(shared.cache.info())
        _, second_s = run(compiled_config, shared, 1)
        after_second = shared.cache.info()
        return (
            interp_outcome, interp_s,
            compiled_outcome, compiled_s, second_s,
            after_first, after_second,
        )

    (
        interp_outcome, interp_s,
        compiled_outcome, compiled_s, second_s,
        after_first, after_second,
    ) = once(sweep)

    # Engine parity on the full outcome surface.
    assert compiled_outcome.plausible == interp_outcome.plausible
    assert compiled_outcome.fitness == interp_outcome.fitness
    assert compiled_outcome.eval_sims == interp_outcome.eval_sims
    assert (
        compiled_outcome.best_fitness_history == interp_outcome.best_fitness_history
    )
    assert repr(compiled_outcome.patch) == repr(interp_outcome.patch)
    assert interp_outcome.plausible, "counter_reset should repair under SMOKE"

    second_trial_hits = after_second["hits"] - after_first["hits"]
    second_trial_misses = after_second["misses"] - after_first["misses"]
    lookups = second_trial_hits + second_trial_misses
    _RESULTS["smoke_repair"] = {
        "interp_seconds": interp_s,
        "compiled_seconds": compiled_s,
        "compiled_speedup": interp_s / compiled_s if compiled_s > 0 else float("inf"),
        "second_seed_seconds": second_s,
        "cache_after_seed0": after_first,
        "cache_after_seed1": dict(after_second),
        "second_trial_hit_rate": second_trial_hits / lookups if lookups else 0.0,
    }
    # The first trial cannot hit (the engine memoises within a trial);
    # the second trial re-scores the seed design and early mutants.
    assert after_first["hits"] == 0
    assert second_trial_hits > 0, "second seed saw no cross-trial repeats"

    (_REPO_ROOT / "BENCH_compiled_sim.json").write_text(
        json.dumps(_RESULTS, indent=2) + "\n"
    )
