"""Benchmark: crash recovery of the journaled repair service.

A real chaos run, measured end to end and written to
``BENCH_crash_recovery.json`` at the repo root:

1. start a journaled daemon as a subprocess (``repro serve
   --journal-dir``), submit a multi-generation repair, and ``kill -9``
   the daemon after the engine has checkpointed mid-search;
2. restart with ``--recover`` and measure **recovery latency** — from
   the restart exec to the recovered job's terminal response (a client
   re-attaches by resubmitting, which dedup-joins the recovered job);
3. report the **warm-resume hit rate**: the deterministic replay runs
   out of the persistent eval cache, so pre-crash evaluations cost disk
   hits instead of simulations;
4. assert the recovered outcome is bit-identical (minus wall clock) to
   a direct uninterrupted run of the same request.

The scenario is ``fsm_case`` under a budget that runs its full 8
generations (~9 s cold, no early plausible exit), so the kill reliably
lands mid-search and the replayed prefix is a real fraction of the work.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.api import run_request
from repro.core.config import RepairConfig
from repro.core.serialize import outcome_to_json
from repro.service import RepairRequest, ServiceClient
from repro.service.journal import JobJournal

_REPO_ROOT = Path(__file__).resolve().parents[1]
_RESULTS: dict[str, object] = {"scenario": "fsm_case", "cpu_count": os.cpu_count()}

#: Full-budget search with no early exit: 8 generations of checkpoints.
_CONFIG = {
    "population_size": 60,
    "max_generations": 8,
    "max_fitness_evals": 2000,
    "max_wall_seconds": 120.0,
    "minimize_budget": 32,
}


def _request() -> RepairRequest:
    return RepairRequest(scenario="fsm_case", config=dict(_CONFIG), seeds=(0,))


def _spawn_daemon(socket_path: str, cache_dir: str, journal_dir: str,
                  recover: bool) -> subprocess.Popen:
    """Launch ``repro serve`` as a real subprocess (kill -9 target)."""
    argv = [
        sys.executable, "-m", "repro", "serve",
        "--socket", socket_path,
        "--cache-dir", cache_dir,
        "--journal-dir", journal_dir,
        "--max-jobs", "1",
    ]
    if recover:
        argv.append("--recover")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return subprocess.Popen(
        argv, env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def _wait_ready(socket_path: str, timeout: float = 30.0) -> ServiceClient:
    client = ServiceClient(socket_path, timeout=600)
    deadline = time.monotonic() + timeout
    while True:
        try:
            client.ping()
            return client
        except OSError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.02)


def test_crash_recovery(once):
    tmp = tempfile.mkdtemp(prefix="repro-bench-crash-")
    socket_path = os.path.join(tmp, "repro.sock")
    cache_dir = os.path.join(tmp, "cache")
    journal_dir = os.path.join(tmp, "journal")
    request = _request()

    def chaos():
        numbers: dict[str, object] = {}

        # Uninterrupted baseline, directly in-process (no cache: the
        # determinism contract makes cache tiers outcome-invariant).
        start = time.monotonic()
        direct = run_request(request, base_config=RepairConfig())
        numbers["direct_seconds"] = time.monotonic() - start

        # Phase 1: journaled daemon, submit, kill -9 mid-search.
        victim = _spawn_daemon(socket_path, cache_dir, journal_dir, recover=False)
        try:
            client = _wait_ready(socket_path)
            submitted = time.monotonic()
            status, _ = client.submit(request, wait=False)
            checkpoints = Path(journal_dir) / "checkpoints"
            deadline = time.monotonic() + 60
            # Let the engine bank at least two generation checkpoints so
            # the replayed prefix is a real fraction of the search.
            while True:
                snapshots = list(checkpoints.glob("*.json"))
                if snapshots:
                    try:
                        state = json.loads(snapshots[0].read_bytes())["state"]
                        if state.get("cursor", 0) >= 2:
                            break
                    except (ValueError, KeyError):
                        pass  # racing an atomic replace; retry
                assert time.monotonic() < deadline, "engine never checkpointed"
                time.sleep(0.01)
            numbers["pre_crash_seconds"] = time.monotonic() - submitted
            numbers["checkpoint_cursor_at_kill"] = state["cursor"]
            numbers["pre_crash_eval_sims"] = state["eval_sims"]
            os.kill(victim.pid, signal.SIGKILL)
            victim.wait(timeout=30)
        finally:
            if victim.poll() is None:
                victim.kill()

        # The kill must have landed mid-job, or the chaos run is void.
        journal = JobJournal(journal_dir)
        unfinished = journal.unfinished()
        assert len(unfinished) == 1, "job finished before the kill landed"
        assert unfinished[0].job_id == status.job_id

        # Phase 2: restart with --recover; re-attach by resubmitting.
        restarted_at = time.monotonic()
        survivor = _spawn_daemon(socket_path, cache_dir, journal_dir, recover=True)
        try:
            client = _wait_ready(socket_path)
            joined, response = client.submit(request, retries=2)
            numbers["recovery_latency_seconds"] = time.monotonic() - restarted_at
        finally:
            try:
                ServiceClient(socket_path, timeout=30).shutdown()
            except OSError:
                pass
            try:
                survivor.wait(timeout=60)
            except subprocess.TimeoutExpired:
                survivor.kill()

        assert joined.job_id == status.job_id, "client did not re-attach"
        assert response.status == "done"
        numbers["warm_resume_hit_rate"] = response.cache["hit_rate"]
        numbers["warm_resume_store_hits"] = response.cache["store_hits"]
        numbers["warm_resume_store_misses"] = response.cache["store_misses"]

        # Bit-identical to the uninterrupted run (minus wall clock).
        want = json.loads(outcome_to_json(direct, "fsm_case"))
        got = json.loads(response.outcome_json)
        for report in (want, got):
            report.pop("elapsed_seconds")
        assert got == want, "recovered outcome diverged from direct run"
        numbers["outcome_bit_identical"] = True

        # Journal is clean again: terminal record, checkpoint discarded.
        assert journal.unfinished() == []
        assert journal.load_checkpoint(status.job_id) is None
        return numbers

    numbers = once(chaos)
    numbers["recovery_speedup_vs_cold"] = (
        numbers["direct_seconds"] / numbers["recovery_latency_seconds"]
        if numbers["recovery_latency_seconds"] > 0
        else float("inf")
    )
    _RESULTS["crash_recovery"] = numbers
    (_REPO_ROOT / "BENCH_crash_recovery.json").write_text(
        json.dumps(_RESULTS, indent=2) + "\n"
    )
    # The replayed prefix must be warm: most pre-crash work is cache hits.
    assert numbers["warm_resume_hit_rate"] >= 0.3, numbers
