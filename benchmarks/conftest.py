"""Shared benchmark fixtures.

Each benchmark regenerates one table/figure from the paper.  GP searches
are stochastic; every benchmark pins its seeds and uses the SMOKE/QUICK
presets so a full ``pytest benchmarks/ --benchmark-only`` run finishes in
minutes while still exercising the real pipeline end to end.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run a heavyweight experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner
