"""Benchmark: regenerate Figure 2 (simulation vs expected trace for the
faulty counter) and check the paper's signature numbers."""

from repro.experiments.figure2 import compute_figure2, render_figure2


def test_figure2(once):
    data = once(compute_figure2)
    # The paper's walkthrough: overflow_out is the mismatched wire, and the
    # faulty design's fitness lands at ~0.58.
    assert data.mismatched_vars == {"overflow_out"}
    assert abs(data.faulty_fitness - 0.58) < 0.05
    # The counter testbench simulates 20+ clock cycles of x output before
    # the first genuine overflow (Figure 2's "x" column).
    x_rows = sum(
        1
        for t, values in data.simulated.rows
        if values["overflow_out"].has_x_or_z
    )
    assert x_rows >= 15
    print()
    print(render_figure2(data))
