"""Benchmark: the engine race — GP vs. template synthesis, head to head.

Sweeps both registered engines over the fixed-seed minted scenario set
(the ``repro.experiments race`` study) on the serial *and* the process
evaluation backend, and writes the raw numbers to
``BENCH_engine_race.json`` at the repo root:

- ``stable``: per-family win rates, per-engine plausible counts and
  ``eval_sims`` — the backend-independent verdict block, asserted
  byte-identical across serial and process backends;
- ``wall_clock``: per-engine first-to-plausible wall seconds (host- and
  backend-dependent, recorded outside the stable block).

Assertions pin the PR's acceptance bar: on the defect families the
synth templates invert directly (``stuck_constant``, ``wrong_operator``,
``negate_condition``), the synth engine reaches a plausible repair and
spends fewer ``eval_sims`` than the GP engine at the same seed.
"""

import json
import os
import time
from pathlib import Path

from repro.experiments.race import run_engine_race
from repro.mint import GRADE_CONFIG

_REPO_ROOT = Path(__file__).resolve().parents[1]

SEED = 0
MINT_ATTEMPTS = 20
#: Families the synth catalog inverts one-for-one; synth must win these.
SYNTH_FAMILIES = ("stuck_constant", "wrong_operator", "negate_condition")


def _stable(study) -> dict:
    """The backend-independent verdict block (no wall-clock anywhere)."""
    families = {}
    for family, row in study.by_family().items():
        families[family] = {
            "scenarios": row["scenarios"],
            "wins": dict(row["wins"]),
            "engines": {
                engine: dict(stats) for engine, stats in row["engines"].items()
            },
        }
    return {
        "engines": list(study.engines),
        "winners": [
            study.winner_of(index) for index in range(len(study.minted))
        ],
        "by_family": families,
        "table": study.stable_text(),
    }


def _wall_clock(study) -> dict:
    """Per-engine first-to-plausible wall seconds (measured, unstable)."""
    out = {}
    for engine in study.engines:
        legs = [
            result.repair_seconds
            for result in study.results[engine]
            if result.repair_seconds is not None
        ]
        out[engine] = {
            "first_to_plausible": len(legs),
            "total_seconds": sum(legs),
            "mean_seconds": sum(legs) / len(legs) if legs else 0.0,
        }
    return out


def test_engine_race(once):
    def sweep():
        started = time.monotonic()
        serial = run_engine_race(seed=SEED, count=MINT_ATTEMPTS)
        serial_seconds = time.monotonic() - started

        started = time.monotonic()
        process = run_engine_race(
            seed=SEED,
            count=MINT_ATTEMPTS,
            config=GRADE_CONFIG.scaled(workers=2, backend="process"),
        )
        process_seconds = time.monotonic() - started

        stable = _stable(serial)
        assert stable == _stable(process), "race verdict diverged by backend"
        assert serial.stable_text() == process.stable_text()
        return {
            "stable": stable,
            "wall_clock": {
                "serial": {
                    "sweep_seconds": serial_seconds,
                    "engines": _wall_clock(serial),
                },
                "process": {
                    "sweep_seconds": process_seconds,
                    "engines": _wall_clock(process),
                },
            },
        }

    results = once(sweep)
    results = {
        "seed": SEED,
        "attempts": MINT_ATTEMPTS,
        "cpu_count": os.cpu_count(),
        **results,
    }
    (_REPO_ROOT / "BENCH_engine_race.json").write_text(
        json.dumps(results, indent=2) + "\n"
    )

    families = results["stable"]["by_family"]
    for family in SYNTH_FAMILIES:
        assert family in families, f"seed {SEED} minted no {family} scenarios"
        row = families[family]
        synth, cirfix = row["engines"]["synth"], row["engines"]["cirfix"]
        assert synth["plausible"] >= 1, (family, row)
        assert synth["eval_sims"] < cirfix["eval_sims"], (family, row)
