"""Benchmark: parallel candidate evaluation (repro.core.backend).

Measures two things on the counter_reset scenario and writes the raw
numbers to ``BENCH_parallel_eval.json`` at the repo root:

1. batch throughput — one fixed 24-candidate batch scored by
   ``SerialBackend`` and by ``ProcessPoolBackend`` at workers ∈ {2, 4};
2. a 4-generation SMOKE repair run serially vs. on a 4-worker pool,
   asserting the outcomes are bit-identical (plausible flag, fitness,
   best-fitness history, and patch).

Speedup depends entirely on the host: on a single-core container the
pool can only add IPC overhead, so the ≥2× speedup assertion is gated on
``os.cpu_count() >= 4`` and the JSON records the core count alongside
the timings.
"""

import json
import os
import time
from pathlib import Path

from repro.benchsuite import load_scenario
from repro.core.backend import ProcessPoolBackend, SerialBackend
from repro.core.repair import CirFixEngine
from repro.experiments.common import SMOKE

_REPO_ROOT = Path(__file__).resolve().parents[1]
_RESULTS: dict[str, object] = {"scenario": "counter_reset", "cpu_count": os.cpu_count()}


def _problem_and_config():
    scenario = load_scenario("counter_reset")
    return scenario.problem(), scenario.suggested_config(SMOKE)


def _candidate_batch(problem, size=24):
    """A fixed batch of distinct design texts (comment-tagged so no two
    are string-equal, matching how the engine's text cache sees mutants)."""
    from repro.hdl import generate

    base = generate(problem.design)
    return [f"{base}\n// candidate {i}\n" for i in range(size)]


def test_batch_throughput(once):
    problem, config = _problem_and_config()
    texts = _candidate_batch(problem)

    def sweep():
        timings = {}
        serial = SerialBackend.for_problem(problem, config)
        start = time.monotonic()
        baseline = serial.evaluate_batch(texts)
        timings["workers=1"] = time.monotonic() - start
        serial.close()
        for workers in (2, 4):
            pool = ProcessPoolBackend.for_problem(problem, config, workers=workers)
            try:
                pool.evaluate_batch(texts[:2])  # warm the workers
                start = time.monotonic()
                results = pool.evaluate_batch(texts)
                timings[f"workers={workers}"] = time.monotonic() - start
            finally:
                pool.close()
            assert [r.fitness for r in results] == [r.fitness for r in baseline]
        return timings, baseline

    timings, baseline = once(sweep)
    assert all(r.compiled for r in baseline)
    _RESULTS["batch"] = {
        "candidates": len(texts),
        "seconds": timings,
        "throughput_per_s": {
            k: len(texts) / v for k, v in timings.items() if v > 0
        },
    }


def test_smoke_repair_speedup(once):
    problem, config = _problem_and_config()

    def run(backend):
        start = time.monotonic()
        outcome = CirFixEngine(problem, config, seed=0, backend=backend).run()
        return outcome, time.monotonic() - start

    def compare():
        serial_outcome, serial_s = run(None)
        pool = ProcessPoolBackend.for_problem(problem, config, workers=4)
        try:
            pool_outcome, pool_s = run(pool)
        finally:
            pool.close()
        return serial_outcome, serial_s, pool_outcome, pool_s

    serial_outcome, serial_s, pool_outcome, pool_s = once(compare)

    # The parallel backend must be invisible to the search.
    assert serial_outcome.plausible == pool_outcome.plausible
    assert serial_outcome.fitness == pool_outcome.fitness
    assert serial_outcome.best_fitness_history == pool_outcome.best_fitness_history
    assert serial_outcome.patch.describe() == pool_outcome.patch.describe()
    assert serial_outcome.plausible, "counter_reset should repair under SMOKE"

    speedup = serial_s / pool_s if pool_s > 0 else float("inf")
    _RESULTS["smoke_repair"] = {
        "generations": config.max_generations,
        "serial_seconds": serial_s,
        "pool4_seconds": pool_s,
        "speedup": speedup,
        "plausible": serial_outcome.plausible,
        "fitness": serial_outcome.fitness,
    }
    (_REPO_ROOT / "BENCH_parallel_eval.json").write_text(
        json.dumps(_RESULTS, indent=2) + "\n"
    )
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0, f"expected >=2x on >=4 cores, got {speedup:.2f}x"
