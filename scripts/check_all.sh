#!/bin/sh
# Full verification sweep: tests, benchmarks, examples, experiment smoke.
set -e
cd "$(dirname "$0")/.."

echo "== unit / integration / property tests =="
python -m pytest tests/ -q

echo "== benchmark harness (one target per paper table/figure) =="
python -m pytest benchmarks/ --benchmark-only -q

echo "== examples =="
python examples/simulator_playground.py > /dev/null
python examples/fault_localization_demo.py > /dev/null
python examples/oracle_degradation.py > /dev/null
python examples/quickstart.py 0 1 2 > /dev/null
python examples/repair_custom_design.py > /dev/null

echo "== cheap experiments =="
python -m repro.experiments table2 > /dev/null
python -m repro.experiments figure2 > /dev/null
python -m repro.experiments figure3 > /dev/null
python -m repro.experiments rq3 > /dev/null
python -m repro.experiments phi > /dev/null
python -m repro.experiments fixloc > /dev/null

echo "ALL CHECKS PASSED"
