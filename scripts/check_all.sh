#!/bin/sh
# Full verification sweep: tests, benchmarks, examples, experiment smoke.
set -e
cd "$(dirname "$0")/.."
PYTHONPATH=src:${PYTHONPATH:-}
export PYTHONPATH

echo "== unit / integration / property tests =="
python -m pytest tests/ -q

echo "== benchmark harness (one target per paper table/figure) =="
python -m pytest benchmarks/ --benchmark-only -q

echo "== examples =="
python examples/simulator_playground.py > /dev/null
python examples/fault_localization_demo.py > /dev/null
python examples/oracle_degradation.py > /dev/null
python examples/quickstart.py 0 1 2 > /dev/null
python examples/repair_custom_design.py > /dev/null

echo "== cheap experiments =="
python -m repro.experiments table2 > /dev/null
python -m repro.experiments figure2 > /dev/null
python -m repro.experiments figure3 > /dev/null
python -m repro.experiments rq3 > /dev/null
python -m repro.experiments phi > /dev/null
python -m repro.experiments fixloc > /dev/null

echo "== parallel smoke repair (counter_reset, --workers 2) =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
python - "$SMOKE_DIR" <<'EOF'
import sys
from pathlib import Path
from repro.benchsuite import load_scenario

out = Path(sys.argv[1])
scenario = load_scenario("counter_reset")
(out / "faulty.v").write_text(scenario.faulty_design_text)
(out / "golden.v").write_text(scenario.project.design_text)
(out / "tb.v").write_text(scenario.project.testbench_text)
EOF
python -m repro repair "$SMOKE_DIR/faulty.v" "$SMOKE_DIR/tb.v" \
    --golden "$SMOKE_DIR/golden.v" --workers 2 --population 120 \
    --budget 120 --seeds 0 1 --output "$SMOKE_DIR/repaired.v" > /dev/null
test -s "$SMOKE_DIR/repaired.v"

echo "ALL CHECKS PASSED"
