#!/bin/sh
# Full verification sweep: tests, benchmarks, examples, experiment smoke.
set -e
cd "$(dirname "$0")/.."
PYTHONPATH=src:${PYTHONPATH:-}
export PYTHONPATH

echo "== unit / integration / property tests =="
python -m pytest tests/ -q

echo "== benchmark harness (one target per paper table/figure) =="
python -m pytest benchmarks/ --benchmark-only -q

echo "== examples =="
python examples/simulator_playground.py > /dev/null
python examples/fault_localization_demo.py > /dev/null
python examples/oracle_degradation.py > /dev/null
python examples/quickstart.py 0 1 2 > /dev/null
python examples/repair_custom_design.py > /dev/null

echo "== cheap experiments =="
python -m repro.experiments table2 > /dev/null
python -m repro.experiments figure2 > /dev/null
python -m repro.experiments figure3 > /dev/null
python -m repro.experiments rq3 > /dev/null
python -m repro.experiments phi > /dev/null
python -m repro.experiments fixloc > /dev/null

echo "== parallel smoke repair (counter_reset, --workers 2) =="
SMOKE_DIR="$(mktemp -d)"
SERVE_PID=""
trap 'rm -rf "$SMOKE_DIR"; [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true' EXIT
python - "$SMOKE_DIR" <<'EOF'
import sys
from pathlib import Path
from repro.benchsuite import load_scenario

out = Path(sys.argv[1])
scenario = load_scenario("counter_reset")
(out / "faulty.v").write_text(scenario.faulty_design_text)
(out / "golden.v").write_text(scenario.project.design_text)
(out / "tb.v").write_text(scenario.project.testbench_text)
EOF
python -m repro repair "$SMOKE_DIR/faulty.v" "$SMOKE_DIR/tb.v" \
    --golden "$SMOKE_DIR/golden.v" --workers 2 --population 120 \
    --budget 120 --seeds 0 1 --output "$SMOKE_DIR/repaired.v" > /dev/null
test -s "$SMOKE_DIR/repaired.v"

echo "== compiled-engine smoke repair (outcome JSON identical to interp) =="
python - <<'EOF'
import dataclasses
import json

from repro.benchsuite import load_scenario
from repro.core.backend import make_backend
from repro.core.repair import CirFixEngine
from repro.core.serialize import outcome_to_json
from repro.experiments.common import SMOKE

# Same scenario and seed as the serial smoke above; the only permitted
# difference between the engines' reports is wall-clock.
outcomes = {}
for engine in ("interp", "compiled"):
    scenario = load_scenario("counter_reset")
    config = dataclasses.replace(
        scenario.suggested_config(SMOKE), sim_engine=engine
    )
    problem = scenario.problem()
    with make_backend(problem, config) as backend:
        outcome = CirFixEngine(problem, config, 0, backend=backend).run()
    payload = json.loads(outcome_to_json(outcome, "counter_reset"))
    payload.pop("elapsed_seconds")
    outcomes[engine] = payload
assert outcomes["compiled"]["plausible"], "compiled smoke found no repair"
assert outcomes["interp"] == outcomes["compiled"], "engine outcome divergence"
print("compiled-engine smoke ok: outcome JSON identical to interp")
EOF

echo "== telemetry smoke (trace + metrics vs outcome, repro report) =="
python - "$SMOKE_DIR" <<'EOF'
import sys
from pathlib import Path

from repro import repair_scenario
from repro.core.config import RepairConfig
from repro.obs import JsonlTraceObserver, MetricsObserver, read_events

trace_path = Path(sys.argv[1]) / "smoke.jsonl"
config = RepairConfig(
    population_size=120, max_generations=4, max_wall_seconds=90.0,
    max_fitness_evals=600, minimize_budget=64,
)
metrics = MetricsObserver()
with JsonlTraceObserver(trace_path) as trace:
    outcome = repair_scenario(
        "counter_reset", config=config, seeds=(0,), observers=[trace, metrics]
    )

# The JSONL artifact parses back into typed events...
events = read_events(trace_path)
assert events, "trace is empty"
assert events[0].type == "trial_started"
assert events[-1].type == "trial_completed"

# ...and the metrics totals match the engine's own counters.
assert metrics.candidates == outcome.eval_sims, (
    metrics.candidates, outcome.eval_sims)
assert metrics.eval_sims == outcome.eval_sims
assert metrics.fitness_evals == outcome.fitness_evals
assert metrics.simulations == outcome.simulations
replayed = MetricsObserver.replay(events)
assert replayed.summary() == metrics.summary()
print(f"telemetry smoke ok: {len(events)} events, "
      f"{metrics.candidates} unique evaluations")
EOF
python -m repro report "$SMOKE_DIR/smoke.jsonl" > /dev/null

echo "== lint smoke (all golden designs clean, bad sample caught) =="
python - "$SMOKE_DIR" <<'EOF'
import sys
from pathlib import Path

from repro.benchsuite import PROJECT_NAMES, load_project

out = Path(sys.argv[1])
for name in PROJECT_NAMES:
    (out / f"lint_{name}.v").write_text(load_project(name).design_text)
(out / "bad_sample.v").write_text(
    "module bad(input a, input b, output w);\n"
    "  assign w = a;\n"
    "  assign w = b;\n"
    "endmodule\n"
)
EOF
# Error-severity rules are clean on every golden design (sha3 carries a
# recorded L002 style warning, so the full-catalog exit code is 1 there).
python -m repro lint --rules L001,L005,L006 "$SMOKE_DIR"/lint_*.v \
    --json > /dev/null
if python -m repro lint "$SMOKE_DIR/bad_sample.v" > /dev/null; then
    echo "lint failed to flag a known-bad design" >&2
    exit 1
fi

echo "== gated repair smoke (lint gate telemetry vs engine counters) =="
python - <<'EOF'
from repro.benchsuite import load_scenario
from repro.core.backend import make_backend
from repro.core.config import RepairConfig
from repro.core.repair import CirFixEngine
from repro.obs import MetricsObserver

scenario = load_scenario("dec_numeric")
config = scenario.suggested_config(RepairConfig(
    population_size=16, max_generations=2, max_wall_seconds=120.0,
    max_fitness_evals=150, minimize_budget=32, eval_chunk_size=8,
    lint_gate=True,
))
problem = scenario.problem()
metrics = MetricsObserver()
with make_backend(problem, config) as backend:
    outcome = CirFixEngine(
        problem, config, 0, backend=backend, observers=[metrics]
    ).run()
assert outcome.pruned > 0, "gate smoke pruned nothing"
assert metrics.candidates_pruned == outcome.pruned, (
    metrics.candidates_pruned, outcome.pruned)
assert metrics.candidates == outcome.eval_sims
print(f"gate smoke ok: {outcome.pruned} pruned, "
      f"{outcome.eval_sims} simulated")
EOF

echo "== chaos smoke (supervised pool quarantines planted faults) =="
REPRO_EVAL_CHAOS="hang@27,exit@28" python - <<'EOF'
from repro.benchsuite import load_scenario
from repro.core.backend import make_backend
from repro.core.config import RepairConfig
from repro.core.repair import CirFixEngine
from repro.obs import MetricsObserver

# One hang-mutant and one hard-exit-mutant are planted (via the
# REPRO_EVAL_CHAOS dispatch ordinals above) into a --workers 2 repair.
# The supervisor must time out the hang, notice the dead worker, and
# quarantine both — and the run must still find the repair.
scenario = load_scenario("ff_cond")
config = scenario.suggested_config(RepairConfig(
    population_size=24, max_generations=6, max_wall_seconds=120.0,
    max_fitness_evals=600, minimize_budget=64,
    workers=2, backend="process",
    eval_deadline_seconds=5.0, eval_max_retries=0, worker_mem_mb=512,
))
problem = scenario.problem()
metrics = MetricsObserver()
with make_backend(problem, config) as backend:
    outcome = CirFixEngine(
        problem, config, 0, backend=backend, observers=[metrics]
    ).run()
assert outcome.plausible, "chaos smoke lost the repair"
assert outcome.quarantined == 2, outcome.quarantined
assert metrics.quarantined_by_kind == {"crash": 1, "timeout": 1}, (
    metrics.quarantined_by_kind)
assert metrics.candidates_timed_out == 1
assert metrics.worker_failures == {"crash": 1}
print(f"chaos smoke ok: repaired with {outcome.quarantined} quarantined "
      f"({metrics.quarantined_by_kind})")
EOF

echo "== service smoke (daemon, warm resubmit, parity with direct repair) =="
python -m repro serve --socket "$SMOKE_DIR/repro.sock" \
    --cache-dir "$SMOKE_DIR/evalcache" 2> "$SMOKE_DIR/serve.log" &
SERVE_PID=$!
python - "$SMOKE_DIR/repro.sock" <<'EOF'
import json
import sys
import time

from repro.api import run_request
from repro.core.config import RepairConfig
from repro.service import RepairRequest, ServiceClient

request = RepairRequest(
    scenario="counter_reset",
    config={
        "population_size": 120, "max_generations": 4,
        "max_wall_seconds": 90.0, "max_fitness_evals": 600,
        "minimize_budget": 64,
    },
    seeds=(0,),
)
client = ServiceClient(sys.argv[1], timeout=300)
deadline = time.monotonic() + 30
while True:
    try:
        client.ping()
        break
    except OSError:
        if time.monotonic() > deadline:
            raise SystemExit("service smoke: daemon never came up")
        time.sleep(0.1)

def report(outcome_json):
    """Outcome report minus the only wall-clock field."""
    payload = json.loads(outcome_json)
    payload.pop("elapsed_seconds")
    return payload

from repro.core.serialize import outcome_to_json
direct = report(outcome_to_json(
    run_request(request, base_config=RepairConfig()), "counter_reset"))

_, cold = client.submit(request)
assert cold.status == "done" and cold.plausible, cold
assert report(cold.outcome_json) == direct, "submit diverged from direct run"

_, warm = client.submit(request)
assert warm.status == "done", warm
assert report(warm.outcome_json) == direct, "warm resubmit diverged"
assert warm.cache["hit_rate"] >= 0.9, warm.cache
print(f"service smoke ok: warm hit rate {warm.cache['hit_rate']:.2f} "
      f"({warm.cache['store_hits']} hits / {warm.cache['store_misses']} misses)")
EOF
# The CLI client path: a third (cached) submission and the job table.
python -m repro submit --socket "$SMOKE_DIR/repro.sock" counter_reset \
    --seeds 0 --config population_size=120 --config max_generations=4 \
    --config max_wall_seconds=90.0 --config max_fitness_evals=600 \
    --config minimize_budget=64 > /dev/null
python -m repro jobs --socket "$SMOKE_DIR/repro.sock" > /dev/null
python - "$SMOKE_DIR/repro.sock" <<'EOF'
import sys
from repro.service import ServiceClient
ServiceClient(sys.argv[1], timeout=30).shutdown()
EOF
wait "$SERVE_PID"
SERVE_PID=""

echo "== crash-recovery smoke (kill -9, journal replay, bit-identical outcome) =="
# Phase 1: journaled daemon; submit a multi-generation job and hard-kill
# the daemon once the engine has banked at least two checkpoints.
python -m repro serve --socket "$SMOKE_DIR/crash.sock" \
    --cache-dir "$SMOKE_DIR/crashcache" --journal-dir "$SMOKE_DIR/journal" \
    --max-jobs 1 2> "$SMOKE_DIR/crash_serve.log" &
SERVE_PID=$!
python - "$SMOKE_DIR" <<'EOF'
import json
import sys
import time
from pathlib import Path

from repro.service import RepairRequest, ServiceClient

out = Path(sys.argv[1])
# fsm_case under this budget runs its full 8 generations (~9 s, no early
# plausible exit), so the kill reliably lands mid-search.
request = RepairRequest(
    scenario="fsm_case",
    config={
        "population_size": 60, "max_generations": 8,
        "max_fitness_evals": 2000, "max_wall_seconds": 120.0,
        "minimize_budget": 32,
    },
    seeds=(0,),
)
client = ServiceClient(str(out / "crash.sock"), timeout=300)
deadline = time.monotonic() + 30
while True:
    try:
        client.ping()
        break
    except OSError:
        if time.monotonic() > deadline:
            raise SystemExit("crash smoke: daemon never came up")
        time.sleep(0.1)
status, _ = client.submit(request, wait=False)
(out / "crash_job_id").write_text(status.job_id)
checkpoints = out / "journal" / "checkpoints"
deadline = time.monotonic() + 60
while True:
    for path in checkpoints.glob("*.json"):
        try:
            if json.loads(path.read_bytes())["state"].get("cursor", 0) >= 2:
                sys.exit(0)
        except (ValueError, KeyError):
            pass  # racing an atomic replace; retry
    if time.monotonic() > deadline:
        raise SystemExit("crash smoke: engine never checkpointed")
    time.sleep(0.05)
EOF
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
python - "$SMOKE_DIR" <<'EOF'
import sys
from pathlib import Path

from repro.service.journal import JobJournal

out = Path(sys.argv[1])
unfinished = JobJournal(out / "journal").unfinished()
assert len(unfinished) == 1, f"expected 1 unfinished journal record: {unfinished}"
assert unfinished[0].job_id == (out / "crash_job_id").read_text()
EOF
# Phase 2: restart with --recover; the client re-attaches by resubmitting
# and the recovered outcome must match an uninterrupted direct run.
python -m repro serve --socket "$SMOKE_DIR/crash.sock" \
    --cache-dir "$SMOKE_DIR/crashcache" --journal-dir "$SMOKE_DIR/journal" \
    --max-jobs 1 --recover 2>> "$SMOKE_DIR/crash_serve.log" &
SERVE_PID=$!
python - "$SMOKE_DIR" <<'EOF'
import json
import sys
import time
from pathlib import Path

from repro.api import run_request
from repro.core.config import RepairConfig
from repro.core.serialize import outcome_to_json
from repro.service import RepairRequest, ServiceClient
from repro.service.journal import JobJournal

out = Path(sys.argv[1])
request = RepairRequest(
    scenario="fsm_case",
    config={
        "population_size": 60, "max_generations": 8,
        "max_fitness_evals": 2000, "max_wall_seconds": 120.0,
        "minimize_budget": 32,
    },
    seeds=(0,),
)
client = ServiceClient(str(out / "crash.sock"), timeout=300)
deadline = time.monotonic() + 30
while True:
    try:
        client.ping()
        break
    except OSError:
        if time.monotonic() > deadline:
            raise SystemExit("crash smoke: recovered daemon never came up")
        time.sleep(0.1)
joined, response = client.submit(request, retries=2)
assert joined.job_id == (out / "crash_job_id").read_text(), \
    "resubmission did not join the recovered job"
assert response.status == "done", response

def report(outcome_json):
    payload = json.loads(outcome_json)
    payload.pop("elapsed_seconds")
    return payload

direct = report(outcome_to_json(
    run_request(request, base_config=RepairConfig()), "fsm_case"))
assert report(response.outcome_json) == direct, \
    "recovered outcome diverged from the uninterrupted direct run"
journal = JobJournal(out / "journal")
assert journal.unfinished() == [], "journal not clean after recovery"
assert journal.load_checkpoint(joined.job_id) is None
print(f"crash-recovery smoke ok: bit-identical after kill -9, warm hit "
      f"rate {response.cache['hit_rate']:.2f}")
EOF
python - "$SMOKE_DIR/crash.sock" <<'EOF'
import sys
from repro.service import ServiceClient
ServiceClient(sys.argv[1], timeout=30).shutdown()
EOF
wait "$SERVE_PID"
SERVE_PID=""

echo "== fuzz smoke (fixed seed, differential oracles incl. interp-vs-compiled) =="
python -m repro fuzz --seed 0 --count 25 --trace "$SMOKE_DIR/fuzz.jsonl" \
    > "$SMOKE_DIR/fuzz_summary.txt"
grep -q "violations: 0" "$SMOKE_DIR/fuzz_summary.txt"
# The engine-parity oracle must have raced interp vs compiled on every program.
grep -q "engines=25" "$SMOKE_DIR/fuzz_summary.txt"
python -m repro report "$SMOKE_DIR/fuzz.jsonl" > /dev/null

echo "== minted smoke (scenario factory + cross-backend grading parity) =="
# Mint at a fixed seed: enough attempts must survive the observability gate.
python -m repro mint --seed 0 --count 8 --no-shrink \
    > "$SMOKE_DIR/mint_summary.txt"
ADMITTED=$(grep -oP '(?<=^  admitted: )\d+' "$SMOKE_DIR/mint_summary.txt")
[ "$ADMITTED" -ge 5 ] || {
    echo "minted smoke: only $ADMITTED/8 admitted"; exit 1; }
# Grade the same minted set serially and on the process backend: the
# summary must be byte-identical (the determinism contract for grading).
python -m repro grade --seed 0 --count 5 --max-scenarios 3 \
    --out "$SMOKE_DIR/grade_serial.txt" > /dev/null
python -m repro grade --seed 0 --count 5 --max-scenarios 3 \
    --backend process --workers 2 \
    --out "$SMOKE_DIR/grade_process.txt" > /dev/null
cmp "$SMOKE_DIR/grade_serial.txt" "$SMOKE_DIR/grade_process.txt" || {
    echo "minted smoke: serial vs process grading diverged"; exit 1; }

echo "== synth smoke (--engine synth CLI + cross-backend outcome parity) =="
# ff_cond (a negated condition) sits squarely in the template catalog;
# the CLI run must find a repair and write the design + report pair.
python - "$SMOKE_DIR" <<'EOF'
import sys
from pathlib import Path
from repro.benchsuite import load_scenario

out = Path(sys.argv[1])
scenario = load_scenario("ff_cond")
(out / "synth_faulty.v").write_text(scenario.faulty_design_text)
(out / "synth_golden.v").write_text(scenario.project.design_text)
(out / "synth_tb.v").write_text(scenario.project.testbench_text)
EOF
python -m repro repair "$SMOKE_DIR/synth_faulty.v" "$SMOKE_DIR/synth_tb.v" \
    --golden "$SMOKE_DIR/synth_golden.v" --engine synth --population 120 \
    --budget 90 --seeds 0 --output "$SMOKE_DIR/synth_repaired.v" > /dev/null
test -s "$SMOKE_DIR/synth_repaired.v"
test -s "$SMOKE_DIR/synth_repaired.report.json"
# The synth outcome JSON is byte-stable across evaluation backends
# (same engine contract the GP runner honours).
python - <<'EOF'
import json
from repro.benchsuite import load_scenario
from repro.core.serialize import outcome_to_json
from repro.experiments.common import SMOKE
from repro.synth import synth_repair

outcomes = {}
for backend, workers in (("serial", 1), ("process", 2)):
    scenario = load_scenario("ff_cond")
    config = scenario.suggested_config(SMOKE).scaled(
        backend=backend, workers=workers
    )
    payload = json.loads(
        outcome_to_json(synth_repair(scenario.problem(), config, (0,)), "ff_cond")
    )
    payload.pop("elapsed_seconds")
    outcomes[backend] = payload
assert outcomes["serial"]["plausible"], "synth smoke found no repair"
assert outcomes["serial"] == outcomes["process"], "synth diverged by backend"
print(f"synth smoke ok: {outcomes['serial']['eval_sims']} eval_sims, "
      "outcome JSON identical across backends")
EOF

echo "== race smoke (race legs byte-identical to standalone engine runs) =="
python - <<'EOF'
import json
from repro.benchsuite import load_scenario
from repro.core.repair import repair
from repro.core.serialize import outcome_to_json
from repro.experiments.common import SMOKE
from repro.synth import run_race, synth_repair

def report(outcome):
    payload = json.loads(outcome_to_json(outcome, "counter_reset"))
    payload.pop("elapsed_seconds")
    return payload

# counter_reset is a *deleted* statement: GP can re-grow it, templates
# cannot — so the race exercises both a winning and a losing synth leg.
scenario = load_scenario("counter_reset")
config = scenario.suggested_config(SMOKE)
race = run_race(scenario.problem(), config, (0,))
standalone = {
    "cirfix": repair(load_scenario("counter_reset").problem(), config, (0,)),
    "synth": synth_repair(load_scenario("counter_reset").problem(), config, (0,)),
}
for entry in race.entries:
    assert report(entry.outcome) == report(standalone[entry.engine]), (
        f"race {entry.engine} leg diverged from the standalone run")
winner = race.winner
assert winner.engine == "cirfix", "GP must win the deleted-statement race"
assert report(winner.outcome) == report(standalone["cirfix"])
print(f"race smoke ok: winner={winner.engine} "
      f"({winner.outcome.eval_sims} eval_sims), legs match standalone runs")
EOF

echo "ALL CHECKS PASSED"
