#!/usr/bin/env python3
"""Run the remaining committed experiments sequentially and append the
measured numbers to EXPERIMENTS.md (after the full Table 3 run finished).

Steps: RQ1 head-to-head, RQ4 oracle degradation, runtime analysis,
seeded-defect baseline, extended-template ablation.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
BEGIN = "<!-- committed:begin -->"
END = "<!-- committed:end -->"


def main() -> None:
    from repro.experiments.common import SMOKE
    from repro.experiments.ext_templates import render_ext_ablation, run_ext_ablation
    from repro.experiments.rq1 import render_rq1, run_rq1
    from repro.experiments.rq4 import render_rq4, run_rq4
    from repro.experiments.runtime_analysis import (
        render_runtime_analysis,
        run_runtime_analysis,
    )
    from repro.experiments.seeded_defects import render_seeded_defects, run_seeded_defects

    sections = []

    print("== RQ1 head-to-head ==", flush=True)
    rq1 = run_rq1(SMOKE, seeds=(0, 1))
    sections.append(("RQ1 head-to-head (SMOKE preset, seeds 0-1)", render_rq1(rq1)))

    print("== RQ4 oracle degradation ==", flush=True)
    rq4 = run_rq4(SMOKE, seeds=(0, 1), scenario_ids=("ff_cond", "lshift_sens", "counter_sens"))
    sections.append(
        ("RQ4 oracle degradation (3 fast scenarios, SMOKE preset)", render_rq4(rq4))
    )

    print("== runtime analysis ==", flush=True)
    runtime = run_runtime_analysis(SMOKE)
    sections.append(("Runtime analysis (SMOKE preset)", render_runtime_analysis(runtime)))

    print("== seeded defects ==", flush=True)
    seeded = run_seeded_defects(SMOKE)
    sections.append(("Randomly seeded defects (SMOKE preset)", render_seeded_defects(seeded)))

    print("== extended templates ==", flush=True)
    ext = run_ext_ablation(
        config=SMOKE.scaled(rt_threshold=0.6, max_fitness_evals=500, max_wall_seconds=150.0),
        seeds=(0, 1, 2),
    )
    sections.append(("Extended-template ablation", render_ext_ablation(ext)))

    block_lines = [BEGIN, "", "## Committed measured outputs (appendix)", ""]
    for title, body in sections:
        block_lines += [f"### {title}", "", "```", body, "```", ""]
    block_lines.append(END)
    block = "\n".join(block_lines)

    path = ROOT / "EXPERIMENTS.md"
    text = path.read_text()
    if BEGIN in text:
        text = re.sub(re.escape(BEGIN) + ".*?" + re.escape(END), block, text, flags=re.S)
    else:
        text = text.rstrip() + "\n\n" + block + "\n"
    path.write_text(text)
    print("EXPERIMENTS.md appendix written")


if __name__ == "__main__":
    sys.exit(main())
