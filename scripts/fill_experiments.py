#!/usr/bin/env python3
"""Fill EXPERIMENTS.md with the committed Table 3 run results.

Reads .table3_results.json (produced by the full table3 run) and replaces
the `<!-- TABLE3_RESULTS -->` marker with a per-defect markdown table plus
headline counts.  Idempotent: re-running replaces the generated section.
"""

import json
import re
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
MARKER = "<!-- TABLE3_RESULTS -->"
BEGIN = "<!-- table3:begin -->"
END = "<!-- table3:end -->"


def render(results: list[dict]) -> str:
    lines = [
        BEGIN,
        "",
        "| Scenario | Project | Defect category | Outcome (ours) | Repair time (s) | Fitness | Simulations | Paper outcome |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for row in results:
        time_text = f"{row['repair_seconds']:.1f}" if row["repair_seconds"] else "—"
        lines.append(
            f"| {row['scenario_id']} | {row['project']} | {row['category']} "
            f"| **{row['outcome']}** | {time_text} | {row['fitness']:.3f} "
            f"| {row['simulations']} | {row['paper']} |"
        )
    total = len(results)
    plausible = sum(1 for r in results if r["outcome"] in ("correct", "plausible"))
    correct = sum(1 for r in results if r["outcome"] == "correct")
    paper_plausible = sum(1 for r in results if r["paper"] in ("correct", "plausible"))
    paper_correct = sum(1 for r in results if r["paper"] == "correct")
    agree = sum(
        1
        for r in results
        if (r["outcome"] in ("correct", "plausible"))
        == (r["paper"] in ("correct", "plausible"))
    )
    cat1 = [r for r in results if r["category"] == 1]
    cat2 = [r for r in results if r["category"] == 2]
    lines += [
        "",
        f"**Plausible: {plausible}/{total}** (paper: {paper_plausible}/{total}) — "
        f"**Correct: {correct}/{total}** (paper: {paper_correct}/{total})",
        "",
        f"Per-defect plausibility agreement with the paper: {agree}/{total}.",
        f"Category 1: {sum(1 for r in cat1 if r['outcome'] != 'none')}/{len(cat1)} plausible; "
        f"Category 2: {sum(1 for r in cat2 if r['outcome'] != 'none')}/{len(cat2)} plausible "
        "(paper: 12/19 and 9/13).",
        "",
        _rq2_summary(cat1, cat2),
        "",
        END,
    ]
    return "\n".join(lines)


def _rq2_summary(cat1: list[dict], cat2: list[dict]) -> str:
    """RQ2 aggregation (category repair-time comparison) from the same run."""
    times1 = [r["repair_seconds"] for r in cat1 if r["repair_seconds"]]
    times2 = [r["repair_seconds"] for r in cat2 if r["repair_seconds"]]
    if not (times1 and times2):
        return "RQ2: not enough repaired scenarios in one category for the U test."
    from scipy import stats

    u_stat, p_value = stats.mannwhitneyu(times1, times2, alternative="two-sided")
    mean1 = sum(times1) / len(times1)
    mean2 = sum(times2) / len(times2)
    return (
        f"RQ2 (from this run): mean repair time Category 1 = {mean1:.1f}s "
        f"(n={len(times1)}), Category 2 = {mean2:.1f}s (n={len(times2)}); "
        f"Mann-Whitney U = {float(u_stat):.1f}, p = {float(p_value):.3f} "
        "(paper: p = 0.373, no significant difference)."
    )


def main() -> None:
    results = json.loads((ROOT / ".table3_results.json").read_text())
    text = (ROOT / "EXPERIMENTS.md").read_text()
    block = render(results)
    if BEGIN in text:
        text = re.sub(
            re.escape(BEGIN) + ".*?" + re.escape(END), block, text, flags=re.S
        )
    else:
        text = text.replace(MARKER, block)
    (ROOT / "EXPERIMENTS.md").write_text(text)
    print(f"EXPERIMENTS.md updated with {len(results)} rows")


if __name__ == "__main__":
    main()
