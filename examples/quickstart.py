#!/usr/bin/env python3
"""Quickstart: repair the paper's motivating example end to end.

The 4-bit counter from Figure 1 has a missing overflow reset (the
``counter_reset`` defect).  This script:

1. loads the defect scenario from the benchmark suite,
2. shows the fault localization and the faulty design's fitness,
3. runs the CirFix genetic search until a plausible repair appears,
4. prints the minimized repair and checks it against the held-out
   validation testbench.

Run:  python examples/quickstart.py [seed ...]
"""

import sys

from repro.benchsuite import load_scenario
from repro.core import CirFixEngine, RepairConfig
from repro.core.patch import Patch
from repro.instrument.trace import output_mismatch

CONFIG = RepairConfig(
    population_size=60,
    max_generations=12,
    max_wall_seconds=300.0,
    max_fitness_evals=4000,
)


def main() -> int:
    seeds = [int(s) for s in sys.argv[1:]] or [0, 1, 2, 3, 4]
    scenario = load_scenario("counter_reset")
    print(f"scenario: {scenario.scenario_id} — {scenario.defect.description}")
    print(f"oracle: {len(scenario.oracle())} recorded clock edges, "
          f"wires {scenario.oracle().variables()}")

    engine = CirFixEngine(scenario.problem(), scenario.suggested_config(CONFIG))
    faulty = engine.evaluate(Patch.empty())
    mismatch = output_mismatch(scenario.oracle(), faulty.trace)
    print(f"faulty fitness: {faulty.fitness:.3f} (paper: 0.58)")
    print(f"mismatched wires: {sorted(mismatch)}")

    for seed in seeds:
        engine = CirFixEngine(scenario.problem(), scenario.suggested_config(CONFIG), seed)
        outcome = engine.run()
        print(f"seed {seed}: {outcome.describe()}")
        if outcome.plausible:
            print("\nminimized patch:", outcome.patch.describe())
            print("\nrepaired design:\n")
            print(outcome.repaired_source)
            correct = scenario.is_correct_repair(outcome.repaired_source)
            print(f"validation-bench verdict: {'CORRECT' if correct else 'overfitted'}")
            return 0
    print("no plausible repair found within the budget; try more seeds")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
