#!/usr/bin/env python3
"""Use the 4-state simulator standalone (without the repair engine).

The simulator is a complete event-driven Verilog interpreter: this example
builds a small UART-style serializer + deserializer pair, simulates a byte
crossing the serial wire, and prints the $display log and a waveform-ish
trace of the line.

Run:  python examples/simulator_playground.py
"""

from repro.hdl import parse
from repro.sim import Simulator

SOURCE = """
module serializer(clk, start, data, tx, busy);
  input clk, start;
  input [7:0] data;
  output tx, busy;
  reg tx, busy;
  reg [7:0] shifter;
  reg [3:0] count;

  initial begin
    tx = 1;
    busy = 0;
    count = 0;
  end

  always @(posedge clk) begin
    if (start && !busy) begin
      shifter <= data;
      count <= 4'd8;
      busy <= 1'b1;
      tx <= 1'b0;  // start bit
    end
    else if (count > 0) begin
      tx <= shifter[0];
      shifter <= shifter >> 1;
      count <= count - 1;
    end
    else if (busy) begin
      tx <= 1'b1;  // stop bit
      busy <= 1'b0;
    end
  end
endmodule

module deserializer(clk, rx, byte_out, valid);
  input clk, rx;
  output [7:0] byte_out;
  output valid;
  reg [7:0] byte_out;
  reg valid;
  reg [3:0] count;
  reg receiving;

  initial begin
    valid = 0;
    receiving = 0;
    count = 0;
  end

  always @(posedge clk) begin
    valid <= 1'b0;
    if (!receiving && rx == 1'b0) begin
      receiving <= 1'b1;
      count <= 4'd0;
    end
    else if (receiving) begin
      if (count < 4'd8) begin
        byte_out <= {rx, byte_out[7:1]};
        count <= count + 1;
      end
      else begin
        receiving <= 1'b0;
        valid <= 1'b1;
      end
    end
  end
endmodule

module playground;
  reg clk, start;
  reg [7:0] data;
  wire tx, busy;
  wire [7:0] byte_out;
  wire valid;

  serializer ser(.clk(clk), .start(start), .data(data), .tx(tx), .busy(busy));
  deserializer des(.clk(clk), .rx(tx), .byte_out(byte_out), .valid(valid));

  always #5 clk = !clk;
  always @(posedge clk) $cirfix_record(tx, byte_out, valid);

  initial begin
    clk = 0;
    start = 0;
    data = 8'hC5;
    @(negedge clk);
    start = 1;
    @(negedge clk);
    start = 0;
    wait (valid == 1'b1)
    @(negedge clk);
    $display("received %h at t=%0t", byte_out, $time);
    #20 $finish;
  end
endmodule
"""


def main() -> int:
    sim = Simulator(parse(SOURCE))
    result = sim.run(max_time=10_000)
    print(f"simulation {'finished' if result.finished else 'timed out'} "
          f"at t={result.time} ({result.steps_used} statements executed)")
    for line in result.output:
        print("  $display:", line)
    print("\nserial line over time:")
    print("  t    tx  byte_out  valid")
    for record in result.trace:
        tx = record.values["tx"].to_bit_string()
        byte = record.values["byte_out"].to_hex_string()
        valid = record.values["valid"].to_bit_string()
        print(f"  {record.time:<4d} {tx}   {byte:>8s}  {valid}")
    ok = any(
        r.values["valid"].to_bit_string() == "1"
        and r.values["byte_out"].to_hex_string() == "c5"
        for r in result.trace
    )
    print(f"\nbyte survived the wire: {'yes' if ok else 'NO'}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
