#!/usr/bin/env python3
"""Explore the RQ4 trade-off: how much oracle information does a repair need?

Takes one scenario and sweeps the expected-behaviour completeness from 100%
down to 12.5%, reporting for each level whether the known-good repair is
still judged plausible and whether a *wrong* candidate starts slipping
through (the overfitting risk the paper measures in §5.4).

Run:  python examples/oracle_degradation.py [scenario_id]
"""

import sys

from repro.benchsuite import load_scenario
from repro.benchsuite.scenario import simulate_design_text
from repro.core.fitness import evaluate_fitness

LEVELS = (1.0, 0.5, 0.25, 0.125)


def main() -> int:
    scenario_id = sys.argv[1] if len(sys.argv) > 1 else "ff_cond"
    scenario = load_scenario(scenario_id)
    print(f"scenario: {scenario.scenario_id} — {scenario.defect.description}")

    bench = scenario.instrumented_testbench()
    golden_trace = simulate_design_text(scenario.project.design_text, bench)
    faulty_trace = simulate_design_text(scenario.faulty_design_text, bench)
    full_oracle = scenario.oracle()
    print(f"full oracle: {len(full_oracle)} rows\n")

    print(f"{'level':>6s} {'rows':>5s} {'golden':>8s} {'faulty':>8s} {'faulty plausible?':>18s}")
    for level in LEVELS:
        oracle = full_oracle.subsample(level)
        golden_fit = evaluate_fitness(golden_trace, oracle).fitness
        faulty_fit = evaluate_fitness(faulty_trace, oracle).fitness
        slipped = "YES (overfit risk)" if faulty_fit >= 1.0 else "no"
        print(
            f"{level * 100:5.1f}% {len(oracle):5d} {golden_fit:8.3f} "
            f"{faulty_fit:8.3f} {slipped:>18s}"
        )
    print(
        "\nThe golden design stays at 1.0 at every level; the faulty design's"
        "\nfitness rises as annotations vanish — with sparse enough oracles a"
        "\nwrong design can reach 1.0, which is exactly the paper's observed"
        "\ndrop in repair correctness (16 -> 12 -> 10) as information shrinks."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
