#!/usr/bin/env python3
"""Debug a faulty design with the trace-diff report and a VCD waveform.

Shows the observability tooling around the repair loop: load the
``rs_sens`` defect (the paper's "the original testbench reports no errors
but the instrumented comparison catches it" case from §5.3), print the
Figure-2-style divergence report, and dump a GTKWave-compatible VCD of
the faulty run.

Run:  python examples/waveform_debugging.py [out.vcd]
"""

import sys
from pathlib import Path

from repro.benchsuite import load_scenario
from repro.core.oracle import combine_sources
from repro.hdl import parse
from repro.instrument import SimulationTrace, diff_traces, render_diff
from repro.sim import Simulator
from repro.sim.vcd import VcdWriter


def main() -> int:
    out_path = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("rs_sens_faulty.vcd")
    scenario = load_scenario("rs_sens")
    print(f"scenario: {scenario.scenario_id} — {scenario.defect.description}")

    combined = combine_sources(
        parse(scenario.faulty_design_text), scenario.instrumented_testbench()
    )
    sim = Simulator(combined)
    vcd = VcdWriter.attach(sim)
    result = sim.run(1_000_000)
    print(f"simulated to t={result.time}; $display output: {result.output}")

    trace = SimulationTrace.from_records(result.trace)
    diff = diff_traces(scenario.oracle(), trace)
    print()
    print(render_diff(diff, max_rows=12))
    print(
        f"\nThe original testbench printed no complaint, yet "
        f"{len(diff.diffs)} of {diff.compared_cells} recorded cells diverge "
        f"(fitness {scenario.faulty_fitness():.4f}; paper reports 0.999 for "
        "the analogous out_stage defect)."
    )

    out_path.write_text(vcd.render())
    print(f"\nwaveform written to {out_path} (open with GTKWave)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
