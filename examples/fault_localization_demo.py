#!/usr/bin/env python3
"""Walk through the CirFix fault localization (Algorithm 2) step by step.

Uses the arbiter FSM with the ``fsm_next_sens`` Category-2 defect and shows
how the output mismatch seeds the fixed-point analysis, which identifiers
join the mismatch set via Add-Child, and which statements end up in the
uniformly-ranked fault set.

Run:  python examples/fault_localization_demo.py
"""

from repro.benchsuite import load_scenario
from repro.benchsuite.scenario import simulate_design_text
from repro.core.faultloc import localize_faults
from repro.hdl import ast, generate, parse
from repro.instrument.trace import output_mismatch


def main() -> int:
    scenario = load_scenario("fsm_next_sens")
    print(f"scenario: {scenario.scenario_id} — {scenario.defect.description}\n")

    # Step 1: simulate the faulty design and diff against the oracle.
    trace = simulate_design_text(
        scenario.faulty_design_text, scenario.instrumented_testbench()
    )
    mismatch = output_mismatch(scenario.oracle(), trace)
    print(f"step 1 — output mismatch (seeds the analysis): {sorted(mismatch)}")

    # Step 2: run the fixed-point analysis on the faulty AST.
    tree = parse(scenario.faulty_design_text)
    result = localize_faults(tree, mismatch)
    print(f"step 2 — fixed point converged after {result.iterations} iterations")
    print(f"         final mismatch set: {sorted(result.mismatch)}")
    print(f"         fault set size: {len(result.nodes)} AST nodes\n")

    # Step 3: show the implicated statements (assignments + conditionals).
    print("step 3 — implicated statements:")
    shown = 0
    for node in tree.walk():
        if node.node_id not in result.nodes:
            continue
        if isinstance(node, (ast.BlockingAssign, ast.NonBlockingAssign, ast.ContinuousAssign)):
            print(f"  [node {node.node_id:3d}] {generate(node).strip()}")
            shown += 1
    statements = sum(
        1 for n in tree.walk() if isinstance(n, ast.Stmt) and n.node_id is not None
    )
    print(f"\n{shown} assignments implicated; fault set covers "
          f"{len(result.nodes)} of {sum(1 for _ in tree.walk())} nodes "
          f"({statements} statements total) — the search space CirFix explores.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
