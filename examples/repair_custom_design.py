#!/usr/bin/env python3
"""Repair a user-supplied design with the one-call API.

This mirrors the workflow a downstream user follows for their own RTL:
provide (a) the faulty design, (b) a standard testbench — no manual
instrumentation needed — and (c) a previously-functioning version of the
design to generate the expected-behaviour oracle (paper §4.1.2).

The example design is a gray-code encoder whose maintainer inverted the
reset polarity during a refactor (an "incorrect conditional" defect, the
most common class in the paper's Table 3).

Run:  python examples/repair_custom_design.py
"""

from repro import repair_verilog
from repro.core.config import RepairConfig

GOLDEN = """
module gray_encoder(clk, rst, bin_in, load, gray_out);
  input clk;
  input rst;
  input [7:0] bin_in;
  input load;
  output [7:0] gray_out;
  reg [7:0] gray_out;

  always @(posedge clk) begin
    if (rst) begin
      gray_out <= 8'h00;
    end
    else if (load) begin
      gray_out <= bin_in ^ (bin_in >> 1);
    end
  end
endmodule
"""

# The refactor inverted the reset polarity: the encoder now clears when
# reset is LOW and loads during reset.
FAULTY = GOLDEN.replace("if (rst) begin", "if (!rst) begin")

TESTBENCH = """
module gray_encoder_tb;
  reg clk, rst, load;
  reg [7:0] bin_in;
  wire [7:0] gray_out;
  integer i;

  gray_encoder dut(.clk(clk), .rst(rst), .bin_in(bin_in), .load(load),
                   .gray_out(gray_out));

  always #5 clk = !clk;

  initial begin
    clk = 0; rst = 1; load = 0; bin_in = 0;
    @(negedge clk);
    rst = 0;
    load = 1;
    for (i = 0; i < 12; i = i + 1) begin
      bin_in = i * 21;
      @(negedge clk);
    end
    load = 0;
    @(negedge clk);
    #5 $finish;
  end
endmodule
"""


def main() -> int:
    config = RepairConfig(
        population_size=50,
        max_generations=10,
        max_wall_seconds=240.0,
        max_fitness_evals=3000,
    )
    outcome = repair_verilog(FAULTY, TESTBENCH, GOLDEN, config=config, seeds=(0, 1, 2, 3))
    print(outcome.describe())
    if not outcome.plausible:
        return 1
    print("\nrepaired design:\n")
    print(outcome.repaired_source)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
